//! Choosing the delay weight `k` (paper §8.2).
//!
//! "The value of the parameter k … decides the relative importance of each
//! term in the cost function. For a practical application of the above
//! algorithm, it is important to have a rationale for choosing the value of
//! k. Certainly, system designers require a suitable framework in which to
//! choose values for the various parameters such as k."
//!
//! This module provides that framework two ways:
//!
//! * [`k_sweep`] — the exploratory view: for each candidate `k`, solve the
//!   problem exactly and report the communication cost, the mean access
//!   delay, and how spread-out the allocation is, exposing the §4
//!   concentrate-vs-fragment dial quantitatively;
//! * [`k_for_delay_budget`] — the prescriptive view: the smallest `k` whose
//!   optimal allocation meets a mean-delay budget, found by bisection
//!   (delay at the optimum decreases monotonically in `k`).

use serde::{Deserialize, Serialize};

use fap_net::{AccessPattern, CostProvider};
#[cfg(test)]
use fap_net::CostMatrix;
use fap_queue::{DelayModel, Mm1Delay};

use crate::error::CoreError;
use crate::reference;
use crate::single::SingleFileProblem;

/// The optimum's decomposition at one value of `k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KSweepPoint {
    /// The delay weight evaluated.
    pub k: f64,
    /// Mean communication cost per access, `Σ C_i x_i`.
    pub communication: f64,
    /// Mean access delay, `Σ x_i T_i(λ x_i)`.
    pub mean_delay: f64,
    /// Spread of the allocation: `max_i x_i − min_i x_i` (0 = perfectly
    /// even).
    pub allocation_spread: f64,
    /// The optimal allocation at this `k`.
    pub allocation: Vec<f64>,
}

/// Sweeps candidate delay weights on the network described by `costs`,
/// `pattern` and the uniform M/M/1 rate `mu`, solving each exactly.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for an empty or non-positive
/// candidate list, plus any model-construction error.
pub fn k_sweep(
    costs: &(impl CostProvider + ?Sized),
    pattern: &AccessPattern,
    mu: f64,
    candidates: &[f64],
) -> Result<Vec<KSweepPoint>, CoreError> {
    if candidates.is_empty() {
        return Err(CoreError::InvalidParameter("no candidate k values".into()));
    }
    if candidates.iter().any(|k| !k.is_finite() || *k <= 0.0) {
        return Err(CoreError::InvalidParameter("candidate k values must be positive".into()));
    }
    candidates
        .iter()
        .map(|&k| {
            let problem = SingleFileProblem::mm1_with_provider(costs, pattern, mu, k)?;
            let solution = reference::solve(&problem)?;
            Ok(decompose(&problem, k, solution.allocation))
        })
        .collect()
}

/// The smallest `k` (within `tolerance`) whose optimal allocation has mean
/// access delay at most `delay_budget`, searched on `[k_lo, k_hi]`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the bracket is invalid, the
/// budget is non-positive, or the budget is unreachable even at `k_hi`
/// (delay at the optimum decreases in `k` toward the balanced-allocation
/// floor; a budget below that floor cannot be met by tuning `k`).
pub fn k_for_delay_budget(
    costs: &(impl CostProvider + ?Sized),
    pattern: &AccessPattern,
    mu: f64,
    delay_budget: f64,
    k_lo: f64,
    k_hi: f64,
    tolerance: f64,
) -> Result<KSweepPoint, CoreError> {
    if !(k_lo > 0.0 && k_hi > k_lo) {
        return Err(CoreError::InvalidParameter(format!("bracket [{k_lo}, {k_hi}]")));
    }
    if !delay_budget.is_finite() || delay_budget <= 0.0 {
        return Err(CoreError::InvalidParameter(format!("delay budget {delay_budget}")));
    }
    if !tolerance.is_finite() || tolerance <= 0.0 {
        return Err(CoreError::InvalidParameter(format!("tolerance {tolerance}")));
    }
    let delay_at = |k: f64| -> Result<KSweepPoint, CoreError> {
        let problem = SingleFileProblem::mm1_with_provider(costs, pattern, mu, k)?;
        let solution = reference::solve(&problem)?;
        Ok(decompose(&problem, k, solution.allocation))
    };
    let at_hi = delay_at(k_hi)?;
    if at_hi.mean_delay > delay_budget {
        return Err(CoreError::InvalidParameter(format!(
            "budget {delay_budget} unreachable: even k = {k_hi} gives mean delay {}",
            at_hi.mean_delay
        )));
    }
    if delay_at(k_lo)?.mean_delay <= delay_budget {
        return delay_at(k_lo); // already satisfied at the cheapest weighting
    }
    let (mut lo, mut hi) = (k_lo, k_hi);
    while hi - lo > tolerance {
        let mid = 0.5 * (lo + hi);
        if delay_at(mid)?.mean_delay <= delay_budget {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    delay_at(hi)
}

/// Splits an allocation's cost into its communication and delay components.
fn decompose(
    problem: &SingleFileProblem<Mm1Delay>,
    k: f64,
    allocation: Vec<f64>,
) -> KSweepPoint {
    let lambda = problem.total_rate();
    let mut communication = 0.0;
    let mut mean_delay = 0.0;
    for (i, &x) in allocation.iter().enumerate() {
        communication += problem.access_costs()[i] * x;
        mean_delay += x * problem.delays()[i].response_time_unchecked(lambda * x);
    }
    let max = allocation.iter().copied().fold(f64::MIN, f64::max);
    let min = allocation.iter().copied().fold(f64::MAX, f64::min);
    KSweepPoint { k, communication, mean_delay, allocation_spread: max - min, allocation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_net::topology;

    /// An asymmetric network where communication argues for concentration
    /// at the hub and delay argues for spreading.
    fn star_setup() -> (CostMatrix, AccessPattern) {
        let graph = topology::star(5, 1.0).unwrap();
        (graph.shortest_path_matrix().unwrap(), AccessPattern::uniform(5, 1.0).unwrap())
    }

    #[test]
    fn growing_k_trades_communication_for_delay() {
        let (costs, pattern) = star_setup();
        let sweep = k_sweep(&costs, &pattern, 1.5, &[0.1, 0.5, 2.0, 8.0]).unwrap();
        for pair in sweep.windows(2) {
            assert!(
                pair[1].mean_delay <= pair[0].mean_delay + 1e-9,
                "delay must fall as k grows: {pair:?}"
            );
            assert!(
                pair[1].communication >= pair[0].communication - 1e-9,
                "communication must rise as k grows"
            );
            assert!(
                pair[1].allocation_spread <= pair[0].allocation_spread + 1e-9,
                "allocation must even out as k grows"
            );
        }
    }

    #[test]
    fn sweep_validates_inputs() {
        let (costs, pattern) = star_setup();
        assert!(k_sweep(&costs, &pattern, 1.5, &[]).is_err());
        assert!(k_sweep(&costs, &pattern, 1.5, &[0.0]).is_err());
        assert!(k_sweep(&costs, &pattern, 1.5, &[-1.0]).is_err());
    }

    #[test]
    fn delay_budget_is_met_tightly() {
        let (costs, pattern) = star_setup();
        // The achievable range: delay at tiny k (concentrated) down to the
        // even-split floor.
        let floor = k_sweep(&costs, &pattern, 1.5, &[100.0]).unwrap()[0].mean_delay;
        let loose = k_sweep(&costs, &pattern, 1.5, &[0.05]).unwrap()[0].mean_delay;
        let budget = 0.5 * (floor + loose);
        let chosen =
            k_for_delay_budget(&costs, &pattern, 1.5, budget, 0.05, 100.0, 1e-4).unwrap();
        assert!(chosen.mean_delay <= budget + 1e-9);
        // Tight: a slightly smaller k would miss the budget.
        let slack = k_sweep(&costs, &pattern, 1.5, &[chosen.k * 0.9]).unwrap()[0].mean_delay;
        assert!(slack > budget - 1e-4, "chosen k is not minimal: {} vs {budget}", slack);
    }

    #[test]
    fn unreachable_budget_is_an_error() {
        let (costs, pattern) = star_setup();
        // Even split gives delay 1/(μ − λ/5) = 1/1.3 ≈ 0.769; demand less.
        assert!(matches!(
            k_for_delay_budget(&costs, &pattern, 1.5, 0.5, 0.05, 100.0, 1e-4),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn already_satisfied_budget_returns_the_cheap_end() {
        let (costs, pattern) = star_setup();
        let chosen = k_for_delay_budget(&costs, &pattern, 1.5, 10.0, 0.05, 100.0, 1e-4).unwrap();
        assert!((chosen.k - 0.05).abs() < 1e-12);
    }
}
