//! Adaptive reallocation under drifting access statistics (paper §8).
//!
//! "One can easily envision a system where the algorithm is run occasionally
//! at night (or whenever the system is lightly loaded) to gradually improve
//! the allocation. The possibility also exists of using the algorithm to
//! adaptively change the file allocation as the nodal file access
//! characteristics change dynamically."
//!
//! [`AdaptiveAllocator`] keeps the current allocation between epochs: when
//! access statistics change it rebuilds the objective and warm-starts the
//! decentralized iteration from the current allocation (which remains
//! feasible — feasibility does not depend on the workload). Because every
//! iteration produces a feasible, better allocation, an epoch may be stopped
//! after any budget of iterations and the intermediate allocation deployed.

use fap_econ::{ResourceDirectedOptimizer, Solution, StepSize};
use fap_net::{AccessPattern, CostMatrix, Graph};

use crate::error::CoreError;
use crate::single::SingleFileProblem;

/// Maintains a file allocation across workload epochs.
///
/// # Example
///
/// ```
/// use fap_core::AdaptiveAllocator;
/// use fap_econ::StepSize;
/// use fap_net::{topology, AccessPattern, NodeId};
///
/// let graph = topology::ring(4, 1.0)?;
/// let mut alloc = AdaptiveAllocator::new(&graph, 1.5, 1.0, StepSize::Fixed(0.1))?;
///
/// // Epoch 1: uniform traffic → even spread.
/// alloc.observe(AccessPattern::uniform(4, 1.0)?)?;
/// let s = alloc.reoptimize(1_000)?;
/// assert!(s.converged);
///
/// // Epoch 2: node 2 becomes hot → its share grows, warm-started.
/// alloc.observe(AccessPattern::hotspot(4, 1.0, NodeId::new(2), 0.7)?)?;
/// let s = alloc.reoptimize(1_000)?;
/// assert!(s.converged);
/// assert!(alloc.allocation()[2] > 0.25);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveAllocator {
    costs: CostMatrix,
    mu: f64,
    k: f64,
    step: StepSize,
    epsilon: f64,
    pattern: Option<AccessPattern>,
    allocation: Vec<f64>,
    epochs: usize,
}

impl AdaptiveAllocator {
    /// Creates an allocator for `graph` with M/M/1 nodes of rate `mu`,
    /// delay weight `k`, and the given step policy. The initial allocation
    /// is the even split.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Net`] for a disconnected graph and
    /// [`CoreError::InvalidParameter`] for invalid parameters.
    pub fn new(graph: &Graph, mu: f64, k: f64, step: StepSize) -> Result<Self, CoreError> {
        if !mu.is_finite() || mu <= 0.0 {
            return Err(CoreError::InvalidParameter(format!("mu {mu}")));
        }
        if !k.is_finite() || k < 0.0 {
            return Err(CoreError::InvalidParameter(format!("k {k}")));
        }
        step.validate()?;
        let costs = graph.shortest_path_matrix()?;
        let n = costs.node_count();
        Ok(AdaptiveAllocator {
            costs,
            mu,
            k,
            step,
            epsilon: 1e-6,
            pattern: None,
            allocation: vec![1.0 / n as f64; n],
            epochs: 0,
        })
    }

    /// Sets the convergence tolerance used by each epoch (default `1e-6`).
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Records the latest measured access statistics; the next
    /// [`AdaptiveAllocator::reoptimize`] call uses them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the pattern's node count
    /// differs from the network's.
    pub fn observe(&mut self, pattern: AccessPattern) -> Result<(), CoreError> {
        if pattern.node_count() != self.costs.node_count() {
            return Err(CoreError::InvalidParameter(format!(
                "pattern covers {} nodes, network has {}",
                pattern.node_count(),
                self.costs.node_count()
            )));
        }
        self.pattern = Some(pattern);
        Ok(())
    }

    /// Runs one optimization epoch (at most `iteration_budget` steps) from
    /// the current allocation against the most recently observed workload,
    /// and adopts the result.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if no workload has been
    /// observed yet, plus any model/optimizer error.
    pub fn reoptimize(&mut self, iteration_budget: usize) -> Result<Solution, CoreError> {
        let pattern = self.pattern.as_ref().ok_or_else(|| {
            CoreError::InvalidParameter("no access pattern observed yet".into())
        })?;
        let problem =
            SingleFileProblem::mm1_with_costs(&self.costs, pattern, self.mu, self.k)?;
        let solution = ResourceDirectedOptimizer::new(self.step.clone())
            .with_epsilon(self.epsilon)
            .with_max_iterations(iteration_budget)
            .run(&problem, &self.allocation)?;
        self.allocation.clone_from(&solution.allocation);
        self.epochs += 1;
        Ok(solution)
    }

    /// The current (deployable) allocation.
    pub fn allocation(&self) -> &[f64] {
        &self.allocation
    }

    /// Number of completed optimization epochs.
    pub fn epochs(&self) -> usize {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_net::{topology, NodeId};

    fn allocator() -> AdaptiveAllocator {
        let graph = topology::ring(4, 1.0).unwrap();
        AdaptiveAllocator::new(&graph, 1.5, 1.0, StepSize::Fixed(0.1)).unwrap()
    }

    #[test]
    fn starts_even_and_requires_an_observation() {
        let mut a = allocator();
        assert_eq!(a.allocation(), &[0.25; 4]);
        assert!(matches!(a.reoptimize(100), Err(CoreError::InvalidParameter(_))));
    }

    #[test]
    fn tracks_a_moving_hotspot() {
        let mut a = allocator().with_epsilon(1e-7);
        a.observe(AccessPattern::uniform(4, 1.0).unwrap()).unwrap();
        a.reoptimize(10_000).unwrap();
        let even = a.allocation().to_vec();
        for v in &even {
            assert!((v - 0.25).abs() < 1e-3);
        }

        a.observe(AccessPattern::hotspot(4, 1.0, NodeId::new(2), 0.8).unwrap()).unwrap();
        let s = a.reoptimize(10_000).unwrap();
        assert!(s.converged);
        let hot = a.allocation().to_vec();
        assert!(hot[2] > 0.26, "{hot:?}");

        // Hotspot moves on.
        a.observe(AccessPattern::hotspot(4, 1.0, NodeId::new(0), 0.8).unwrap()).unwrap();
        a.reoptimize(10_000).unwrap();
        assert!(a.allocation()[0] > a.allocation()[2]);
        assert_eq!(a.epochs(), 3);
    }

    #[test]
    fn warm_start_converges_faster_than_cold_start() {
        let graph = topology::ring(6, 1.0).unwrap();
        let mut a =
            AdaptiveAllocator::new(&graph, 1.5, 1.0, StepSize::Fixed(0.1)).unwrap().with_epsilon(1e-8);
        a.observe(AccessPattern::hotspot(6, 1.0, NodeId::new(1), 0.5).unwrap()).unwrap();
        a.reoptimize(100_000).unwrap();

        // Small drift: warm start should take far fewer iterations than the
        // same optimization from the even split.
        let drifted = AccessPattern::hotspot(6, 1.0, NodeId::new(1), 0.55).unwrap();
        a.observe(drifted.clone()).unwrap();
        let warm = a.reoptimize(100_000).unwrap();

        let mut cold_alloc =
            AdaptiveAllocator::new(&graph, 1.5, 1.0, StepSize::Fixed(0.1)).unwrap().with_epsilon(1e-8);
        cold_alloc.observe(drifted).unwrap();
        let cold = cold_alloc.reoptimize(100_000).unwrap();

        assert!(warm.converged && cold.converged);
        assert!(warm.iterations < cold.iterations, "{} vs {}", warm.iterations, cold.iterations);
    }

    #[test]
    fn budgeted_epochs_still_improve() {
        // §8's "run at night": a tiny budget still yields a feasible, better
        // allocation.
        let mut a = allocator();
        a.observe(AccessPattern::hotspot(4, 1.0, NodeId::new(3), 0.9).unwrap()).unwrap();
        let s = a.reoptimize(3).unwrap();
        assert!(!s.converged);
        assert!(s.trace.records()[0].utility < s.final_utility);
        let sum: f64 = a.allocation().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_mismatched_pattern() {
        let mut a = allocator();
        assert!(a.observe(AccessPattern::uniform(5, 1.0).unwrap()).is_err());
    }

    #[test]
    fn validates_construction() {
        let graph = topology::ring(4, 1.0).unwrap();
        assert!(AdaptiveAllocator::new(&graph, 0.0, 1.0, StepSize::Fixed(0.1)).is_err());
        assert!(AdaptiveAllocator::new(&graph, 1.5, -1.0, StepSize::Fixed(0.1)).is_err());
        assert!(AdaptiveAllocator::new(&graph, 1.5, 1.0, StepSize::Fixed(0.0)).is_err());
    }
}
