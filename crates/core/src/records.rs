//! Non-uniform record popularity (paper §4's "easily relaxed" assumption).
//!
//! The paper assumes "the individual records with a file are accessed on a
//! uniform basis (although this can be easily relaxed)", which makes the
//! storage fraction equal the access probability. This module carries out
//! the relaxation: the optimizer's variable is reinterpreted as each node's
//! share of *access probability mass* `y_i` (the objective is unchanged —
//! both the communication and queueing terms depend only on where accesses
//! go), and the mapping back to physical records accounts for skewed record
//! popularity: a node assigned 40% of the traffic may hold just a handful
//! of hot records, or a long tail of cold ones.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// A popularity distribution over the records of a file (non-negative,
/// summing to 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordPopularity {
    weights: Vec<f64>,
}

impl RecordPopularity {
    /// Creates a distribution from raw (unnormalized) popularity weights.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty list, negative
    /// or non-finite weights, or an all-zero list.
    pub fn new(raw_weights: Vec<f64>) -> Result<Self, CoreError> {
        if raw_weights.is_empty() {
            return Err(CoreError::InvalidParameter("no records".into()));
        }
        if raw_weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(CoreError::InvalidParameter(
                "record weights must be non-negative".into(),
            ));
        }
        let total: f64 = raw_weights.iter().sum();
        if total <= 0.0 {
            return Err(CoreError::InvalidParameter("all record weights are zero".into()));
        }
        Ok(RecordPopularity { weights: raw_weights.into_iter().map(|w| w / total).collect() })
    }

    /// A Zipf popularity over `records` records with the given exponent
    /// (record 0 hottest).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for zero records or a
    /// negative exponent.
    pub fn zipf(records: usize, exponent: f64) -> Result<Self, CoreError> {
        if records == 0 {
            return Err(CoreError::InvalidParameter("no records".into()));
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(CoreError::InvalidParameter(format!("zipf exponent {exponent}")));
        }
        RecordPopularity::new(
            (0..records).map(|r| 1.0 / ((r + 1) as f64).powf(exponent)).collect(),
        )
    }

    /// A uniform popularity over `records` records (the paper's base
    /// assumption).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for zero records.
    pub fn uniform(records: usize) -> Result<Self, CoreError> {
        RecordPopularity::zipf(records, 0.0)
    }

    /// Number of records.
    pub fn record_count(&self) -> usize {
        self.weights.len()
    }

    /// The normalized popularity of each record.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// A record-to-node assignment realizing target access shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordAssignment {
    /// `owner[r]` = the node holding record `r`.
    pub owner: Vec<usize>,
    /// The access-probability mass each node actually received.
    pub realized_shares: Vec<f64>,
    /// The *storage* fraction each node holds (records held / total
    /// records) — under skew this differs from the access share.
    pub storage_fractions: Vec<f64>,
}

impl RecordAssignment {
    /// The largest deviation between a realized and a target access share.
    pub fn max_share_error(&self, targets: &[f64]) -> f64 {
        self.realized_shares
            .iter()
            .zip(targets)
            .map(|(r, t)| (r - t).abs())
            .fold(0.0, f64::max)
    }
}

/// Assigns records to nodes so that each node's *popularity mass*
/// approximates the target access shares `y` from the optimizer.
///
/// Greedy largest-first: records are placed in decreasing popularity onto
/// the node whose remaining target mass is largest — the classic LPT
/// heuristic, whose share error is bounded by the largest single record
/// weight.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `y` is not a non-negative
/// vector summing to 1 (within `1e-6`) or is empty.
pub fn assign_records(
    popularity: &RecordPopularity,
    y: &[f64],
) -> Result<RecordAssignment, CoreError> {
    let n = y.len();
    let total: f64 = y.iter().sum();
    if n == 0 || y.iter().any(|v| !v.is_finite() || *v < -1e-12) || (total - 1.0).abs() > 1e-6 {
        return Err(CoreError::InvalidParameter(format!(
            "target shares must be non-negative and sum to 1, got {total}"
        )));
    }
    let records = popularity.record_count();
    // Records in decreasing popularity (stable order for determinism).
    let mut order: Vec<usize> = (0..records).collect();
    order.sort_by(|&a, &b| {
        popularity.weights()[b]
            .total_cmp(&popularity.weights()[a])
            .then(a.cmp(&b))
    });

    let mut owner = vec![0usize; records];
    let mut realized = vec![0.0f64; n];
    let mut counts = vec![0usize; n];
    for &r in &order {
        // Node with the largest remaining deficit (target − realized).
        let node = (0..n)
            .max_by(|&a, &b| {
                (y[a] - realized[a]).total_cmp(&(y[b] - realized[b])).then(b.cmp(&a))
            })
            .expect("n > 0");
        owner[r] = node;
        realized[node] += popularity.weights()[r];
        counts[node] += 1;
    }
    Ok(RecordAssignment {
        owner,
        realized_shares: realized,
        storage_fractions: counts.iter().map(|&c| c as f64 / records as f64).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn popularity_validates() {
        assert!(RecordPopularity::new(vec![]).is_err());
        assert!(RecordPopularity::new(vec![-1.0, 2.0]).is_err());
        assert!(RecordPopularity::new(vec![0.0, 0.0]).is_err());
        assert!(RecordPopularity::zipf(0, 1.0).is_err());
        assert!(RecordPopularity::zipf(5, -1.0).is_err());
    }

    #[test]
    fn weights_normalize() {
        let p = RecordPopularity::new(vec![3.0, 1.0]).unwrap();
        assert_eq!(p.weights(), &[0.75, 0.25]);
    }

    #[test]
    fn uniform_popularity_reproduces_storage_equals_share() {
        // The paper's base case: with uniform records, storage fraction ≈
        // access share.
        let p = RecordPopularity::uniform(1000).unwrap();
        let y = [0.5, 0.3, 0.2];
        let a = assign_records(&p, &y).unwrap();
        for (s, t) in a.storage_fractions.iter().zip(&y) {
            assert!((s - t).abs() < 2e-3, "{:?}", a.storage_fractions);
        }
        assert!(a.max_share_error(&y) < 2e-3);
    }

    #[test]
    fn skewed_popularity_decouples_storage_from_share() {
        // Under heavy skew a node can serve most traffic from few records.
        let p = RecordPopularity::zipf(1000, 1.5).unwrap();
        let y = [0.6, 0.4];
        let a = assign_records(&p, &y).unwrap();
        assert!(a.max_share_error(&y) < 0.05);
        // The node holding the hottest record serves 60% of traffic from
        // far fewer than 60% of the records.
        let hot_node = a.owner[0];
        assert!(
            a.storage_fractions[hot_node] < 0.55,
            "hot node stores {:.3} of records for {:.3} of traffic",
            a.storage_fractions[hot_node],
            a.realized_shares[hot_node]
        );
    }

    #[test]
    fn zero_share_nodes_get_nothing_hot() {
        let p = RecordPopularity::zipf(100, 1.0).unwrap();
        let y = [1.0, 0.0];
        let a = assign_records(&p, &y).unwrap();
        // Node 1's realized mass is at most the error bound (a single
        // smallest record may land there to break ties).
        assert!(a.realized_shares[1] < 0.02, "{:?}", a.realized_shares);
    }

    #[test]
    fn assignment_validates_targets() {
        let p = RecordPopularity::uniform(10).unwrap();
        assert!(assign_records(&p, &[]).is_err());
        assert!(assign_records(&p, &[0.5, 0.6]).is_err());
        assert!(assign_records(&p, &[1.5, -0.5]).is_err());
    }

    #[test]
    fn assignment_is_deterministic() {
        let p = RecordPopularity::zipf(50, 0.8).unwrap();
        let y = [0.4, 0.35, 0.25];
        assert_eq!(assign_records(&p, &y).unwrap(), assign_records(&p, &y).unwrap());
    }

    proptest! {
        /// Every record gets exactly one owner, realized shares sum to 1,
        /// and the share error is bounded by the largest record weight.
        #[test]
        fn assignment_invariants(
            records in 2usize..200,
            exponent in 0.0f64..2.0,
            raw_y in proptest::collection::vec(0.05f64..1.0, 2..6),
        ) {
            let p = RecordPopularity::zipf(records, exponent).unwrap();
            let total: f64 = raw_y.iter().sum();
            let y: Vec<f64> = raw_y.iter().map(|v| v / total).collect();
            let a = assign_records(&p, &y).unwrap();
            prop_assert_eq!(a.owner.len(), records);
            prop_assert!(a.owner.iter().all(|&o| o < y.len()));
            let share_sum: f64 = a.realized_shares.iter().sum();
            prop_assert!((share_sum - 1.0).abs() < 1e-9);
            let storage_sum: f64 = a.storage_fractions.iter().sum();
            prop_assert!((storage_sum - 1.0).abs() < 1e-9);
            let max_weight = p.weights().iter().copied().fold(0.0, f64::max);
            prop_assert!(a.max_share_error(&y) <= max_weight + 1e-9,
                "error {} vs max weight {}", a.max_share_error(&y), max_weight);
        }
    }
}
