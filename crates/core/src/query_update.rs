//! Query/update cost splitting (paper §5.4).
//!
//! "Different costs for queries and updates can be easily taken into account
//! by splitting the cost function into two separate costs … and weighting
//! these costs appropriately." Queries and updates form two access streams
//! with their own rates and their own per-unit communication weights (an
//! update response typically carries less data than a query response, or
//! vice versa); both streams queue at the same servers.
//!
//! The blended model is still an instance of [`SingleFileProblem`]: the
//! communication term becomes
//! `C_i = w_q·(λ_q/λ)·C_i^q + w_u·(λ_u/λ)·C_i^u` with `λ = λ_q + λ_u`
//! the total queueing load.

use fap_net::{AccessPattern, CostMatrix, Graph};
use fap_queue::Mm1Delay;

use crate::error::CoreError;
use crate::single::SingleFileProblem;

/// Builder for a query/update-weighted single-file problem.
///
/// # Example
///
/// ```
/// use fap_core::query_update::QueryUpdateModel;
/// use fap_net::{topology, AccessPattern};
///
/// let graph = topology::ring(4, 1.0)?;
/// let queries = AccessPattern::uniform(4, 0.8)?;
/// let updates = AccessPattern::uniform(4, 0.2)?;
/// let problem = QueryUpdateModel::new(queries, updates)
///     .with_query_weight(1.0)
///     .with_update_weight(2.5) // updates are costlier to ship
///     .build_mm1(&graph, 1.5, 1.0)?;
/// assert_eq!(problem.node_count(), 4);
/// assert!((problem.total_rate() - 1.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct QueryUpdateModel {
    queries: AccessPattern,
    updates: AccessPattern,
    query_weight: f64,
    update_weight: f64,
}

impl QueryUpdateModel {
    /// Creates the model from separate query and update access patterns
    /// (both weights default to 1, recovering the unsplit model).
    pub fn new(queries: AccessPattern, updates: AccessPattern) -> Self {
        QueryUpdateModel { queries, updates, query_weight: 1.0, update_weight: 1.0 }
    }

    /// Sets the per-access communication weight of queries.
    #[must_use]
    pub fn with_query_weight(mut self, weight: f64) -> Self {
        self.query_weight = weight;
        self
    }

    /// Sets the per-access communication weight of updates.
    #[must_use]
    pub fn with_update_weight(mut self, weight: f64) -> Self {
        self.update_weight = weight;
        self
    }

    /// Builds the blended [`SingleFileProblem`] over `graph` with M/M/1
    /// nodes of rate `mu`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for mismatched pattern sizes
    /// or negative weights, plus the conditions of
    /// [`SingleFileProblem::from_parts`].
    pub fn build_mm1(
        &self,
        graph: &Graph,
        mu: f64,
        k: f64,
    ) -> Result<SingleFileProblem<Mm1Delay>, CoreError> {
        let costs = graph.shortest_path_matrix()?;
        self.build_with_costs(&costs, mu, k)
    }

    /// Builds the blended problem from a pre-computed cost matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QueryUpdateModel::build_mm1`].
    pub fn build_with_costs(
        &self,
        costs: &CostMatrix,
        mu: f64,
        k: f64,
    ) -> Result<SingleFileProblem<Mm1Delay>, CoreError> {
        let n = costs.node_count();
        if self.queries.node_count() != n || self.updates.node_count() != n {
            return Err(CoreError::InvalidParameter(format!(
                "query pattern covers {} nodes, update pattern {}, network has {n}",
                self.queries.node_count(),
                self.updates.node_count()
            )));
        }
        if !(self.query_weight.is_finite()
            && self.query_weight >= 0.0
            && self.update_weight.is_finite()
            && self.update_weight >= 0.0)
        {
            return Err(CoreError::InvalidParameter(
                "query/update weights must be non-negative".into(),
            ));
        }
        let cq = costs.systemwide_access_costs(&self.queries);
        let cu = costs.systemwide_access_costs(&self.updates);
        let lq = self.queries.total_rate();
        let lu = self.updates.total_rate();
        let total = lq + lu;
        // Blend per-access communication costs by stream share and weight;
        // the queueing term sees the combined Poisson stream.
        let blended: Vec<f64> = cq
            .iter()
            .zip(&cu)
            .map(|(q, u)| (self.query_weight * lq * q + self.update_weight * lu * u) / total)
            .collect();
        let delay = Mm1Delay::new(mu)?;
        SingleFileProblem::from_parts(blended, total, vec![delay; n], k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use fap_net::{topology, NodeId};

    #[test]
    fn unit_weights_match_plain_model() {
        let graph = topology::ring(4, 1.0).unwrap();
        let q = AccessPattern::uniform(4, 0.6).unwrap();
        let u = AccessPattern::uniform(4, 0.4).unwrap();
        let split = QueryUpdateModel::new(q, u).build_mm1(&graph, 1.5, 1.0).unwrap();
        let plain = SingleFileProblem::mm1(
            &graph,
            &AccessPattern::uniform(4, 1.0).unwrap(),
            1.5,
            1.0,
        )
        .unwrap();
        for (a, b) in split.access_costs().iter().zip(plain.access_costs()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((split.total_rate() - plain.total_rate()).abs() < 1e-12);
    }

    #[test]
    fn heavier_updates_pull_file_toward_update_sources() {
        // Queries come uniformly; updates come overwhelmingly from node 0.
        // As the update weight grows, the optimum shifts toward node 0.
        let graph = topology::line(4, 1.0).unwrap();
        let q = AccessPattern::uniform(4, 0.5).unwrap();
        let u = AccessPattern::hotspot(4, 0.5, NodeId::new(0), 0.97).unwrap();
        let light = QueryUpdateModel::new(q.clone(), u.clone())
            .with_update_weight(0.1)
            .build_mm1(&graph, 1.5, 0.2)
            .unwrap();
        let heavy = QueryUpdateModel::new(q, u)
            .with_update_weight(8.0)
            .build_mm1(&graph, 1.5, 0.2)
            .unwrap();
        let x_light = reference::solve(&light).unwrap().allocation;
        let x_heavy = reference::solve(&heavy).unwrap().allocation;
        assert!(
            x_heavy[0] > x_light[0],
            "update weighting should pull the file to node 0: {x_light:?} vs {x_heavy:?}"
        );
    }

    #[test]
    fn rejects_mismatched_patterns_and_bad_weights() {
        let graph = topology::ring(4, 1.0).unwrap();
        let q = AccessPattern::uniform(4, 0.5).unwrap();
        let u3 = AccessPattern::uniform(3, 0.5).unwrap();
        assert!(QueryUpdateModel::new(q.clone(), u3).build_mm1(&graph, 1.5, 1.0).is_err());
        let u = AccessPattern::uniform(4, 0.5).unwrap();
        assert!(QueryUpdateModel::new(q, u)
            .with_query_weight(-1.0)
            .build_mm1(&graph, 1.5, 1.0)
            .is_err());
    }

    #[test]
    fn queueing_load_is_the_combined_stream() {
        let graph = topology::ring(4, 1.0).unwrap();
        let q = AccessPattern::uniform(4, 0.9).unwrap();
        let u = AccessPattern::uniform(4, 0.3).unwrap();
        let p = QueryUpdateModel::new(q, u)
            .with_update_weight(0.0) // free updates still queue
            .build_mm1(&graph, 1.5, 1.0)
            .unwrap();
        assert!((p.total_rate() - 1.2).abs() < 1e-12);
    }
}
