//! The single-file fractional allocation model (paper §4).
//!
//! One copy of one divisible file is spread over `N` nodes; `x_i` is the
//! fraction stored at node `i` and, under uniform record access, also the
//! probability that an access is served by node `i`. The system-wide cost
//! of an allocation combines communication and queueing delay:
//!
//! ```text
//! C(x) = Σ_i ( C_i + k · T_i(λ x_i) ) · x_i          (equation 1)
//! ```
//!
//! with `C_i = Σ_j (λ_j/λ) c_ji` the workload-weighted cost of reaching
//! node `i` and `T_i` the node's mean response time at arrival rate
//! `λ x_i` — `1/(μ − λ x_i)` for the paper's M/M/1 nodes, or any other
//! [`DelayModel`] per §5.4. The utility maximized by the decentralized
//! algorithm is `U = −C` (equation 2).

use serde::{Deserialize, Serialize};

use fap_econ::problem::check_dimension;
use fap_econ::{AllocationProblem, EconError};
use fap_net::{AccessPattern, CostMatrix, CostProvider, Graph};
use fap_queue::{DelayModel, Mg1Delay, Mm1Delay};

use crate::error::CoreError;

/// The paper's single-file allocation problem, generic over the per-node
/// delay model (`Mm1Delay` reproduces equation 1 exactly).
///
/// Implements [`AllocationProblem`] with closed-form gradients and
/// curvatures:
///
/// ```text
/// ∂C/∂x_i  = C_i + k·T_i(λx_i) + k·λ·x_i·T_i′(λx_i)
/// ∂²C/∂x_i² = 2kλ·T_i′(λx_i) + kλ²·x_i·T_i″(λx_i)
/// ```
///
/// which for M/M/1 reduce to the paper's `C_i + kμ/(μ−λx_i)²` and
/// `2kμλ/(μ−λx_i)³`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleFileProblem<D = Mm1Delay> {
    access_costs: Vec<f64>,
    total_rate: f64,
    delays: Vec<D>,
    k: f64,
}

impl SingleFileProblem<Mm1Delay> {
    /// Builds the paper's model on `graph`: cheapest-path routing, M/M/1
    /// nodes with common service rate `mu`, delay weight `k`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Net`] if the graph is disconnected,
    /// [`CoreError::InvalidParameter`] for invalid `mu`/`k`, and
    /// [`CoreError::InsufficientCapacity`] when `Σ μ_i ≤ λ`.
    pub fn mm1(
        graph: &Graph,
        pattern: &AccessPattern,
        mu: f64,
        k: f64,
    ) -> Result<Self, CoreError> {
        let costs = graph.shortest_path_matrix()?;
        Self::mm1_with_costs(&costs, pattern, mu, k)
    }

    /// Builds the paper's model from a pre-computed cost matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SingleFileProblem::mm1`].
    pub fn mm1_with_costs(
        costs: &CostMatrix,
        pattern: &AccessPattern,
        mu: f64,
        k: f64,
    ) -> Result<Self, CoreError> {
        Self::mm1_with_provider(costs, pattern, mu, k)
    }

    /// Builds the paper's model from any [`CostProvider`] — the dense
    /// matrix, the landmark oracle, or anything else implementing the
    /// sparse cost substrate. For a dense [`CostMatrix`] this is
    /// bit-identical to [`SingleFileProblem::mm1_with_costs`]; for a sparse
    /// provider the access costs `C_i` are the provider's estimates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SingleFileProblem::mm1`].
    pub fn mm1_with_provider(
        provider: &(impl CostProvider + ?Sized),
        pattern: &AccessPattern,
        mu: f64,
        k: f64,
    ) -> Result<Self, CoreError> {
        let n = provider.node_count();
        let delay = Mm1Delay::new(mu)?;
        Self::from_parts(
            provider.systemwide_access_costs(pattern),
            pattern.total_rate(),
            vec![delay; n],
            k,
        )
    }

    /// Builds the model with heterogeneous M/M/1 service rates `mus`
    /// (the §5.4 relaxation "replacing the μ in equation 2 by the
    /// individual μ_i's").
    ///
    /// # Errors
    ///
    /// Same conditions as [`SingleFileProblem::mm1`], plus a length check on
    /// `mus`.
    pub fn mm1_heterogeneous(
        graph: &Graph,
        pattern: &AccessPattern,
        mus: &[f64],
        k: f64,
    ) -> Result<Self, CoreError> {
        let costs = graph.shortest_path_matrix()?;
        Self::mm1_heterogeneous_with_costs(&costs, pattern, mus, k)
    }

    /// [`SingleFileProblem::mm1_heterogeneous`] from a pre-computed cost
    /// matrix, so callers holding a
    /// [`CostMatrix`] — e.g. one served out of a topology-keyed cache —
    /// skip the all-pairs shortest-path run entirely. Bit-identical to the
    /// graph-based constructor for the matrix that graph produces.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SingleFileProblem::mm1_heterogeneous`], minus
    /// the connectivity check (a valid `CostMatrix` is always complete).
    pub fn mm1_heterogeneous_with_costs(
        costs: &CostMatrix,
        pattern: &AccessPattern,
        mus: &[f64],
        k: f64,
    ) -> Result<Self, CoreError> {
        Self::mm1_heterogeneous_with_provider(costs, pattern, mus, k)
    }

    /// [`SingleFileProblem::mm1_heterogeneous_with_costs`] over any
    /// [`CostProvider`] (bit-identical for the dense matrix).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SingleFileProblem::mm1_heterogeneous`].
    pub fn mm1_heterogeneous_with_provider(
        provider: &(impl CostProvider + ?Sized),
        pattern: &AccessPattern,
        mus: &[f64],
        k: f64,
    ) -> Result<Self, CoreError> {
        let delays = mus.iter().map(|&mu| Mm1Delay::new(mu)).collect::<Result<Vec<_>, _>>()?;
        Self::from_parts(
            provider.systemwide_access_costs(pattern),
            pattern.total_rate(),
            delays,
            k,
        )
    }
}

impl SingleFileProblem<Mg1Delay> {
    /// Builds the §5.4 M/G/1 variant: common service rate `mu` and
    /// service-time squared coefficient of variation `scv` at every node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SingleFileProblem::mm1`].
    pub fn mg1(
        graph: &Graph,
        pattern: &AccessPattern,
        mu: f64,
        scv: f64,
        k: f64,
    ) -> Result<Self, CoreError> {
        let costs = graph.shortest_path_matrix()?;
        let delay = Mg1Delay::new(mu, scv)?;
        Self::from_parts(
            costs.systemwide_access_costs(pattern),
            pattern.total_rate(),
            vec![delay; costs.node_count()],
            k,
        )
    }
}

impl<D: DelayModel> SingleFileProblem<D> {
    /// Builds the model from raw parts: per-node system-wide access costs
    /// `C_i`, total access rate `λ`, per-node delay models, and the delay
    /// weight `k`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for empty/mismatched inputs,
    /// negative costs, non-positive `λ` or negative `k`, and
    /// [`CoreError::InsufficientCapacity`] when the combined service
    /// capacity cannot carry `λ`.
    pub fn from_parts(
        access_costs: Vec<f64>,
        total_rate: f64,
        delays: Vec<D>,
        k: f64,
    ) -> Result<Self, CoreError> {
        if access_costs.is_empty() || access_costs.len() != delays.len() {
            return Err(CoreError::InvalidParameter(format!(
                "{} access costs for {} delay models",
                access_costs.len(),
                delays.len()
            )));
        }
        if access_costs.iter().any(|c| !c.is_finite() || *c < 0.0) {
            return Err(CoreError::InvalidParameter("access costs must be non-negative".into()));
        }
        if !total_rate.is_finite() || total_rate <= 0.0 {
            return Err(CoreError::InvalidParameter(format!("total rate {total_rate}")));
        }
        if !k.is_finite() || k < 0.0 {
            return Err(CoreError::InvalidParameter(format!("delay weight k = {k}")));
        }
        let total_capacity: f64 = delays.iter().map(DelayModel::capacity).sum();
        if total_capacity <= total_rate {
            return Err(CoreError::InsufficientCapacity {
                total_capacity,
                offered_load: total_rate,
            });
        }
        Ok(SingleFileProblem { access_costs, total_rate, delays, k })
    }

    /// Adds per-unit-of-file storage costs `s_i` (Casey's formulation,
    /// paper §3 survey: "the file allocation problem with storage costs").
    ///
    /// Storage enters the objective as `Σ_i s_i x_i`, which has exactly the
    /// same form as the communication term, so it folds into the per-node
    /// constants: holding file at a storage-expensive node now carries a
    /// standing cost alongside the access costs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a wrong-length slice or
    /// negative/non-finite entries.
    pub fn with_storage_costs(mut self, storage_costs: &[f64]) -> Result<Self, CoreError> {
        if storage_costs.len() != self.access_costs.len() {
            return Err(CoreError::InvalidParameter(format!(
                "{} storage costs for {} nodes",
                storage_costs.len(),
                self.access_costs.len()
            )));
        }
        if storage_costs.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err(CoreError::InvalidParameter(
                "storage costs must be non-negative".into(),
            ));
        }
        for (c, s) in self.access_costs.iter_mut().zip(storage_costs) {
            *c += s;
        }
        Ok(self)
    }

    /// The system-wide access costs `C_i` (including any folded-in storage
    /// costs).
    pub fn access_costs(&self) -> &[f64] {
        &self.access_costs
    }

    /// The network-wide access rate `λ`.
    pub fn total_rate(&self) -> f64 {
        self.total_rate
    }

    /// The delay weight `k` of equation 1.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The per-node delay models.
    pub fn delays(&self) -> &[D] {
        &self.delays
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.access_costs.len()
    }

    /// The arrival rate `λ x_i` directed at node `i` under allocation `x`,
    /// with a stability check.
    fn arrival(&self, i: usize, xi: f64) -> Result<f64, EconError> {
        let a = self.total_rate * xi;
        if !a.is_finite() || a >= self.delays[i].capacity() {
            return Err(EconError::Model(format!(
                "allocation {xi} at node {i} offers load {a} at or above capacity {}",
                self.delays[i].capacity()
            )));
        }
        Ok(a)
    }

    /// The cost `C(x)` of equation 1.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::Model`] when some node is driven at or beyond
    /// its service capacity.
    pub fn cost_of(&self, x: &[f64]) -> Result<f64, EconError> {
        Ok(-self.utility(x)?)
    }
}

impl<D: DelayModel> AllocationProblem for SingleFileProblem<D> {
    fn dimension(&self) -> usize {
        self.access_costs.len()
    }

    fn total_resource(&self) -> f64 {
        1.0
    }

    fn utility(&self, x: &[f64]) -> Result<f64, EconError> {
        check_dimension(self.dimension(), x)?;
        let mut cost = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            let a = self.arrival(i, xi)?;
            // The unchecked form stays valid for transiently negative x
            // (arrival < 0) that the unconstrained update may visit.
            let t = self.delays[i].response_time_unchecked(a);
            cost += (self.access_costs[i] + self.k * t) * xi;
        }
        Ok(-cost)
    }

    fn marginal_utilities(&self, x: &[f64], out: &mut [f64]) -> Result<(), EconError> {
        check_dimension(self.dimension(), x)?;
        check_dimension(self.dimension(), out)?;
        for (i, &xi) in x.iter().enumerate() {
            let a = self.arrival(i, xi)?;
            let t = self.delays[i].response_time_unchecked(a);
            let dt = self.delays[i].d_response_time_unchecked(a);
            // ∂C/∂x_i = C_i + k·T + k·λ·x·T′
            let dc = self.access_costs[i] + self.k * t + self.k * self.total_rate * xi * dt;
            out[i] = -dc;
        }
        Ok(())
    }

    fn curvatures(&self, x: &[f64], out: &mut [f64]) -> Result<(), EconError> {
        check_dimension(self.dimension(), x)?;
        check_dimension(self.dimension(), out)?;
        let l = self.total_rate;
        for (i, &xi) in x.iter().enumerate() {
            let a = self.arrival(i, xi)?;
            let dt = self.delays[i].d_response_time_unchecked(a);
            let d2t = self.delays[i].d2_response_time_unchecked(a);
            // ∂²C/∂x_i² = 2kλT′ + kλ²xT″
            let d2c = 2.0 * self.k * l * dt + self.k * l * l * xi * d2t;
            out[i] = -d2c;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_econ::{ResourceDirectedOptimizer, StepSize};
    use fap_net::topology;
    use proptest::prelude::*;

    /// The paper's §6 network: 4-node ring, unit link costs, uniform λ = 1,
    /// μ = 1.5, k = 1.
    fn paper_problem() -> SingleFileProblem {
        let graph = topology::ring(4, 1.0).unwrap();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).unwrap()
    }

    #[test]
    fn paper_access_costs_are_uniform_one() {
        let p = paper_problem();
        for c in p.access_costs() {
            assert!((c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cost_matches_hand_computation() {
        let p = paper_problem();
        // Whole file at one node: C = (1 + 1/(1.5−1))·1 = 3.
        assert!((p.cost_of(&[0.0, 0.0, 0.0, 1.0]).unwrap() - 3.0).abs() < 1e-12);
        // Even split: C = (1 + 1/1.25)·1 = 1.8.
        assert!((p.cost_of(&[0.25; 4]).unwrap() - 1.8).abs() < 1e-12);
        // Paper's starting allocation (0.8, 0.1, 0.1, 0.0).
        let c0 = p.cost_of(&[0.8, 0.1, 0.1, 0.0]).unwrap();
        let by_hand = (1.0 + 1.0 / 0.7) * 0.8 + 2.0 * (1.0 + 1.0 / 1.4) * 0.1;
        assert!((c0 - by_hand).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_paper_closed_form() {
        let p = paper_problem();
        let x = [0.8, 0.1, 0.1, 0.0];
        let mut g = vec![0.0; 4];
        p.marginal_utilities(&x, &mut g).unwrap();
        for (i, &xi) in x.iter().enumerate() {
            let d = 1.5 - xi; // μ − λx_i with λ = 1
            let expected = -(1.0 + 1.5 / (d * d)); // −(C_i + kμ/(μ−λx)²)
            assert!((g[i] - expected).abs() < 1e-12, "node {i}: {} vs {expected}", g[i]);
        }
    }

    #[test]
    fn curvature_matches_paper_closed_form() {
        let p = paper_problem();
        let x = [0.4, 0.3, 0.2, 0.1];
        let mut h = vec![0.0; 4];
        p.curvatures(&x, &mut h).unwrap();
        for (i, &xi) in x.iter().enumerate() {
            let d = 1.5 - xi;
            let expected = -(2.0 * 1.5 / (d * d * d)); // −2kμλ/(μ−λx)³
            assert!((h[i] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_matches_finite_differences_for_mg1() {
        let graph = topology::ring(5, 2.0).unwrap();
        let pattern = AccessPattern::zipf(5, 1.2, 1.0).unwrap();
        let p = SingleFileProblem::mg1(&graph, &pattern, 2.0, 2.5, 0.7).unwrap();
        let x = [0.3, 0.25, 0.2, 0.15, 0.1];
        let mut g = vec![0.0; 5];
        p.marginal_utilities(&x, &mut g).unwrap();
        let h = 1e-7;
        for i in 0..5 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (p.utility(&xp).unwrap() - p.utility(&xm).unwrap()) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-5, "node {i}: {} vs {fd}", g[i]);
        }
    }

    #[test]
    fn rejects_invalid_construction() {
        let graph = topology::ring(4, 1.0).unwrap();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        assert!(matches!(
            SingleFileProblem::mm1(&graph, &pattern, 1.5, -1.0),
            Err(CoreError::InvalidParameter(_))
        ));
        assert!(SingleFileProblem::mm1(&graph, &pattern, 0.0, 1.0).is_err());
        // Σμ = 0.2·4 = 0.8 < λ = 1: no allocation can be stable.
        assert!(matches!(
            SingleFileProblem::mm1(&graph, &pattern, 0.2, 1.0),
            Err(CoreError::InsufficientCapacity { .. })
        ));
        assert!(matches!(
            SingleFileProblem::from_parts(vec![1.0], 1.0, vec![Mm1Delay::new(2.0).unwrap(); 2], 1.0),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn evaluation_rejects_overloaded_node() {
        // μ = 1.2 per node, λ = 1: whole file at one node is stable, but
        // λ·x = 1.3 (possible transiently under the unconstrained rule with
        // x > 1) is not.
        let p = SingleFileProblem::from_parts(
            vec![0.0, 0.0],
            1.0,
            vec![Mm1Delay::new(1.2).unwrap(); 2],
            1.0,
        )
        .unwrap();
        assert!(p.utility(&[1.3, -0.3]).is_err());
        assert!(p.utility(&[0.9, 0.1]).is_ok());
    }

    #[test]
    fn utility_defined_for_transient_negative_allocations() {
        let p = paper_problem();
        // The Figure-3 first iterate at α = 0.67 (see fap-econ projection
        // docs): node 1 transiently negative.
        let x = [-0.3702, 0.4680, 0.4680, 0.4341];
        let u = p.utility(&x).unwrap();
        assert!(u.is_finite());
    }

    #[test]
    fn symmetric_ring_optimum_is_even_split() {
        let p = paper_problem();
        let s = ResourceDirectedOptimizer::new(StepSize::Fixed(0.19))
            .with_epsilon(1e-6)
            .run(&p, &[0.8, 0.1, 0.1, 0.0])
            .unwrap();
        assert!(s.converged);
        for x in &s.allocation {
            assert!((x - 0.25).abs() < 1e-4, "{:?}", s.allocation);
        }
        assert!((s.final_cost() - 1.8).abs() < 1e-6);
        assert!(s.trace.is_cost_monotone_decreasing(1e-10));
    }

    #[test]
    fn storage_costs_push_file_off_expensive_nodes() {
        let graph = topology::full_mesh(3, 1.0).unwrap();
        let pattern = AccessPattern::uniform(3, 1.0).unwrap();
        let base = SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).unwrap();
        let with_storage = base.clone().with_storage_costs(&[5.0, 0.0, 0.0]).unwrap();
        let r_base = crate::reference::solve(&base).unwrap();
        let r_storage = crate::reference::solve(&with_storage).unwrap();
        assert!(
            r_storage.allocation[0] < r_base.allocation[0],
            "{:?} vs {:?}",
            r_storage.allocation,
            r_base.allocation
        );
        // Free-storage nodes pick up the slack.
        assert!(r_storage.allocation[1] > r_base.allocation[1]);
    }

    #[test]
    fn storage_costs_validate() {
        let graph = topology::full_mesh(3, 1.0).unwrap();
        let pattern = AccessPattern::uniform(3, 1.0).unwrap();
        let p = SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).unwrap();
        assert!(p.clone().with_storage_costs(&[1.0, 1.0]).is_err());
        assert!(p.clone().with_storage_costs(&[1.0, -1.0, 0.0]).is_err());
        assert!(p.with_storage_costs(&[f64::NAN, 0.0, 0.0]).is_err());
    }

    #[test]
    fn heterogeneous_rates_shift_file_to_fast_node() {
        let graph = topology::full_mesh(3, 1.0).unwrap();
        let pattern = AccessPattern::uniform(3, 1.0).unwrap();
        let p =
            SingleFileProblem::mm1_heterogeneous(&graph, &pattern, &[5.0, 1.2, 1.2], 1.0).unwrap();
        let s = ResourceDirectedOptimizer::new(StepSize::Fixed(0.05))
            .with_epsilon(1e-7)
            .run(&p, &[1.0 / 3.0; 3])
            .unwrap();
        assert!(s.converged);
        assert!(
            s.allocation[0] > s.allocation[1] && s.allocation[0] > s.allocation[2],
            "{:?}",
            s.allocation
        );
    }

    #[test]
    fn zero_k_concentrates_file_at_cheapest_node() {
        // Pure communication cost: the optimal strategy is to put the whole
        // file at the node where C_i is minimal (paper §4).
        let graph = topology::star(4, 1.0).unwrap(); // hub node 0 is cheapest
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        let p = SingleFileProblem::mm1(&graph, &pattern, 2.0, 0.0).unwrap();
        let s = ResourceDirectedOptimizer::new(StepSize::Fixed(0.05))
            .with_epsilon(1e-7)
            .with_max_iterations(100_000)
            .run(&p, &[0.25; 4])
            .unwrap();
        assert!(s.allocation[0] > 0.99, "{:?}", s.allocation);
    }

    #[test]
    fn larger_k_spreads_the_file_more_evenly() {
        // Delay dominance pushes toward even fragmentation (paper §4's
        // "diametrically opposed" strategies).
        let graph = topology::star(4, 1.0).unwrap();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        let spread_for = |k: f64| {
            let p = SingleFileProblem::mm1(&graph, &pattern, 2.0, k).unwrap();
            let s = ResourceDirectedOptimizer::new(StepSize::Fixed(0.02))
                .with_epsilon(1e-8)
                .with_max_iterations(100_000)
                .run(&p, &[0.25; 4])
                .unwrap();
            let max = s.allocation.iter().copied().fold(f64::MIN, f64::max);
            let min = s.allocation.iter().copied().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(spread_for(10.0) < spread_for(0.5));
    }

    proptest! {
        /// Analytic gradients agree with finite differences at random
        /// feasible interior points on random networks.
        #[test]
        fn gradients_match_finite_differences(
            seed in 0u64..50,
            n in 3usize..8,
            k in 0.1f64..3.0,
        ) {
            let graph = topology::random_connected(n, 0.5, 1.0..3.0, seed).unwrap();
            let pattern = AccessPattern::random(n, 0.1..0.5, seed).unwrap();
            let p = SingleFileProblem::mm1(&graph, &pattern, pattern.total_rate() * 1.7, k).unwrap();
            let x = vec![1.0 / n as f64; n];
            let mut g = vec![0.0; n];
            p.marginal_utilities(&x, &mut g).unwrap();
            let h = 1e-7;
            for i in 0..n {
                let mut xp = x.clone();
                xp[i] += h;
                let mut xm = x.clone();
                xm[i] -= h;
                let fd = (p.utility(&xp).unwrap() - p.utility(&xm).unwrap()) / (2.0 * h);
                prop_assert!((g[i] - fd).abs() < 1e-4);
            }
        }
    }
}
