//! The Theorem-2 step-size bound.
//!
//! The paper's appendix derives an `α` below which every iteration strictly
//! increases utility, guaranteeing convergence:
//!
//! ```text
//! α < ε² (μ−λ)⁴ / ( 2 n k λ ( (C_max − C_min)·μ·(μ−λ) + λk(2μ−λ) )² )
//! ```
//!
//! Re-deriving the appendix algebra from its own stated numerator and
//! denominator bounds yields a slightly different power of `(μ−λ)`:
//!
//! ```text
//! α < ε² μ (μ−λ)⁵ / ( 2 n k λ ( … )² )
//! ```
//!
//! (the two differ by a factor `μ(μ−λ)`, about 0.75 at the paper's §6
//! parameters). Both are exposed here, and both are — as the paper itself
//! concedes in §8.2 — "too small to be of any real significance" compared
//! with the step sizes that work in practice; ablation A1 measures the gap.

use fap_queue::Mm1Delay;

use crate::error::CoreError;
use crate::single::SingleFileProblem;

/// Inputs shared by both bound formulas, extracted from a uniform-μ M/M/1
/// problem.
fn bound_parts(
    problem: &SingleFileProblem<Mm1Delay>,
    epsilon: f64,
) -> Result<(f64, f64, f64, f64, f64, f64), CoreError> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(CoreError::InvalidParameter(format!("epsilon {epsilon}")));
    }
    let mus: Vec<f64> = problem.delays().iter().map(Mm1Delay::service_rate).collect();
    let mu = mus[0];
    if mus.iter().any(|m| (m - mu).abs() > 1e-12) {
        return Err(CoreError::InvalidParameter(
            "the Theorem-2 bound assumes a uniform service rate".into(),
        ));
    }
    let lambda = problem.total_rate();
    if mu <= lambda {
        return Err(CoreError::InvalidParameter(format!(
            "the Theorem-2 bound requires mu > lambda (got mu = {mu}, lambda = {lambda})"
        )));
    }
    let k = problem.k();
    if k <= 0.0 {
        return Err(CoreError::InvalidParameter("the Theorem-2 bound requires k > 0".into()));
    }
    let n = problem.node_count() as f64;
    let cmax = problem.access_costs().iter().copied().fold(f64::MIN, f64::max);
    let cmin = problem.access_costs().iter().copied().fold(f64::MAX, f64::min);
    Ok((epsilon, mu, lambda, k, n, cmax - cmin))
}

/// The common squared term `((C_max − C_min)·μ·(μ−λ) + λk(2μ−λ))²`.
fn squared_term(mu: f64, lambda: f64, k: f64, cspread: f64) -> f64 {
    let p = cspread * mu * (mu - lambda) + lambda * k * (2.0 * mu - lambda);
    p * p
}

/// The bound exactly as printed in the paper's appendix.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-uniform service rates,
/// `μ ≤ λ`, `k ≤ 0`, or a non-positive ε.
pub fn alpha_bound_paper(
    problem: &SingleFileProblem<Mm1Delay>,
    epsilon: f64,
) -> Result<f64, CoreError> {
    let (eps, mu, lambda, k, n, cspread) = bound_parts(problem, epsilon)?;
    let d = mu - lambda;
    Ok(eps * eps * d.powi(4) / (2.0 * n * k * lambda * squared_term(mu, lambda, k, cspread)))
}

/// The bound the appendix algebra actually yields
/// (`2·(ε²/2)` over the stated denominator upper bound).
///
/// # Errors
///
/// Same conditions as [`alpha_bound_paper`].
pub fn alpha_bound_exact(
    problem: &SingleFileProblem<Mm1Delay>,
    epsilon: f64,
) -> Result<f64, CoreError> {
    let (eps, mu, lambda, k, n, cspread) = bound_parts(problem, epsilon)?;
    let d = mu - lambda;
    Ok(eps * eps * mu * d.powi(5) / (2.0 * n * k * lambda * squared_term(mu, lambda, k, cspread)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_econ::{ResourceDirectedOptimizer, StepSize};
    use fap_net::{topology, AccessPattern};

    fn paper_problem() -> SingleFileProblem<Mm1Delay> {
        let graph = topology::ring(4, 1.0).unwrap();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).unwrap()
    }

    #[test]
    fn paper_bound_matches_hand_calculation() {
        // μ = 1.5, λ = 1, k = 1, n = 4, C_max = C_min = 1, ε = 0.001:
        // paper bound = ε²(0.5)⁴ / (2·4·1·1·(1·(2·1.5−1))²) = ε²·0.0625/32.
        let p = paper_problem();
        let b = alpha_bound_paper(&p, 0.001).unwrap();
        let expected = 1e-6 * 0.0625 / 32.0;
        assert!((b - expected).abs() < 1e-15, "{b} vs {expected}");
    }

    #[test]
    fn exact_bound_differs_by_mu_times_gap() {
        let p = paper_problem();
        let paper = alpha_bound_paper(&p, 0.001).unwrap();
        let exact = alpha_bound_exact(&p, 0.001).unwrap();
        // exact / paper = μ(μ−λ) = 1.5·0.5 = 0.75.
        assert!((exact / paper - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bounds_scale_with_epsilon_squared() {
        let p = paper_problem();
        let b1 = alpha_bound_paper(&p, 0.001).unwrap();
        let b2 = alpha_bound_paper(&p, 0.002).unwrap();
        assert!((b2 / b1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bound_guarantees_monotone_convergence() {
        // Running at the (tiny) guaranteed α must preserve monotonicity.
        // With ε = 0.1 the bound is large enough to finish in reasonable
        // iterations.
        let p = paper_problem();
        let alpha = alpha_bound_exact(&p, 0.1).unwrap();
        let s = ResourceDirectedOptimizer::new(StepSize::Fixed(alpha))
            .with_epsilon(0.1)
            .with_max_iterations(2_000_000)
            .run(&p, &[0.8, 0.1, 0.1, 0.0])
            .unwrap();
        assert!(s.converged, "bound α = {alpha} did not converge");
        assert!(s.trace.is_cost_monotone_decreasing(1e-12));
    }

    #[test]
    fn bound_is_far_below_practical_step_sizes() {
        // §8.2: "In practice this value of α is too small to be of any real
        // significance" — Figure 3 converges at α = 0.67.
        let p = paper_problem();
        let b = alpha_bound_paper(&p, 0.001).unwrap();
        assert!(b < 0.67 * 1e-6, "bound {b} is unexpectedly large");
    }

    #[test]
    fn rejects_invalid_inputs() {
        let p = paper_problem();
        assert!(alpha_bound_paper(&p, 0.0).is_err());
        assert!(alpha_bound_paper(&p, f64::NAN).is_err());

        // Non-uniform μ.
        let graph = topology::ring(4, 1.0).unwrap();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        let het = SingleFileProblem::mm1_heterogeneous(
            &graph,
            &pattern,
            &[1.5, 1.5, 1.5, 2.0],
            1.0,
        )
        .unwrap();
        assert!(alpha_bound_paper(&het, 0.001).is_err());

        // μ ≤ λ (still constructible: joint capacity suffices).
        let tight = SingleFileProblem::mm1(&graph, &pattern, 0.9, 1.0).unwrap();
        assert!(alpha_bound_paper(&tight, 0.001).is_err());

        // k = 0.
        let nok = SingleFileProblem::mm1(&graph, &pattern, 1.5, 0.0).unwrap();
        assert!(alpha_bound_paper(&nok, 0.001).is_err());
    }
}
