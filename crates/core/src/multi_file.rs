//! The multi-file extension (paper §5.4).
//!
//! With `M` distinct files (one copy each), `x_i^j` is the fraction of file
//! `j` at node `i` and the cost couples the files through each node's shared
//! queue:
//!
//! ```text
//! C = Σ_i Σ_j ( C_i^j + k · T_i(Λ_i) ) · x_i^j,    Λ_i = Σ_j λ^j x_i^j
//! ```
//!
//! — "the 'cost' incurred due to time delay includes the effects of
//! simultaneous accesses to different files stored at the same location, a
//! real-world resource contention phenomenon which is typically not
//! considered in most FAP formulations". The feasible set is the product of
//! `M` simplices (`Σ_i x_i^j = 1` per file), so the decentralized iteration
//! applies the §5.2 step to each file's allocation with the coupled
//! gradients.

use std::time::Instant;

use fap_batch::{Matrix, Parallelism};
use serde::{Deserialize, Serialize};

use fap_econ::projection::{compute_step_into, BoundaryRule, StepWorkspace};
use fap_econ::EconError;
use fap_net::{AccessPattern, Graph};
use fap_obs::{NoopRecorder, Recorder, Value};

use crate::error::CoreError;

/// The §5.4 multi-file allocation problem over M/M/1 nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiFileProblem {
    /// Row `j` holds `C_i^j`, the workload-weighted cost of reaching node
    /// `i` for accesses to file `j` (an `M × N` flat matrix).
    access_costs: Matrix,
    /// Per-file network-wide access rates `λ^j`.
    rates: Vec<f64>,
    /// Per-node service rates `μ_i`.
    mus: Vec<f64>,
    k: f64,
}

/// Reusable buffers for [`MultiFileProblem::solve_with_scratch`].
///
/// Holds the iterate, step matrix, per-node delay terms and per-worker step
/// workspaces; once warmed to the problem's `M × N` shape, every solver
/// iteration runs without heap allocation.
#[derive(Debug, Clone, Default)]
pub struct MultiFileScratch {
    x: Matrix,
    steps: Matrix,
    delay: Vec<f64>,
    coup: Vec<f64>,
    node_cost: Vec<f64>,
    file_spread: Vec<f64>,
    file_kkt: Vec<bool>,
    weights: Vec<f64>,
    cost_series: Vec<f64>,
    workers: Vec<FileWorker>,
    seed: Matrix,
    has_seed: bool,
}

/// Per-thread buffers for the file-pass stage: the gradient of one file and
/// a step workspace.
#[derive(Debug, Clone, Default)]
struct FileWorker {
    g: Vec<f64>,
    ws: StepWorkspace,
}

impl MultiFileScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MultiFileScratch::default()
    }

    /// Arms a warm start: the next solve seeds its iterate from
    /// `allocations` (`allocations[j][i]` = fraction of file `j` at node
    /// `i`) instead of the solve's `initial` argument.
    ///
    /// The seed is consumed by exactly one solve and each file's row is
    /// re-projected onto its simplex (`Σ_i x_i^j = 1, x_i^j ≥ 0`) through
    /// [`fap_econ::projection::project_onto_simplex`] before use, so the
    /// per-file feasibility invariant holds from the first iterate. A seed
    /// whose `M × N` shape does not match the next problem is ignored and
    /// the solve falls back to `initial`, which is validated either way.
    ///
    /// Allocation-free once the scratch capacity covers the shape.
    ///
    /// # Panics
    ///
    /// Panics if the rows of `allocations` have unequal lengths.
    pub fn start_from(&mut self, allocations: &[Vec<f64>]) {
        let n = allocations.first().map_or(0, Vec::len);
        assert!(
            allocations.iter().all(|row| row.len() == n),
            "warm-start seed rows must have equal lengths"
        );
        self.seed.reset(allocations.len(), n);
        for (j, row) in allocations.iter().enumerate() {
            self.seed.row_mut(j).copy_from_slice(row);
        }
        self.has_seed = true;
    }

    /// Whether a warm-start seed is armed for the next solve.
    pub fn has_warm_start(&self) -> bool {
        self.has_seed
    }

    /// Disarms a pending warm-start seed; the next solve starts cold.
    pub fn clear_warm_start(&mut self) {
        self.has_seed = false;
    }

    /// Resizes every buffer for an `M × N` problem solved with
    /// `worker_count` file-pass workers. Allocation-free once capacities
    /// cover the shape.
    fn ensure(&mut self, m: usize, n: usize, worker_count: usize, max_iterations: usize) {
        self.x.reset(m, n);
        self.steps.reset(m, n);
        self.delay.clear();
        self.delay.resize(n, 0.0);
        self.coup.clear();
        self.coup.resize(n, 0.0);
        self.node_cost.clear();
        self.node_cost.resize(n, 0.0);
        self.file_spread.clear();
        self.file_spread.resize(m, 0.0);
        self.file_kkt.clear();
        self.file_kkt.resize(m, true);
        self.weights.clear();
        self.weights.resize(n, 1.0);
        self.cost_series.clear();
        // One entry per iteration plus the final evaluation.
        self.cost_series.reserve(max_iterations + 2);
        self.workers.resize_with(worker_count, FileWorker::default);
    }
}

/// The result of the multi-file decentralized iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiFileSolution {
    /// `allocations[j][i]` = final fraction of file `j` at node `i`.
    pub allocations: Vec<Vec<f64>>,
    /// Number of reallocation steps applied.
    pub iterations: usize,
    /// Whether every file's marginal spread fell below ε.
    pub converged: bool,
    /// Final total cost.
    pub final_cost: f64,
    /// Total cost after each iteration (a convergence profile).
    pub cost_series: Vec<f64>,
}

impl MultiFileProblem {
    /// Builds the model on `graph` with one access pattern per file and a
    /// common service rate `mu`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Net`] for a disconnected graph,
    /// [`CoreError::InvalidParameter`] for empty/mismatched inputs or bad
    /// `mu`/`k`, and [`CoreError::InsufficientCapacity`] when
    /// `Σ_i μ_i ≤ Σ_j λ^j`.
    pub fn mm1(
        graph: &Graph,
        patterns: &[AccessPattern],
        mu: f64,
        k: f64,
    ) -> Result<Self, CoreError> {
        let n = graph.node_count();
        Self::mm1_heterogeneous(graph, patterns, &vec![mu; n], k)
    }

    /// Builds the model with per-node service rates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiFileProblem::mm1`].
    pub fn mm1_heterogeneous(
        graph: &Graph,
        patterns: &[AccessPattern],
        mus: &[f64],
        k: f64,
    ) -> Result<Self, CoreError> {
        let costs = graph.shortest_path_matrix()?;
        Self::mm1_heterogeneous_with_costs(&costs, patterns, mus, k)
    }

    /// [`MultiFileProblem::mm1_heterogeneous`] from a pre-computed cost
    /// matrix (e.g. one served out of a topology-keyed cache), skipping the
    /// all-pairs shortest-path run. Bit-identical to the graph-based
    /// constructor for the matrix that graph produces.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiFileProblem::mm1_heterogeneous`], minus the
    /// connectivity check (a valid cost matrix is always complete).
    pub fn mm1_heterogeneous_with_costs(
        costs: &fap_net::CostMatrix,
        patterns: &[AccessPattern],
        mus: &[f64],
        k: f64,
    ) -> Result<Self, CoreError> {
        Self::mm1_heterogeneous_with_provider(costs, patterns, mus, k)
    }

    /// [`MultiFileProblem::mm1_heterogeneous_with_costs`] over any
    /// [`fap_net::CostProvider`] — bit-identical for the dense matrix,
    /// estimated access costs for sparse providers like the landmark
    /// oracle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiFileProblem::mm1_heterogeneous`].
    pub fn mm1_heterogeneous_with_provider(
        costs: &(impl fap_net::CostProvider + ?Sized),
        patterns: &[AccessPattern],
        mus: &[f64],
        k: f64,
    ) -> Result<Self, CoreError> {
        if patterns.is_empty() {
            return Err(CoreError::InvalidParameter("no files".into()));
        }
        let n = costs.node_count();
        if mus.len() != n {
            return Err(CoreError::InvalidParameter(format!(
                "{} service rates for {n} nodes",
                mus.len()
            )));
        }
        if mus.iter().any(|m| !m.is_finite() || *m <= 0.0) {
            return Err(CoreError::InvalidParameter("service rates must be positive".into()));
        }
        if !k.is_finite() || k < 0.0 {
            return Err(CoreError::InvalidParameter(format!("delay weight k = {k}")));
        }
        let mut access_costs = Matrix::with_cols(n);
        let mut rates = Vec::with_capacity(patterns.len());
        for pattern in patterns {
            if pattern.node_count() != n {
                return Err(CoreError::InvalidParameter(format!(
                    "pattern covers {} nodes, graph has {n}",
                    pattern.node_count()
                )));
            }
            access_costs.push_row(&costs.systemwide_access_costs(pattern));
            rates.push(pattern.total_rate());
        }
        let offered: f64 = rates.iter().sum();
        let capacity: f64 = mus.iter().sum();
        if capacity <= offered {
            return Err(CoreError::InsufficientCapacity {
                total_capacity: capacity,
                offered_load: offered,
            });
        }
        Ok(MultiFileProblem { access_costs, rates, mus: mus.to_vec(), k })
    }

    /// Number of files `M`.
    pub fn file_count(&self) -> usize {
        self.rates.len()
    }

    /// Number of nodes `N`.
    pub fn node_count(&self) -> usize {
        self.mus.len()
    }

    /// Per-file access rates `λ^j`.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The `M × N` matrix of per-file system-wide access costs `C_i^j`
    /// (row `j` = file `j`).
    pub fn access_costs(&self) -> &Matrix {
        &self.access_costs
    }

    /// The aggregate arrival rate `Λ_i` at each node under allocation `x`
    /// (`x[j][i]` = fraction of file `j` at node `i`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on shape mismatch.
    pub fn node_loads(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, CoreError> {
        self.check_shape(x)?;
        let n = self.node_count();
        let mut loads = vec![0.0; n];
        for (j, xj) in x.iter().enumerate() {
            for (i, &v) in xj.iter().enumerate() {
                loads[i] += self.rates[j] * v;
            }
        }
        Ok(loads)
    }

    /// Total cost of allocation `x`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on shape mismatch and
    /// [`CoreError::Econ`] when some node is loaded at or beyond capacity.
    pub fn cost(&self, x: &[Vec<f64>]) -> Result<f64, CoreError> {
        let loads = self.node_loads(x)?;
        let n = self.node_count();
        let mut total = 0.0;
        for i in 0..n {
            if loads[i] >= self.mus[i] {
                return Err(CoreError::Econ(EconError::Model(format!(
                    "node {i} loaded at {} ≥ capacity {}",
                    loads[i], self.mus[i]
                ))));
            }
            let t = 1.0 / (self.mus[i] - loads[i]);
            for (j, xj) in x.iter().enumerate() {
                total += (self.access_costs.get(j, i) + self.k * t) * xj[i];
            }
        }
        Ok(total)
    }

    /// The marginal cost `∂C/∂x_i^j` for every file and node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiFileProblem::cost`].
    pub fn marginal_costs(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError> {
        let loads = self.node_loads(x)?;
        let n = self.node_count();
        // Node totals S_i = Σ_j x_i^j weighted by λ^j are the loads; the
        // delay-coupling term needs Σ_m x_i^m λ^m = loads as well.
        let mut out = vec![vec![0.0; n]; self.file_count()];
        for i in 0..n {
            if loads[i] >= self.mus[i] {
                return Err(CoreError::Econ(EconError::Model(format!(
                    "node {i} loaded at {} ≥ capacity {}",
                    loads[i], self.mus[i]
                ))));
            }
            let d = self.mus[i] - loads[i];
            let t = 1.0 / d;
            let dt = 1.0 / (d * d);
            // k·T′(Λ_i)·Σ_m x_i^m — the queue-coupling term.
            let coupling: f64 = x.iter().map(|xj| xj[i]).sum::<f64>() * self.k * dt;
            for (j, row) in out.iter_mut().enumerate() {
                row[i] = self.access_costs.get(j, i) + self.k * t + self.rates[j] * coupling;
            }
        }
        Ok(out)
    }

    /// Runs the decentralized iteration: each iteration applies the §5.2
    /// step (with the clamp-to-zero boundary rule) to every file's
    /// allocation using the coupled gradients, until every file's marginal
    /// spread is below `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for bad `alpha`/`epsilon` or
    /// an infeasible start, and [`CoreError::Econ`] if an iterate becomes
    /// unstable.
    pub fn solve(
        &self,
        initial: &[Vec<f64>],
        alpha: f64,
        epsilon: f64,
        max_iterations: usize,
    ) -> Result<MultiFileSolution, CoreError> {
        let mut scratch = MultiFileScratch::new();
        self.solve_with_scratch(
            initial,
            alpha,
            epsilon,
            max_iterations,
            Parallelism::Sequential,
            &mut scratch,
        )
    }

    /// Like [`MultiFileProblem::solve`], fanning the per-node delay pass and
    /// the per-file gradient+step pass out over scoped threads. Bit-identical
    /// to the sequential solve for every [`Parallelism`] setting: workers own
    /// disjoint contiguous chunks, every floating-point reduction happens
    /// sequentially in index order after the workers join, and an
    /// over-capacity error is always reported for the lowest-indexed node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiFileProblem::solve`].
    pub fn solve_parallel(
        &self,
        initial: &[Vec<f64>],
        alpha: f64,
        epsilon: f64,
        max_iterations: usize,
        parallelism: Parallelism,
    ) -> Result<MultiFileSolution, CoreError> {
        let mut scratch = MultiFileScratch::new();
        self.solve_with_scratch(initial, alpha, epsilon, max_iterations, parallelism, &mut scratch)
    }

    /// The full-control solver: explicit [`Parallelism`] and a caller-owned
    /// [`MultiFileScratch`] reused across calls, so steady-state iterations
    /// (and, with a warm scratch, whole repeat solves) perform no heap
    /// allocations beyond the returned solution.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiFileProblem::solve`].
    pub fn solve_with_scratch(
        &self,
        initial: &[Vec<f64>],
        alpha: f64,
        epsilon: f64,
        max_iterations: usize,
        parallelism: Parallelism,
        scratch: &mut MultiFileScratch,
    ) -> Result<MultiFileSolution, CoreError> {
        self.solve_observed(
            initial,
            alpha,
            epsilon,
            max_iterations,
            parallelism,
            scratch,
            &mut NoopRecorder,
        )
    }

    /// Like [`MultiFileProblem::solve_with_scratch`], recording telemetry
    /// into `recorder`: the `core.node_threads` / `core.file_threads` fan-out
    /// gauges, per-chunk wall timings in the `core.node_chunk_ns` /
    /// `core.file_chunk_ns` histograms, the `core.iterations` counter, one
    /// `core.iter` event per iteration (cost and marginal spread) and a final
    /// `core.run_end` event. Virtual time is set to the iteration count.
    ///
    /// Wall-clock timings are only measured when `recorder.is_enabled()`, so
    /// with a [`NoopRecorder`] this is exactly the unobserved solve: same
    /// bits, same allocation behaviour. Recording does not perturb the
    /// computation — the solution is bit-identical with any recorder.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiFileProblem::solve`].
    #[allow(clippy::too_many_arguments)]
    pub fn solve_observed(
        &self,
        initial: &[Vec<f64>],
        alpha: f64,
        epsilon: f64,
        max_iterations: usize,
        parallelism: Parallelism,
        scratch: &mut MultiFileScratch,
        recorder: &mut dyn Recorder,
    ) -> Result<MultiFileSolution, CoreError> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(CoreError::InvalidParameter(format!("alpha {alpha}")));
        }
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(CoreError::InvalidParameter(format!("epsilon {epsilon}")));
        }
        self.check_shape(initial)?;
        for (j, xj) in initial.iter().enumerate() {
            let sum: f64 = xj.iter().sum();
            if (sum - 1.0).abs() > 1e-9 || xj.iter().any(|v| *v < 0.0) {
                return Err(CoreError::InvalidParameter(format!(
                    "initial allocation of file {j} is not on the simplex"
                )));
            }
        }

        let m = self.file_count();
        let n = self.node_count();
        let node_threads = parallelism.threads_for(n);
        let file_threads = parallelism.threads_for(m);
        scratch.ensure(m, n, file_threads, max_iterations);
        let MultiFileScratch {
            x,
            steps,
            delay,
            coup,
            node_cost,
            file_spread,
            file_kkt,
            weights,
            cost_series,
            workers,
            seed,
            has_seed,
        } = scratch;
        for (j, xj) in initial.iter().enumerate() {
            x.row_mut(j).copy_from_slice(xj);
        }
        if *has_seed {
            // One-shot seed: consumed (or discarded on shape mismatch) by
            // this solve either way.
            *has_seed = false;
            if seed.rows() == m && seed.cols() == n {
                x.as_mut_slice().copy_from_slice(seed.as_slice());
                for j in 0..m {
                    fap_econ::projection::project_onto_simplex(x.row_mut(j), 1.0);
                }
                recorder.incr("core.warm_starts", 1);
            }
        }
        let mut iterations = 0usize;
        let enabled = recorder.is_enabled();
        if enabled {
            recorder.gauge("core.node_threads", node_threads as f64);
            recorder.gauge("core.file_threads", file_threads as f64);
        }

        loop {
            recorder.set_time(iterations as u64);
            // Node pass: loads, delay terms and per-node cost partials.
            if node_threads <= 1 {
                let start = enabled.then(Instant::now);
                self.node_pass(x, 0, delay, coup, node_cost)?;
                if let Some(start) = start {
                    recorder.observe("core.node_chunk_ns", start.elapsed().as_nanos() as f64);
                }
            } else {
                let chunk = n.div_ceil(node_threads);
                let x_ref: &Matrix = x;
                let results: Vec<(Result<(), CoreError>, u64)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = delay
                        .chunks_mut(chunk)
                        .zip(coup.chunks_mut(chunk))
                        .zip(node_cost.chunks_mut(chunk))
                        .enumerate()
                        .map(|(index, ((d, c), nc))| {
                            scope.spawn(move || {
                                let start = enabled.then(Instant::now);
                                let result = self.node_pass(x_ref, index * chunk, d, c, nc);
                                (result, start.map_or(0, |s| s.elapsed().as_nanos() as u64))
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("node-pass worker panicked"))
                        .collect()
                });
                // Timings first (in chunk order), so an over-capacity error
                // still leaves a complete timing record for the pass.
                if enabled {
                    for (_, ns) in &results {
                        recorder.observe("core.node_chunk_ns", *ns as f64);
                    }
                }
                for (result, _) in results {
                    result?;
                }
            }
            // Deterministic reduction: sum node partials in index order.
            let cost: f64 = node_cost.iter().sum();
            cost_series.push(cost);

            // File pass: per-file gradient, §5.2 step, spread and
            // complementary slackness. A file has settled when its active
            // marginals agree within ε *and* every excluded node sits at the
            // boundary with no incentive to rejoin (the same condition the
            // single-file engine checks).
            if file_threads <= 1 {
                let start = enabled.then(Instant::now);
                self.file_pass(
                    x,
                    delay,
                    coup,
                    weights,
                    alpha,
                    epsilon,
                    0,
                    steps.as_mut_slice(),
                    file_spread,
                    file_kkt,
                    &mut workers[0],
                );
                if let Some(start) = start {
                    recorder.observe("core.file_chunk_ns", start.elapsed().as_nanos() as f64);
                }
            } else {
                let chunk_files = m.div_ceil(file_threads);
                let x_ref: &Matrix = x;
                let (delay_ref, coup_ref, weights_ref) = (&*delay, &*coup, &*weights);
                let timings: Vec<u64> = std::thread::scope(|scope| {
                    let handles: Vec<_> = steps
                        .as_mut_slice()
                        .chunks_mut(chunk_files * n)
                        .enumerate()
                        .zip(file_spread.chunks_mut(chunk_files))
                        .zip(file_kkt.chunks_mut(chunk_files))
                        .zip(workers.iter_mut())
                        .map(|((((index, step_chunk), spread_chunk), kkt_chunk), worker)| {
                            scope.spawn(move || {
                                let start = enabled.then(Instant::now);
                                self.file_pass(
                                    x_ref,
                                    delay_ref,
                                    coup_ref,
                                    weights_ref,
                                    alpha,
                                    epsilon,
                                    index * chunk_files,
                                    step_chunk,
                                    spread_chunk,
                                    kkt_chunk,
                                    worker,
                                );
                                start.map_or(0, |s| s.elapsed().as_nanos() as u64)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("file-pass worker panicked"))
                        .collect()
                });
                if enabled {
                    for ns in timings {
                        recorder.observe("core.file_chunk_ns", ns as f64);
                    }
                }
            }
            // Deterministic reductions in file-index order.
            let spread = file_spread.iter().fold(0.0f64, |a, &s| a.max(s));
            let kkt_ok = file_kkt.iter().all(|ok| *ok);
            if enabled {
                recorder.incr("core.iterations", 1);
                recorder.emit(
                    "core.iter",
                    &[
                        ("iteration", Value::U64(iterations as u64)),
                        ("cost", Value::F64(cost)),
                        ("spread", Value::F64(spread)),
                    ],
                );
            }

            let converged = spread < epsilon && kkt_ok;
            if converged || iterations >= max_iterations {
                if enabled {
                    recorder.emit(
                        "core.run_end",
                        &[
                            ("iterations", Value::U64(iterations as u64)),
                            ("converged", Value::Bool(converged)),
                            ("final_cost", Value::F64(cost)),
                        ],
                    );
                }
                return Ok(MultiFileSolution {
                    allocations: x.to_nested(),
                    iterations,
                    converged,
                    final_cost: cost,
                    cost_series: cost_series.clone(),
                });
            }
            for (xi, d) in x.as_mut_slice().iter_mut().zip(steps.as_slice()) {
                *xi += d;
            }
            iterations += 1;
        }
    }

    /// Computes, for nodes `first..first + delay.len()`, the delay term
    /// `k·T_i`, the queue-coupling factor `(Σ_m x_i^m)·k·T_i′` and the
    /// node's cost partial `Σ_j (C_i^j + k·T_i)·x_i^j`.
    ///
    /// Accumulation over files runs in file-index order, matching the
    /// sequential reference bit-for-bit regardless of chunking.
    fn node_pass(
        &self,
        x: &Matrix,
        first: usize,
        delay: &mut [f64],
        coup: &mut [f64],
        node_cost: &mut [f64],
    ) -> Result<(), CoreError> {
        let m = self.file_count();
        for offset in 0..delay.len() {
            let i = first + offset;
            let mut load = 0.0;
            let mut colsum = 0.0;
            for j in 0..m {
                let v = x.get(j, i);
                load += self.rates[j] * v;
                colsum += v;
            }
            if load >= self.mus[i] {
                return Err(CoreError::Econ(EconError::Model(format!(
                    "node {i} loaded at {load} ≥ capacity {}",
                    self.mus[i]
                ))));
            }
            let d = self.mus[i] - load;
            let t = 1.0 / d;
            let dt = 1.0 / (d * d);
            delay[offset] = self.k * t;
            coup[offset] = colsum * self.k * dt;
            let mut partial = 0.0;
            for j in 0..m {
                partial += (self.access_costs.get(j, i) + self.k * t) * x.get(j, i);
            }
            node_cost[offset] = partial;
        }
        Ok(())
    }

    /// Computes, for files `first..`, the coupled gradient, the §5.2
    /// clamp-to-zero step (into `steps`), the active marginal spread and the
    /// complementary-slackness flag. Infallible: capacity was checked by the
    /// node pass.
    #[allow(clippy::too_many_arguments)]
    fn file_pass(
        &self,
        x: &Matrix,
        delay: &[f64],
        coup: &[f64],
        weights: &[f64],
        alpha: f64,
        epsilon: f64,
        first: usize,
        steps: &mut [f64],
        file_spread: &mut [f64],
        file_kkt: &mut [bool],
        worker: &mut FileWorker,
    ) {
        let n = self.node_count();
        for (offset, step_row) in steps.chunks_mut(n).enumerate() {
            let j = first + offset;
            let rate = self.rates[j];
            let xj = x.row(j);
            worker.g.clear();
            worker.g.extend(
                (0..n).map(|i| -(self.access_costs.get(j, i) + delay[i] + rate * coup[i])),
            );
            compute_step_into(
                xj,
                &worker.g,
                weights,
                alpha,
                BoundaryRule::ClampToZero,
                &mut worker.ws,
            );
            step_row.copy_from_slice(worker.ws.deltas());

            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut sum = 0.0;
            let mut count = 0usize;
            for (gi, is_active) in worker.g.iter().zip(worker.ws.active()) {
                if *is_active {
                    lo = lo.min(*gi);
                    hi = hi.max(*gi);
                    sum += *gi;
                    count += 1;
                }
            }
            file_spread[offset] = if hi > lo { hi - lo } else { 0.0 };
            let mut kkt = true;
            if count > 0 {
                let avg = sum / count as f64;
                for ((&xi, &gi), &is_active) in
                    xj.iter().zip(&worker.g).zip(worker.ws.active())
                {
                    if !is_active && (xi > 1e-6 || gi > avg + epsilon) {
                        kkt = false;
                    }
                }
            }
            file_kkt[offset] = kkt;
        }
    }

    fn check_shape(&self, x: &[Vec<f64>]) -> Result<(), CoreError> {
        if x.len() != self.file_count() || x.iter().any(|xj| xj.len() != self.node_count()) {
            return Err(CoreError::InvalidParameter(format!(
                "allocation shape {:?} does not match {} files × {} nodes",
                x.iter().map(Vec::len).collect::<Vec<_>>(),
                self.file_count(),
                self.node_count()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::SingleFileProblem;
    use fap_econ::AllocationProblem;
    use fap_net::topology;

    fn ring4() -> Graph {
        topology::ring(4, 1.0).unwrap()
    }

    #[test]
    fn single_file_case_matches_single_file_problem() {
        let graph = ring4();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        let multi =
            MultiFileProblem::mm1(&graph, std::slice::from_ref(&pattern), 1.5, 1.0).unwrap();
        let single = SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).unwrap();
        let x = vec![0.4, 0.3, 0.2, 0.1];
        assert!(
            (multi.cost(std::slice::from_ref(&x)).unwrap() - single.cost_of(&x).unwrap()).abs() < 1e-12
        );
        let mg = multi.marginal_costs(std::slice::from_ref(&x)).unwrap();
        let mut sg = vec![0.0; 4];
        single.marginal_utilities(&x, &mut sg).unwrap();
        for i in 0..4 {
            assert!((mg[0][i] + sg[i]).abs() < 1e-12, "marginal mismatch at {i}");
        }
    }

    #[test]
    fn validates_construction() {
        let graph = ring4();
        let p = AccessPattern::uniform(4, 1.0).unwrap();
        assert!(MultiFileProblem::mm1(&graph, &[], 1.5, 1.0).is_err());
        assert!(MultiFileProblem::mm1(&graph, std::slice::from_ref(&p), 1.5, -1.0).is_err());
        let p3 = AccessPattern::uniform(3, 1.0).unwrap();
        assert!(MultiFileProblem::mm1(&graph, &[p3], 1.5, 1.0).is_err());
        // Two files of rate 1 each need Σμ > 2; μ = 0.4 · 4 = 1.6 fails.
        assert!(matches!(
            MultiFileProblem::mm1(&graph, &[p.clone(), p.clone()], 0.4, 1.0),
            Err(CoreError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn marginals_match_finite_differences() {
        let graph = ring4();
        let pa = AccessPattern::uniform(4, 0.8).unwrap();
        let pb = AccessPattern::hotspot(4, 0.5, fap_net::NodeId::new(2), 0.7).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[pa, pb], 2.0, 0.9).unwrap();
        let x = vec![vec![0.4, 0.3, 0.2, 0.1], vec![0.1, 0.2, 0.3, 0.4]];
        let g = m.marginal_costs(&x).unwrap();
        let h = 1e-7;
        for j in 0..2 {
            for i in 0..4 {
                let mut xp = x.clone();
                xp[j][i] += h;
                let mut xm = x.clone();
                xm[j][i] -= h;
                let fd = (m.cost(&xp).unwrap() - m.cost(&xm).unwrap()) / (2.0 * h);
                assert!((g[j][i] - fd).abs() < 1e-5, "file {j} node {i}: {} vs {fd}", g[j][i]);
            }
        }
    }

    #[test]
    fn symmetric_two_files_balance_node_loads() {
        // The optimum is non-unique in the individual x_i^j (only the node
        // loads matter on a symmetric network), so assert the invariants:
        // equal loads, and cost equal to the fully even split.
        let graph = ring4();
        let p = AccessPattern::uniform(4, 0.6).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[p.clone(), p], 1.5, 1.0).unwrap();
        let initial = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0, 1.0]];
        let s = m.solve(&initial, 0.1, 1e-6, 50_000).unwrap();
        assert!(s.converged);
        let loads = m.node_loads(&s.allocations).unwrap();
        for l in &loads {
            assert!((l - 0.3).abs() < 1e-3, "loads {loads:?}");
        }
        let even_cost = m.cost(&[vec![0.25; 4], vec![0.25; 4]]).unwrap();
        assert!((s.final_cost - even_cost).abs() < 1e-5);
    }

    #[test]
    fn queue_contention_pushes_files_apart() {
        // Two files, high delay weight, tiny homogeneous communication
        // costs: the optimum loads all nodes equally, so the files must
        // split complementarily rather than stack on the same nodes.
        let graph = topology::full_mesh(4, 0.01).unwrap();
        let p = AccessPattern::uniform(4, 0.7).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[p.clone(), p], 1.0, 5.0).unwrap();
        let initial = vec![vec![0.7, 0.3, 0.0, 0.0], vec![0.6, 0.0, 0.4, 0.0]];
        let s = m.solve(&initial, 0.02, 1e-6, 100_000).unwrap();
        assert!(s.converged);
        let loads = m.node_loads(&s.allocations).unwrap();
        let avg: f64 = loads.iter().sum::<f64>() / 4.0;
        for l in &loads {
            assert!((l - avg).abs() < 1e-3, "loads {loads:?}");
        }
    }

    #[test]
    fn cost_decreases_monotonically_with_small_alpha() {
        let graph = ring4();
        let pa = AccessPattern::uniform(4, 0.5).unwrap();
        let pb = AccessPattern::hotspot(4, 0.4, fap_net::NodeId::new(1), 0.6).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[pa, pb], 1.5, 1.0).unwrap();
        let initial = vec![vec![1.0, 0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0, 0.0]];
        let s = m.solve(&initial, 0.02, 1e-6, 100_000).unwrap();
        assert!(s.converged);
        for w in s.cost_series.windows(2) {
            assert!(w[1] <= w[0] + 1e-10, "cost rose: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn feasibility_per_file_is_preserved() {
        let graph = ring4();
        let p = AccessPattern::uniform(4, 0.5).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[p.clone(), p], 1.5, 1.0).unwrap();
        let initial = vec![vec![0.5, 0.5, 0.0, 0.0], vec![0.0, 0.0, 0.5, 0.5]];
        let s = m.solve(&initial, 0.1, 1e-5, 10_000).unwrap();
        for xj in &s.allocations {
            assert!((xj.iter().sum::<f64>() - 1.0).abs() < 1e-7);
            assert!(xj.iter().all(|v| *v >= -1e-9));
        }
    }

    #[test]
    fn parallel_solve_is_bit_identical_to_sequential() {
        let graph = ring4();
        let pa = AccessPattern::uniform(4, 0.5).unwrap();
        let pb = AccessPattern::hotspot(4, 0.4, fap_net::NodeId::new(1), 0.6).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[pa, pb], 1.5, 1.0).unwrap();
        let initial = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 0.5, 0.5, 0.0]];
        let seq = m.solve(&initial, 0.05, 1e-6, 2_000).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let par = m
                .solve_parallel(&initial, 0.05, 1e-6, 2_000, Parallelism::Fixed(threads))
                .unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let graph = ring4();
        let p = AccessPattern::uniform(4, 0.5).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[p.clone(), p], 1.5, 1.0).unwrap();
        let initial = vec![vec![0.5, 0.5, 0.0, 0.0], vec![0.0, 0.0, 0.5, 0.5]];
        let fresh = m.solve(&initial, 0.1, 1e-5, 10_000).unwrap();
        let mut scratch = MultiFileScratch::new();
        // Warm the scratch on a different start, then repeat the original.
        let other = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]];
        m.solve_with_scratch(&other, 0.1, 1e-5, 10_000, Parallelism::Sequential, &mut scratch)
            .unwrap();
        let reused = m
            .solve_with_scratch(&initial, 0.1, 1e-5, 10_000, Parallelism::Sequential, &mut scratch)
            .unwrap();
        assert_eq!(fresh, reused);
    }

    #[test]
    fn constructor_with_costs_is_bit_identical_to_graph_constructor() {
        let graph = ring4();
        let costs = graph.shortest_path_matrix().unwrap();
        let pa = AccessPattern::uniform(4, 0.5).unwrap();
        let pb = AccessPattern::hotspot(4, 0.4, fap_net::NodeId::new(1), 0.6).unwrap();
        let patterns = [pa, pb];
        let mus = [1.5; 4];
        let from_graph =
            MultiFileProblem::mm1_heterogeneous(&graph, &patterns, &mus, 1.0).unwrap();
        let from_costs =
            MultiFileProblem::mm1_heterogeneous_with_costs(&costs, &patterns, &mus, 1.0).unwrap();
        assert_eq!(from_graph, from_costs);
    }

    #[test]
    fn warm_start_reaches_the_same_fixed_point_almost_instantly() {
        let graph = ring4();
        let pa = AccessPattern::uniform(4, 0.5).unwrap();
        let pb = AccessPattern::hotspot(4, 0.4, fap_net::NodeId::new(1), 0.6).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[pa, pb], 1.5, 1.0).unwrap();
        let initial = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 0.5, 0.5, 0.0]];
        let mut scratch = MultiFileScratch::new();
        let cold = m
            .solve_with_scratch(&initial, 0.05, 1e-6, 50_000, Parallelism::Sequential, &mut scratch)
            .unwrap();
        assert!(cold.converged && cold.iterations > 5);
        scratch.start_from(&cold.allocations);
        let warm = m
            .solve_with_scratch(&initial, 0.05, 1e-6, 50_000, Parallelism::Sequential, &mut scratch)
            .unwrap();
        assert!(warm.converged);
        assert!(warm.iterations <= 1, "seeded at the optimum: {}", warm.iterations);
        assert!((warm.final_cost - cold.final_cost).abs() < 1e-9);
        assert!(!scratch.has_warm_start(), "seed must be consumed");
    }

    #[test]
    fn mismatched_warm_seed_falls_back_to_cold_start() {
        let graph = ring4();
        let p = AccessPattern::uniform(4, 0.5).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[p.clone(), p], 1.5, 1.0).unwrap();
        let initial = vec![vec![0.5, 0.5, 0.0, 0.0], vec![0.0, 0.0, 0.5, 0.5]];
        let mut scratch = MultiFileScratch::new();
        let cold = m
            .solve_with_scratch(&initial, 0.1, 1e-5, 10_000, Parallelism::Sequential, &mut scratch)
            .unwrap();
        // Wrong shape (3 nodes): ignored, bit-identical to the cold solve.
        scratch.start_from(&[vec![0.5, 0.3, 0.2], vec![0.2, 0.3, 0.5]]);
        let fallback = m
            .solve_with_scratch(&initial, 0.1, 1e-5, 10_000, Parallelism::Sequential, &mut scratch)
            .unwrap();
        assert_eq!(cold, fallback);
        assert!(!scratch.has_warm_start());
    }

    #[test]
    fn overload_error_is_deterministic_across_parallelism() {
        // Tiny capacity: every node over capacity at the skewed start; the
        // reported node must be the lowest-indexed one regardless of threads.
        let graph = ring4();
        let p = AccessPattern::uniform(4, 0.5).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[p.clone(), p], 0.26, 1.0).unwrap();
        let initial = vec![vec![1.0, 0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0, 0.0]];
        let seq = m.solve(&initial, 0.05, 1e-6, 100).unwrap_err();
        for threads in [2usize, 3, 8] {
            let par = m
                .solve_parallel(&initial, 0.05, 1e-6, 100, Parallelism::Fixed(threads))
                .unwrap_err();
            assert_eq!(format!("{seq:?}"), format!("{par:?}"), "threads = {threads}");
        }
    }

    #[test]
    fn observed_solve_is_bit_identical_and_records_every_iteration() {
        let graph = ring4();
        let pa = AccessPattern::uniform(4, 0.5).unwrap();
        let pb = AccessPattern::hotspot(4, 0.4, fap_net::NodeId::new(1), 0.6).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[pa, pb], 1.5, 1.0).unwrap();
        let initial = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 0.5, 0.5, 0.0]];
        let plain = m.solve(&initial, 0.05, 1e-6, 2_000).unwrap();

        let mut tele = fap_obs::Telemetry::manual();
        let mut scratch = MultiFileScratch::new();
        let observed = m
            .solve_observed(
                &initial,
                0.05,
                1e-6,
                2_000,
                Parallelism::Sequential,
                &mut scratch,
                &mut tele,
            )
            .unwrap();
        assert_eq!(plain, observed, "recording must not perturb the solve");

        // One loop pass per applied step plus the final converged pass.
        let passes = (observed.iterations + 1) as u64;
        assert_eq!(tele.registry().counter("core.iterations"), passes);
        assert_eq!(tele.events().len(), passes as usize + 1);
        let last = tele.events().last().unwrap();
        assert_eq!(last.name(), "core.run_end");
        assert_eq!(tele.registry().gauge_value("core.node_threads"), Some(1.0));
        let node_ns = tele.registry().histogram("core.node_chunk_ns").unwrap();
        assert_eq!(node_ns.count(), passes);
        let file_ns = tele.registry().histogram("core.file_chunk_ns").unwrap();
        assert_eq!(file_ns.count(), passes);
    }

    #[test]
    fn observed_parallel_solve_matches_sequential_and_times_chunks() {
        let graph = ring4();
        let pa = AccessPattern::uniform(4, 0.5).unwrap();
        let pb = AccessPattern::hotspot(4, 0.4, fap_net::NodeId::new(1), 0.6).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[pa, pb], 1.5, 1.0).unwrap();
        let initial = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 0.5, 0.5, 0.0]];
        let seq = m.solve(&initial, 0.05, 1e-6, 2_000).unwrap();

        let mut tele = fap_obs::Telemetry::manual();
        let mut scratch = MultiFileScratch::new();
        let observed = m
            .solve_observed(
                &initial,
                0.05,
                1e-6,
                2_000,
                Parallelism::Fixed(3),
                &mut scratch,
                &mut tele,
            )
            .unwrap();
        assert_eq!(seq, observed, "observed parallel solve must stay bit-identical");
        assert_eq!(tele.registry().gauge_value("core.node_threads"), Some(3.0));
        assert_eq!(tele.registry().gauge_value("core.file_threads"), Some(2.0));
        assert!(tele.registry().histogram("core.node_chunk_ns").unwrap().count() > 0);
        assert!(tele.registry().histogram("core.file_chunk_ns").unwrap().count() > 0);
    }

    #[test]
    fn solve_validates_inputs() {
        let graph = ring4();
        let p = AccessPattern::uniform(4, 0.5).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[p], 1.5, 1.0).unwrap();
        let good = vec![vec![0.25; 4]];
        assert!(m.solve(&good, 0.0, 1e-6, 100).is_err());
        assert!(m.solve(&good, 0.1, 0.0, 100).is_err());
        assert!(m.solve(&[vec![0.5; 4]], 0.1, 1e-6, 100).is_err()); // sums to 2
        assert!(m.solve(&[vec![0.25; 3]], 0.1, 1e-6, 100).is_err()); // wrong shape
    }
}
