//! The multi-file extension (paper §5.4).
//!
//! With `M` distinct files (one copy each), `x_i^j` is the fraction of file
//! `j` at node `i` and the cost couples the files through each node's shared
//! queue:
//!
//! ```text
//! C = Σ_i Σ_j ( C_i^j + k · T_i(Λ_i) ) · x_i^j,    Λ_i = Σ_j λ^j x_i^j
//! ```
//!
//! — "the 'cost' incurred due to time delay includes the effects of
//! simultaneous accesses to different files stored at the same location, a
//! real-world resource contention phenomenon which is typically not
//! considered in most FAP formulations". The feasible set is the product of
//! `M` simplices (`Σ_i x_i^j = 1` per file), so the decentralized iteration
//! applies the §5.2 step to each file's allocation with the coupled
//! gradients.

use serde::{Deserialize, Serialize};

use fap_econ::projection::{compute_step, BoundaryRule};
use fap_econ::EconError;
use fap_net::{AccessPattern, Graph};

use crate::error::CoreError;

/// The §5.4 multi-file allocation problem over M/M/1 nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiFileProblem {
    /// `access_costs[j][i]` = `C_i^j`, the workload-weighted cost of
    /// reaching node `i` for accesses to file `j`.
    access_costs: Vec<Vec<f64>>,
    /// Per-file network-wide access rates `λ^j`.
    rates: Vec<f64>,
    /// Per-node service rates `μ_i`.
    mus: Vec<f64>,
    k: f64,
}

/// The result of the multi-file decentralized iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiFileSolution {
    /// `allocations[j][i]` = final fraction of file `j` at node `i`.
    pub allocations: Vec<Vec<f64>>,
    /// Number of reallocation steps applied.
    pub iterations: usize,
    /// Whether every file's marginal spread fell below ε.
    pub converged: bool,
    /// Final total cost.
    pub final_cost: f64,
    /// Total cost after each iteration (a convergence profile).
    pub cost_series: Vec<f64>,
}

impl MultiFileProblem {
    /// Builds the model on `graph` with one access pattern per file and a
    /// common service rate `mu`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Net`] for a disconnected graph,
    /// [`CoreError::InvalidParameter`] for empty/mismatched inputs or bad
    /// `mu`/`k`, and [`CoreError::InsufficientCapacity`] when
    /// `Σ_i μ_i ≤ Σ_j λ^j`.
    pub fn mm1(
        graph: &Graph,
        patterns: &[AccessPattern],
        mu: f64,
        k: f64,
    ) -> Result<Self, CoreError> {
        let n = graph.node_count();
        Self::mm1_heterogeneous(graph, patterns, &vec![mu; n], k)
    }

    /// Builds the model with per-node service rates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiFileProblem::mm1`].
    pub fn mm1_heterogeneous(
        graph: &Graph,
        patterns: &[AccessPattern],
        mus: &[f64],
        k: f64,
    ) -> Result<Self, CoreError> {
        if patterns.is_empty() {
            return Err(CoreError::InvalidParameter("no files".into()));
        }
        let n = graph.node_count();
        if mus.len() != n {
            return Err(CoreError::InvalidParameter(format!(
                "{} service rates for {n} nodes",
                mus.len()
            )));
        }
        if mus.iter().any(|m| !m.is_finite() || *m <= 0.0) {
            return Err(CoreError::InvalidParameter("service rates must be positive".into()));
        }
        if !k.is_finite() || k < 0.0 {
            return Err(CoreError::InvalidParameter(format!("delay weight k = {k}")));
        }
        let costs = graph.shortest_path_matrix()?;
        let mut access_costs = Vec::with_capacity(patterns.len());
        let mut rates = Vec::with_capacity(patterns.len());
        for pattern in patterns {
            if pattern.node_count() != n {
                return Err(CoreError::InvalidParameter(format!(
                    "pattern covers {} nodes, graph has {n}",
                    pattern.node_count()
                )));
            }
            access_costs.push(costs.systemwide_access_costs(pattern));
            rates.push(pattern.total_rate());
        }
        let offered: f64 = rates.iter().sum();
        let capacity: f64 = mus.iter().sum();
        if capacity <= offered {
            return Err(CoreError::InsufficientCapacity {
                total_capacity: capacity,
                offered_load: offered,
            });
        }
        Ok(MultiFileProblem { access_costs, rates, mus: mus.to_vec(), k })
    }

    /// Number of files `M`.
    pub fn file_count(&self) -> usize {
        self.rates.len()
    }

    /// Number of nodes `N`.
    pub fn node_count(&self) -> usize {
        self.mus.len()
    }

    /// Per-file access rates `λ^j`.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The aggregate arrival rate `Λ_i` at each node under allocation `x`
    /// (`x[j][i]` = fraction of file `j` at node `i`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on shape mismatch.
    pub fn node_loads(&self, x: &[Vec<f64>]) -> Result<Vec<f64>, CoreError> {
        self.check_shape(x)?;
        let n = self.node_count();
        let mut loads = vec![0.0; n];
        for (j, xj) in x.iter().enumerate() {
            for (i, &v) in xj.iter().enumerate() {
                loads[i] += self.rates[j] * v;
            }
        }
        Ok(loads)
    }

    /// Total cost of allocation `x`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on shape mismatch and
    /// [`CoreError::Econ`] when some node is loaded at or beyond capacity.
    pub fn cost(&self, x: &[Vec<f64>]) -> Result<f64, CoreError> {
        let loads = self.node_loads(x)?;
        let n = self.node_count();
        let mut total = 0.0;
        for i in 0..n {
            if loads[i] >= self.mus[i] {
                return Err(CoreError::Econ(EconError::Model(format!(
                    "node {i} loaded at {} ≥ capacity {}",
                    loads[i], self.mus[i]
                ))));
            }
            let t = 1.0 / (self.mus[i] - loads[i]);
            for (j, xj) in x.iter().enumerate() {
                total += (self.access_costs[j][i] + self.k * t) * xj[i];
            }
        }
        Ok(total)
    }

    /// The marginal cost `∂C/∂x_i^j` for every file and node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiFileProblem::cost`].
    pub fn marginal_costs(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError> {
        let loads = self.node_loads(x)?;
        let n = self.node_count();
        // Node totals S_i = Σ_j x_i^j weighted by λ^j are the loads; the
        // delay-coupling term needs Σ_m x_i^m λ^m = loads as well.
        let mut out = vec![vec![0.0; n]; self.file_count()];
        for i in 0..n {
            if loads[i] >= self.mus[i] {
                return Err(CoreError::Econ(EconError::Model(format!(
                    "node {i} loaded at {} ≥ capacity {}",
                    loads[i], self.mus[i]
                ))));
            }
            let d = self.mus[i] - loads[i];
            let t = 1.0 / d;
            let dt = 1.0 / (d * d);
            // k·T′(Λ_i)·Σ_m x_i^m — the queue-coupling term.
            let coupling: f64 = x.iter().map(|xj| xj[i]).sum::<f64>() * self.k * dt;
            for (j, row) in out.iter_mut().enumerate() {
                row[i] = self.access_costs[j][i] + self.k * t + self.rates[j] * coupling;
            }
        }
        Ok(out)
    }

    /// Runs the decentralized iteration: each iteration applies the §5.2
    /// step (with the clamp-to-zero boundary rule) to every file's
    /// allocation using the coupled gradients, until every file's marginal
    /// spread is below `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for bad `alpha`/`epsilon` or
    /// an infeasible start, and [`CoreError::Econ`] if an iterate becomes
    /// unstable.
    pub fn solve(
        &self,
        initial: &[Vec<f64>],
        alpha: f64,
        epsilon: f64,
        max_iterations: usize,
    ) -> Result<MultiFileSolution, CoreError> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(CoreError::InvalidParameter(format!("alpha {alpha}")));
        }
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(CoreError::InvalidParameter(format!("epsilon {epsilon}")));
        }
        self.check_shape(initial)?;
        for (j, xj) in initial.iter().enumerate() {
            let sum: f64 = xj.iter().sum();
            if (sum - 1.0).abs() > 1e-9 || xj.iter().any(|v| *v < 0.0) {
                return Err(CoreError::InvalidParameter(format!(
                    "initial allocation of file {j} is not on the simplex"
                )));
            }
        }

        let n = self.node_count();
        let weights = vec![1.0; n];
        let mut x: Vec<Vec<f64>> = initial.to_vec();
        let mut cost_series = Vec::new();
        let mut iterations = 0usize;

        loop {
            let cost = self.cost(&x)?;
            cost_series.push(cost);
            let marginals = self.marginal_costs(&x)?;

            // Per-file utility marginals and steps. A file has settled when
            // its active marginals agree within ε *and* every excluded node
            // sits at the boundary with no incentive to rejoin (the same
            // complementary-slackness condition the single-file engine
            // checks).
            let mut spread: f64 = 0.0;
            let mut kkt_ok = true;
            let mut steps = Vec::with_capacity(self.file_count());
            for (j, xj) in x.iter().enumerate() {
                let g: Vec<f64> = marginals[j].iter().map(|m| -m).collect();
                let outcome = compute_step(xj, &g, &weights, alpha, BoundaryRule::ClampToZero);
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                let mut sum = 0.0;
                let mut count = 0usize;
                for (gi, is_active) in g.iter().zip(&outcome.active) {
                    if *is_active {
                        lo = lo.min(*gi);
                        hi = hi.max(*gi);
                        sum += *gi;
                        count += 1;
                    }
                }
                if hi > lo {
                    spread = spread.max(hi - lo);
                }
                if count > 0 {
                    let avg = sum / count as f64;
                    for i in 0..n {
                        if !outcome.active[i] && (xj[i] > 1e-6 || g[i] > avg + epsilon) {
                            kkt_ok = false;
                        }
                    }
                }
                steps.push(outcome.deltas);
            }

            if spread < epsilon && kkt_ok {
                return Ok(MultiFileSolution {
                    allocations: x,
                    iterations,
                    converged: true,
                    final_cost: cost,
                    cost_series,
                });
            }
            if iterations >= max_iterations {
                return Ok(MultiFileSolution {
                    allocations: x,
                    iterations,
                    converged: false,
                    final_cost: cost,
                    cost_series,
                });
            }
            for (xj, dj) in x.iter_mut().zip(&steps) {
                for (xi, d) in xj.iter_mut().zip(dj) {
                    *xi += d;
                }
            }
            iterations += 1;
        }
    }

    fn check_shape(&self, x: &[Vec<f64>]) -> Result<(), CoreError> {
        if x.len() != self.file_count() || x.iter().any(|xj| xj.len() != self.node_count()) {
            return Err(CoreError::InvalidParameter(format!(
                "allocation shape {:?} does not match {} files × {} nodes",
                x.iter().map(Vec::len).collect::<Vec<_>>(),
                self.file_count(),
                self.node_count()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::SingleFileProblem;
    use fap_econ::AllocationProblem;
    use fap_net::topology;

    fn ring4() -> Graph {
        topology::ring(4, 1.0).unwrap()
    }

    #[test]
    fn single_file_case_matches_single_file_problem() {
        let graph = ring4();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        let multi =
            MultiFileProblem::mm1(&graph, std::slice::from_ref(&pattern), 1.5, 1.0).unwrap();
        let single = SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).unwrap();
        let x = vec![0.4, 0.3, 0.2, 0.1];
        assert!(
            (multi.cost(std::slice::from_ref(&x)).unwrap() - single.cost_of(&x).unwrap()).abs() < 1e-12
        );
        let mg = multi.marginal_costs(std::slice::from_ref(&x)).unwrap();
        let mut sg = vec![0.0; 4];
        single.marginal_utilities(&x, &mut sg).unwrap();
        for i in 0..4 {
            assert!((mg[0][i] + sg[i]).abs() < 1e-12, "marginal mismatch at {i}");
        }
    }

    #[test]
    fn validates_construction() {
        let graph = ring4();
        let p = AccessPattern::uniform(4, 1.0).unwrap();
        assert!(MultiFileProblem::mm1(&graph, &[], 1.5, 1.0).is_err());
        assert!(MultiFileProblem::mm1(&graph, std::slice::from_ref(&p), 1.5, -1.0).is_err());
        let p3 = AccessPattern::uniform(3, 1.0).unwrap();
        assert!(MultiFileProblem::mm1(&graph, &[p3], 1.5, 1.0).is_err());
        // Two files of rate 1 each need Σμ > 2; μ = 0.4 · 4 = 1.6 fails.
        assert!(matches!(
            MultiFileProblem::mm1(&graph, &[p.clone(), p.clone()], 0.4, 1.0),
            Err(CoreError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn marginals_match_finite_differences() {
        let graph = ring4();
        let pa = AccessPattern::uniform(4, 0.8).unwrap();
        let pb = AccessPattern::hotspot(4, 0.5, fap_net::NodeId::new(2), 0.7).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[pa, pb], 2.0, 0.9).unwrap();
        let x = vec![vec![0.4, 0.3, 0.2, 0.1], vec![0.1, 0.2, 0.3, 0.4]];
        let g = m.marginal_costs(&x).unwrap();
        let h = 1e-7;
        for j in 0..2 {
            for i in 0..4 {
                let mut xp = x.clone();
                xp[j][i] += h;
                let mut xm = x.clone();
                xm[j][i] -= h;
                let fd = (m.cost(&xp).unwrap() - m.cost(&xm).unwrap()) / (2.0 * h);
                assert!((g[j][i] - fd).abs() < 1e-5, "file {j} node {i}: {} vs {fd}", g[j][i]);
            }
        }
    }

    #[test]
    fn symmetric_two_files_balance_node_loads() {
        // The optimum is non-unique in the individual x_i^j (only the node
        // loads matter on a symmetric network), so assert the invariants:
        // equal loads, and cost equal to the fully even split.
        let graph = ring4();
        let p = AccessPattern::uniform(4, 0.6).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[p.clone(), p], 1.5, 1.0).unwrap();
        let initial = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0, 1.0]];
        let s = m.solve(&initial, 0.1, 1e-6, 50_000).unwrap();
        assert!(s.converged);
        let loads = m.node_loads(&s.allocations).unwrap();
        for l in &loads {
            assert!((l - 0.3).abs() < 1e-3, "loads {loads:?}");
        }
        let even_cost = m.cost(&[vec![0.25; 4], vec![0.25; 4]]).unwrap();
        assert!((s.final_cost - even_cost).abs() < 1e-5);
    }

    #[test]
    fn queue_contention_pushes_files_apart() {
        // Two files, high delay weight, tiny homogeneous communication
        // costs: the optimum loads all nodes equally, so the files must
        // split complementarily rather than stack on the same nodes.
        let graph = topology::full_mesh(4, 0.01).unwrap();
        let p = AccessPattern::uniform(4, 0.7).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[p.clone(), p], 1.0, 5.0).unwrap();
        let initial = vec![vec![0.7, 0.3, 0.0, 0.0], vec![0.6, 0.0, 0.4, 0.0]];
        let s = m.solve(&initial, 0.02, 1e-6, 100_000).unwrap();
        assert!(s.converged);
        let loads = m.node_loads(&s.allocations).unwrap();
        let avg: f64 = loads.iter().sum::<f64>() / 4.0;
        for l in &loads {
            assert!((l - avg).abs() < 1e-3, "loads {loads:?}");
        }
    }

    #[test]
    fn cost_decreases_monotonically_with_small_alpha() {
        let graph = ring4();
        let pa = AccessPattern::uniform(4, 0.5).unwrap();
        let pb = AccessPattern::hotspot(4, 0.4, fap_net::NodeId::new(1), 0.6).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[pa, pb], 1.5, 1.0).unwrap();
        let initial = vec![vec![1.0, 0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0, 0.0]];
        let s = m.solve(&initial, 0.02, 1e-6, 100_000).unwrap();
        assert!(s.converged);
        for w in s.cost_series.windows(2) {
            assert!(w[1] <= w[0] + 1e-10, "cost rose: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn feasibility_per_file_is_preserved() {
        let graph = ring4();
        let p = AccessPattern::uniform(4, 0.5).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[p.clone(), p], 1.5, 1.0).unwrap();
        let initial = vec![vec![0.5, 0.5, 0.0, 0.0], vec![0.0, 0.0, 0.5, 0.5]];
        let s = m.solve(&initial, 0.1, 1e-5, 10_000).unwrap();
        for xj in &s.allocations {
            assert!((xj.iter().sum::<f64>() - 1.0).abs() < 1e-7);
            assert!(xj.iter().all(|v| *v >= -1e-9));
        }
    }

    #[test]
    fn solve_validates_inputs() {
        let graph = ring4();
        let p = AccessPattern::uniform(4, 0.5).unwrap();
        let m = MultiFileProblem::mm1(&graph, &[p], 1.5, 1.0).unwrap();
        let good = vec![vec![0.25; 4]];
        assert!(m.solve(&good, 0.0, 1e-6, 100).is_err());
        assert!(m.solve(&good, 0.1, 0.0, 100).is_err());
        assert!(m.solve(&[vec![0.5; 4]], 0.1, 1e-6, 100).is_err()); // sums to 2
        assert!(m.solve(&[vec![0.25; 3]], 0.1, 1e-6, 100).is_err()); // wrong shape
    }
}
