//! Error type for file-allocation model construction and solving.

use std::fmt;

use fap_econ::EconError;
use fap_net::NetError;
use fap_queue::QueueError;

/// Errors produced when building or solving file-allocation problems.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A network-substrate operation failed.
    Net(NetError),
    /// A queueing-model operation failed.
    Queue(QueueError),
    /// An optimization operation failed.
    Econ(EconError),
    /// A model parameter was invalid.
    InvalidParameter(String),
    /// The system cannot possibly serve the offered load
    /// (`Σ μ_i ≤ λ · copies`), so no feasible allocation is stable.
    InsufficientCapacity {
        /// Total service capacity `Σ μ_i`.
        total_capacity: f64,
        /// Offered load `λ` times the number of file copies.
        offered_load: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Net(e) => write!(f, "network error: {e}"),
            CoreError::Queue(e) => write!(f, "queueing error: {e}"),
            CoreError::Econ(e) => write!(f, "optimization error: {e}"),
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CoreError::InsufficientCapacity { total_capacity, offered_load } => write!(
                f,
                "insufficient capacity: total service rate {total_capacity} cannot carry offered load {offered_load}"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Net(e) => Some(e),
            CoreError::Queue(e) => Some(e),
            CoreError::Econ(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for CoreError {
    fn from(e: NetError) -> Self {
        CoreError::Net(e)
    }
}

impl From<QueueError> for CoreError {
    fn from(e: QueueError) -> Self {
        CoreError::Queue(e)
    }
}

impl From<EconError> for CoreError {
    fn from(e: EconError) -> Self {
        CoreError::Econ(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_substrate_errors_with_sources() {
        let e = CoreError::from(NetError::SelfLoop { node: 2 });
        assert!(e.to_string().contains("self-loop"));
        assert!(e.source().is_some());

        let e = CoreError::from(QueueError::Unstable { arrival_rate: 2.0, service_rate: 1.0 });
        assert!(e.source().is_some());

        let e = CoreError::from(EconError::Infeasible("sum".into()));
        assert!(e.source().is_some());

        let e = CoreError::InvalidParameter("k".into());
        assert!(e.source().is_none());
    }

    #[test]
    fn capacity_error_is_informative() {
        let e = CoreError::InsufficientCapacity { total_capacity: 1.0, offered_load: 2.0 };
        assert!(e.to_string().contains("insufficient capacity"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CoreError>();
    }
}
