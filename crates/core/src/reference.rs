//! Centralized closed-form reference solver.
//!
//! The paper's objective is convex, so its optimum is characterized by the
//! KKT conditions derived in §5.3: all nodes with `x_i > 0` share a common
//! marginal cost `q`, and nodes at `x_i = 0` have marginal cost at least
//! `q`. For M/M/1 nodes the marginal cost
//! `∂C/∂x_i = C_i + k μ_i/(μ_i − λ x_i)²` inverts in closed form, giving a
//! water-filling solution: bisect on the common level `q` until the
//! allocation sums to one. This is the ground truth the decentralized
//! algorithm is tested against throughout the workspace.

use serde::{Deserialize, Serialize};

use fap_queue::Mm1Delay;

use crate::error::CoreError;
use crate::single::SingleFileProblem;

/// The optimum computed by the centralized solver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceSolution {
    /// The optimal allocation.
    pub allocation: Vec<f64>,
    /// The common marginal cost `q` (the Lagrange multiplier of
    /// `Σ x_i = 1`).
    pub multiplier: f64,
    /// The optimal cost `C(x*)`.
    pub cost: f64,
}

/// Solves the single-file M/M/1 problem exactly by water-filling.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] when `k = 0` (the objective is
/// then linear and the optimum is the degenerate all-at-the-cheapest-node
/// allocation — use [`crate::baseline::best_single_node`] instead) and
/// [`CoreError::Econ`] if the final allocation fails to evaluate.
pub fn solve(problem: &SingleFileProblem<Mm1Delay>) -> Result<ReferenceSolution, CoreError> {
    let k = problem.k();
    if k == 0.0 {
        return Err(CoreError::InvalidParameter(
            "k = 0 makes the objective linear; the optimum is integral".into(),
        ));
    }
    let n = problem.node_count();
    let lambda = problem.total_rate();
    let costs = problem.access_costs();
    let mus: Vec<f64> = problem.delays().iter().map(Mm1Delay::service_rate).collect();

    // x_i(q): the allocation at which node i's marginal cost equals q.
    let x_of = |i: usize, q: f64| -> f64 {
        let floor = costs[i] + k / mus[i]; // marginal cost at x = 0
        if q <= floor {
            0.0
        } else {
            (mus[i] - (k * mus[i] / (q - costs[i])).sqrt()) / lambda
        }
    };
    let total_of = |q: f64| -> f64 { (0..n).map(|i| x_of(i, q)).sum() };

    // Bracket q: at the smallest zero-allocation level the total is 0; grow
    // until the total reaches 1 (guaranteed since Σ μ_i > λ).
    let mut lo = (0..n).map(|i| costs[i] + k / mus[i]).fold(f64::INFINITY, f64::min);
    let mut hi = lo.max(1.0) * 2.0;
    let mut guard = 0;
    while total_of(hi) < 1.0 {
        hi *= 2.0;
        guard += 1;
        if guard > 200 {
            return Err(CoreError::InvalidParameter(
                "failed to bracket the water-filling level".into(),
            ));
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if total_of(mid) < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let q = 0.5 * (lo + hi);
    let mut allocation: Vec<f64> = (0..n).map(|i| x_of(i, q)).collect();
    // Remove the bisection residue so the result is exactly feasible.
    let sum: f64 = allocation.iter().sum();
    let positive = allocation.iter().filter(|x| **x > 0.0).count().max(1);
    let correction = (1.0 - sum) / positive as f64;
    for x in allocation.iter_mut() {
        if *x > 0.0 {
            *x += correction;
        }
    }
    let cost = problem.cost_of(&allocation)?;
    Ok(ReferenceSolution { allocation, multiplier: q, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_econ::problem::AllocationProblem;
    use fap_econ::{ResourceDirectedOptimizer, StepSize};
    use fap_net::{topology, AccessPattern};
    use proptest::prelude::*;

    #[test]
    fn symmetric_ring_waterfills_to_even_split() {
        let graph = topology::ring(4, 1.0).unwrap();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        let p = SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).unwrap();
        let r = solve(&p).unwrap();
        for x in &r.allocation {
            assert!((x - 0.25).abs() < 1e-9, "{:?}", r.allocation);
        }
        assert!((r.cost - 1.8).abs() < 1e-9);
        // Multiplier = common marginal cost = 1 + 1.5/1.25² = 1.96.
        assert!((r.multiplier - (1.0 + 1.5 / (1.25 * 1.25))).abs() < 1e-6);
    }

    #[test]
    fn rejects_zero_k() {
        let graph = topology::ring(4, 1.0).unwrap();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        let p = SingleFileProblem::mm1(&graph, &pattern, 1.5, 0.0).unwrap();
        assert!(matches!(solve(&p), Err(CoreError::InvalidParameter(_))));
    }

    #[test]
    fn expensive_node_gets_nothing() {
        // Node 0 is so costly to reach that the optimum excludes it.
        let p = SingleFileProblem::from_parts(
            vec![50.0, 0.0, 0.0],
            1.0,
            vec![fap_queue::Mm1Delay::new(1.5).unwrap(); 3],
            1.0,
        )
        .unwrap();
        let r = solve(&p).unwrap();
        assert_eq!(r.allocation[0], 0.0);
        assert!((r.allocation[1] - 0.5).abs() < 1e-9);
        assert!((r.allocation[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn matches_decentralized_algorithm() {
        let graph = topology::random_connected(6, 0.4, 1.0..4.0, 11).unwrap();
        let pattern = AccessPattern::random(6, 0.1..0.4, 11).unwrap();
        let p =
            SingleFileProblem::mm1(&graph, &pattern, pattern.total_rate() * 1.5, 0.8).unwrap();
        let r = solve(&p).unwrap();
        let s = ResourceDirectedOptimizer::new(StepSize::Fixed(0.05))
            .with_epsilon(1e-9)
            .with_max_iterations(200_000)
            .run(&p, &[1.0 / 6.0; 6])
            .unwrap();
        assert!(s.converged);
        assert!((s.final_cost() - r.cost).abs() < 1e-5, "{} vs {}", s.final_cost(), r.cost);
        for (a, b) in s.allocation.iter().zip(&r.allocation) {
            assert!((a - b).abs() < 1e-3, "{:?} vs {:?}", s.allocation, r.allocation);
        }
    }

    #[test]
    fn heterogeneous_rates_waterfill_correctly() {
        let graph = topology::full_mesh(3, 1.0).unwrap();
        let pattern = AccessPattern::uniform(3, 1.0).unwrap();
        let p =
            SingleFileProblem::mm1_heterogeneous(&graph, &pattern, &[4.0, 2.0, 2.0], 1.0).unwrap();
        let r = solve(&p).unwrap();
        assert!((r.allocation.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(r.allocation[0] > r.allocation[1]);
        // Marginal costs equal at the optimum (for positive entries).
        let mut g = vec![0.0; 3];
        p.marginal_utilities(&r.allocation, &mut g).unwrap();
        for (gi, xi) in g.iter().zip(&r.allocation) {
            if *xi > 0.0 {
                assert!((-gi - r.multiplier).abs() < 1e-5);
            }
        }
    }

    proptest! {
        /// The water-filling solution is feasible, satisfies the KKT
        /// conditions, and is no worse than a basket of heuristic feasible
        /// allocations.
        #[test]
        fn waterfilling_is_optimal(seed in 0u64..40, n in 3usize..8, k in 0.2f64..2.0) {
            let graph = topology::random_connected(n, 0.5, 1.0..3.0, seed).unwrap();
            let pattern = AccessPattern::random(n, 0.1..0.5, seed + 1).unwrap();
            let p = SingleFileProblem::mm1(&graph, &pattern, pattern.total_rate() * 1.6, k).unwrap();
            let r = solve(&p).unwrap();
            let sum: f64 = r.allocation.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(r.allocation.iter().all(|x| *x >= 0.0));

            let mut g = vec![0.0; n];
            p.marginal_utilities(&r.allocation, &mut g).unwrap();
            for (gi, xi) in g.iter().zip(&r.allocation) {
                let mc = -gi;
                if *xi > 1e-9 {
                    prop_assert!((mc - r.multiplier).abs() < 1e-4);
                } else {
                    prop_assert!(mc >= r.multiplier - 1e-6);
                }
            }

            // No feasible comparison point beats it.
            let even = vec![1.0 / n as f64; n];
            prop_assert!(r.cost <= p.cost_of(&even).unwrap() + 1e-9);
            for i in 0..n {
                // Whole file at node i, when stable.
                let mut conc = vec![0.0; n];
                conc[i] = 1.0;
                if let Ok(c) = p.cost_of(&conc) {
                    prop_assert!(r.cost <= c + 1e-9);
                }
            }
        }
    }
}
