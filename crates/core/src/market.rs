//! The price-directed view of file allocation (paper §2).
//!
//! In the price-directed (tâtonnement) alternative the paper surveys, each
//! node is a selfish agent and a market price coordinates them. For file
//! *hosting*, the natural market pays each node a price `p` per unit of file
//! it hosts; node `i` offers to host the amount at which its private
//! marginal hosting cost `C_i + k μ_i/(μ_i − λx)²` equals `p`. The price
//! adjusts until offers sum to exactly one file. At equilibrium the common
//! marginal cost equals the water-filling multiplier of
//! [`crate::reference::solve`], so both approaches agree on the optimum —
//! but the price-directed path there is infeasible in the interim, which
//! ablation A3 measures.

use fap_econ::price_directed::DemandSlope;
use fap_econ::DemandFunction;
use fap_queue::Mm1Delay;

use crate::error::CoreError;
use crate::single::SingleFileProblem;

/// The hosting market of a single-file M/M/1 problem.
///
/// # Example
///
/// ```
/// use fap_core::{HostingMarket, SingleFileProblem};
/// use fap_econ::{DemandFunction, PriceDirectedOptimizer};
/// use fap_net::{topology, AccessPattern};
///
/// let graph = topology::ring(4, 1.0)?;
/// let pattern = AccessPattern::uniform(4, 1.0)?;
/// let problem = SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0)?;
/// let market = HostingMarket::new(&problem)?;
/// let s = PriceDirectedOptimizer::new(0.3).run(&market)?;
/// assert!(s.converged);
/// // Symmetric ring: each node ends up hosting a quarter of the file.
/// for x in &s.allocation {
///     assert!((x - 0.25).abs() < 1e-3);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct HostingMarket<'a> {
    problem: &'a SingleFileProblem<Mm1Delay>,
    price_hi: f64,
}

impl<'a> HostingMarket<'a> {
    /// Wraps a problem as a hosting market.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `k = 0` (offers become
    /// step functions and the tâtonnement is degenerate).
    pub fn new(problem: &'a SingleFileProblem<Mm1Delay>) -> Result<Self, CoreError> {
        if problem.k() <= 0.0 {
            return Err(CoreError::InvalidParameter(
                "the hosting market requires k > 0".into(),
            ));
        }
        // Find a price at which total offers exceed the supply of one file.
        let mut market = HostingMarket { problem, price_hi: 0.0 };
        let mut hi = problem
            .access_costs()
            .iter()
            .zip(problem.delays())
            .map(|(c, d)| c + problem.k() / d.service_rate())
            .fold(f64::MIN, f64::max)
            .max(1.0)
            * 2.0;
        let mut guard = 0;
        loop {
            market.price_hi = hi;
            if market.total_demand(hi) > 1.0 {
                break;
            }
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                return Err(CoreError::InvalidParameter(
                    "failed to bracket the clearing price".into(),
                ));
            }
        }
        Ok(market)
    }
}

impl DemandFunction for HostingMarket<'_> {
    fn dimension(&self) -> usize {
        self.problem.node_count()
    }

    fn supply(&self) -> f64 {
        1.0 // one file to host
    }

    fn demand(&self, agent: usize, price: f64) -> f64 {
        let c = self.problem.access_costs()[agent];
        let mu = self.problem.delays()[agent].service_rate();
        let k = self.problem.k();
        let lambda = self.problem.total_rate();
        let floor = c + k / mu; // marginal hosting cost at x = 0
        if price <= floor {
            0.0
        } else {
            (mu - (k * mu / (price - c)).sqrt()) / lambda
        }
    }

    fn slope(&self) -> DemandSlope {
        DemandSlope::Increasing
    }

    fn price_bracket(&self) -> (f64, f64) {
        let lo = self
            .problem
            .access_costs()
            .iter()
            .zip(self.problem.delays())
            .map(|(c, d)| c + self.problem.k() / d.service_rate())
            .fold(f64::MAX, f64::min);
        (lo, self.price_hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use fap_econ::price_directed::clearing_price_bisection;
    use fap_econ::PriceDirectedOptimizer;
    use fap_net::{topology, AccessPattern};

    fn paper_problem() -> SingleFileProblem<Mm1Delay> {
        let graph = topology::ring(4, 1.0).unwrap();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).unwrap()
    }

    #[test]
    fn offers_increase_with_price() {
        let p = paper_problem();
        let m = HostingMarket::new(&p).unwrap();
        let (lo, hi) = m.price_bracket();
        assert!(m.total_demand(lo) < 1e-12);
        assert!(m.total_demand(hi) > 1.0);
        let mid = (lo + hi) / 2.0;
        assert!(m.total_demand(mid) <= m.total_demand(hi));
        assert!(m.demand(0, lo - 1.0) == 0.0, "below-floor price yields no offer");
    }

    #[test]
    fn equilibrium_price_equals_waterfilling_multiplier() {
        let p = paper_problem();
        let m = HostingMarket::new(&p).unwrap();
        let price = clearing_price_bisection(&m, 1e-12).unwrap();
        let r = reference::solve(&p).unwrap();
        assert!((price - r.multiplier).abs() < 1e-6, "{price} vs {}", r.multiplier);
    }

    #[test]
    fn tatonnement_reaches_the_decentralized_optimum_but_infeasibly() {
        let graph = topology::random_connected(5, 0.5, 1.0..3.0, 3).unwrap();
        let pattern = AccessPattern::random(5, 0.1..0.4, 3).unwrap();
        let p = SingleFileProblem::mm1(&graph, &pattern, pattern.total_rate() * 1.8, 1.0).unwrap();
        let m = HostingMarket::new(&p).unwrap();
        let s = PriceDirectedOptimizer::new(0.3).with_tolerance(1e-8).run(&m).unwrap();
        assert!(s.converged);
        let r = reference::solve(&p).unwrap();
        for (a, b) in s.allocation.iter().zip(&r.allocation) {
            assert!((a - b).abs() < 1e-3, "{:?} vs {:?}", s.allocation, r.allocation);
        }
        // The §2 criticism: before clearing, Σ offers ≠ 1.
        assert!(s.max_infeasibility() > 0.01);
    }

    #[test]
    fn rejects_zero_k() {
        let graph = topology::ring(4, 1.0).unwrap();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        let p = SingleFileProblem::mm1(&graph, &pattern, 1.5, 0.0).unwrap();
        assert!(HostingMarket::new(&p).is_err());
    }
}
