//! Integral (whole-file) baselines from the classical FAP literature.
//!
//! Most pre-1986 formulations require a file to reside wholly at one node
//! (Chu's 0/1 programming formulation and its successors, paper §3). For a
//! single copy of a single file the optimal integral placement is simply the
//! node minimizing `C_i + k·T_i(λ)` — enumerable in `O(N)`. Figure 4
//! compares the decentralized fractional optimum against exactly this
//! baseline; [`greedy_fragmentation`] adds a classical discrete heuristic
//! that allocates the file chunk by chunk.

use fap_queue::DelayModel;
use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::single::SingleFileProblem;

/// An integral placement decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntegralPlacement {
    /// The node holding the whole file.
    pub node: usize,
    /// The resulting system-wide cost.
    pub cost: f64,
}

/// The cost of placing the whole file at `node`, if that node can carry the
/// entire access stream.
///
/// # Errors
///
/// Returns [`CoreError::Econ`] if node capacity is insufficient
/// (`λ ≥ μ_node`) or the node index is out of range.
pub fn single_node_cost<D: DelayModel>(
    problem: &SingleFileProblem<D>,
    node: usize,
) -> Result<f64, CoreError> {
    let n = problem.node_count();
    let mut x = vec![0.0; n];
    *x.get_mut(node).ok_or_else(|| {
        CoreError::InvalidParameter(format!("node {node} out of range for {n} nodes"))
    })? = 1.0;
    Ok(problem.cost_of(&x)?)
}

/// The optimal integral placement: the node minimizing `C_i + k·T_i(λ)`
/// among nodes that can carry the whole stream.
///
/// # Errors
///
/// Returns [`CoreError::InsufficientCapacity`] if *no* single node can
/// carry the whole access stream (in which case only fragmented allocations
/// are feasible — itself an argument for fragmentation).
pub fn best_single_node<D: DelayModel>(
    problem: &SingleFileProblem<D>,
) -> Result<IntegralPlacement, CoreError> {
    let mut best: Option<IntegralPlacement> = None;
    for node in 0..problem.node_count() {
        if let Ok(cost) = single_node_cost(problem, node) {
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                best = Some(IntegralPlacement { node, cost });
            }
        }
    }
    best.ok_or(CoreError::InsufficientCapacity {
        total_capacity: problem.delays().iter().map(DelayModel::capacity).fold(0.0, f64::max),
        offered_load: problem.total_rate(),
    })
}

/// All per-node whole-file costs; `None` marks nodes that cannot carry the
/// stream alone.
pub fn all_single_node_costs<D: DelayModel>(problem: &SingleFileProblem<D>) -> Vec<Option<f64>> {
    (0..problem.node_count()).map(|i| single_node_cost(problem, i).ok()).collect()
}

/// A classical greedy heuristic: split the file into `chunks` equal pieces
/// and repeatedly give the next piece to the node where it increases total
/// cost the least. Finer granularity approaches the fractional optimum —
/// the discrete bridge between the integral world of §3 and the fractional
/// world of §4.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for `chunks = 0`, or
/// [`CoreError::Econ`] if no feasible assignment of some chunk exists.
pub fn greedy_fragmentation<D: DelayModel>(
    problem: &SingleFileProblem<D>,
    chunks: usize,
) -> Result<(Vec<f64>, f64), CoreError> {
    if chunks == 0 {
        return Err(CoreError::InvalidParameter("chunks must be positive".into()));
    }
    let n = problem.node_count();
    let piece = 1.0 / chunks as f64;
    let mut x = vec![0.0; n];
    for _ in 0..chunks {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..n {
            x[i] += piece;
            if let Ok(cost) = problem.cost_of(&x) {
                if best.as_ref().is_none_or(|&(_, c)| cost < c) {
                    best = Some((i, cost));
                }
            }
            x[i] -= piece;
        }
        let (i, _) = best.ok_or_else(|| {
            CoreError::Econ(fap_econ::EconError::Model(
                "no node can accept the next file chunk".into(),
            ))
        })?;
        x[i] += piece;
    }
    let cost = problem.cost_of(&x)?;
    Ok((x, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use fap_net::{topology, AccessPattern};

    fn paper_problem() -> SingleFileProblem {
        let graph = topology::ring(4, 1.0).unwrap();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).unwrap()
    }

    #[test]
    fn symmetric_ring_single_node_cost_is_three() {
        let p = paper_problem();
        for i in 0..4 {
            assert!((single_node_cost(&p, i).unwrap() - 3.0).abs() < 1e-12);
        }
        let best = best_single_node(&p).unwrap();
        assert!((best.cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_node_is_an_error() {
        let p = paper_problem();
        assert!(single_node_cost(&p, 10).is_err());
    }

    #[test]
    fn asymmetric_network_picks_the_cheap_node() {
        // Star: hub (node 0) has average distance 3/4; leaves have
        // (1 + 0 + 2 + 2)/4 = 5/4.
        let graph = topology::star(4, 1.0).unwrap();
        let pattern = AccessPattern::uniform(4, 1.0).unwrap();
        let p = SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).unwrap();
        let best = best_single_node(&p).unwrap();
        assert_eq!(best.node, 0);
    }

    #[test]
    fn overloaded_node_is_skipped() {
        // Node 0 fast enough to hold the file, node 1 too slow.
        let p = SingleFileProblem::from_parts(
            vec![2.0, 0.0],
            1.0,
            vec![fap_queue::Mm1Delay::new(1.5).unwrap(), fap_queue::Mm1Delay::new(0.9).unwrap()],
            1.0,
        )
        .unwrap();
        let costs = all_single_node_costs(&p);
        assert!(costs[0].is_some());
        assert!(costs[1].is_none());
        assert_eq!(best_single_node(&p).unwrap().node, 0);
    }

    #[test]
    fn no_single_node_feasible_is_reported() {
        // Each node μ = 0.8 < λ = 1, but jointly 1.6 > 1.
        let p = SingleFileProblem::from_parts(
            vec![0.0, 0.0],
            1.0,
            vec![fap_queue::Mm1Delay::new(0.8).unwrap(); 2],
            1.0,
        )
        .unwrap();
        assert!(matches!(best_single_node(&p), Err(CoreError::InsufficientCapacity { .. })));
    }

    #[test]
    fn fragmentation_beats_integral_placement() {
        // The Figure-4 claim.
        let p = paper_problem();
        let integral = best_single_node(&p).unwrap();
        let fractional = reference::solve(&p).unwrap();
        assert!(fractional.cost < integral.cost);
        let reduction = (integral.cost - fractional.cost) / integral.cost;
        assert!(reduction > 0.2, "reduction {reduction}");
    }

    #[test]
    fn greedy_converges_to_fractional_optimum_with_fine_chunks() {
        let p = paper_problem();
        let optimum = reference::solve(&p).unwrap().cost;
        let (_, coarse) = greedy_fragmentation(&p, 2).unwrap();
        let (_, fine) = greedy_fragmentation(&p, 64).unwrap();
        assert!(fine <= coarse + 1e-12);
        assert!((fine - optimum) / optimum < 0.01, "fine {fine} vs optimum {optimum}");
    }

    #[test]
    fn greedy_allocation_is_feasible() {
        let p = paper_problem();
        let (x, _) = greedy_fragmentation(&p, 10).unwrap();
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(x.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn greedy_rejects_zero_chunks() {
        let p = paper_problem();
        assert!(greedy_fragmentation(&p, 0).is_err());
    }
}
