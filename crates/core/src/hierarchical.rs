//! Hierarchical cluster-solve-refine: the file-allocation problem at node
//! counts where the exact solver no longer fits.
//!
//! The dense pipeline solves one `N`-dimensional problem over exact costs.
//! At `N = 10⁵` the cost matrix alone is a dead end, so this module solves
//! the problem in three stages on top of a [`LandmarkOracle`]:
//!
//! 1. **Aggregate** — collapse the network to its `K` landmark clusters:
//!    pooled service capacity `μ_a = Σ_{i∈a} μ_i`, hub-estimated access
//!    cost of each cluster's landmark, and solve the `K`-dimensional FAP
//!    for cluster shares `y_a` (`Σ_a y_a = 1`).
//! 2. **Per-cluster** — split each share among its members. Substituting
//!    `x_i = y_a·z_i` turns the restriction of equation 1 to cluster `a`
//!    into another [`SingleFileProblem`] with total rate `λ·y_a`, so the
//!    existing solver applies unchanged.
//! 3. **Refine** — resource-directed rounds *across* cluster boundaries:
//!    compute member marginals of the full estimated problem, step the
//!    cluster shares toward the high-marginal clusters, project back onto
//!    the simplex (capacity-capped), and re-solve the inner problems
//!    **warm-started** from their previous optima via
//!    [`OptimizerScratch::start_from`] — the PR-5 warm-path engine as the
//!    refinement engine. Rounds stop when the cluster-marginal spread
//!    falls below ε; each round increments the `hier.refine_rounds`
//!    counter.
//!
//! Everything is sequential and deterministic: the same oracle, workload
//! and config produce a bit-identical allocation, which is what lets the
//! scale bench pin checksums on the hierarchical path.
//!
//! # Multi-level trees
//!
//! At `N = 10⁶` under the substrate byte ceiling, `K` is forced down to
//! ~10² and a "cluster" grows to ~10⁴ members — too large for one flat
//! inner solve. [`solve_hierarchical_multilevel`] therefore splits any
//! oversized cluster into a deterministic **cluster-of-clusters tree**:
//! members sort by `(home distance, index)`, split into near-even
//! contiguous chunks with the branching factor chosen so leaves stay
//! around 128–256 nodes, and each internal node repeats the
//! aggregate-solve / per-chunk-solve / share-refine pass of the flat
//! pipeline on its own members — warm-started from the shares and splits
//! of the previous visit. Depth 1 *is* the flat pipeline (delegated
//! verbatim, bit for bit — pinned by `tests/hier_multilevel.rs`).

use serde::{Deserialize, Serialize};

use fap_econ::{
    project_onto_simplex, AllocationProblem, OptimizerScratch, ResourceDirectedOptimizer,
    StepSize,
};
use fap_net::{AccessPattern, CostProvider, LandmarkOracle, NodeId};
use fap_obs::{
    emit_span, emit_span_end, emit_span_start, NoopRecorder, Recorder, TraceContext,
};
use fap_queue::Mm1Delay;

use crate::error::CoreError;
use crate::single::SingleFileProblem;

/// Leaf ceiling of the multi-level member tree: a cluster (or chunk) at
/// most this large is solved flat; anything larger is partitioned when
/// the solve has levels to spend.
const LEAF_MAX: usize = 256;

/// Tuning knobs for [`solve_hierarchical`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalConfig {
    /// Upper clamp on the dynamic step of the aggregate and per-cluster
    /// solves (they use [`StepSize::Dynamic`], whose utility backtracking
    /// keeps heavily-loaded inner subproblems clear of their capacity
    /// poles).
    pub alpha: f64,
    /// Marginal-spread convergence threshold, shared by every stage.
    pub epsilon: f64,
    /// Iteration cap per aggregate/inner solve.
    pub max_inner_iterations: usize,
    /// Cap on cross-cluster refinement rounds.
    pub max_refine_rounds: usize,
    /// Step size of the refinement updates on the cluster shares.
    pub refine_step: f64,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        HierarchicalConfig {
            alpha: 1.0,
            epsilon: 1e-6,
            max_inner_iterations: 200_000,
            max_refine_rounds: 8,
            refine_step: 0.05,
        }
    }
}

/// The result of a hierarchical solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalSolution {
    /// The global allocation `x` over all `N` nodes (`Σ x_i = 1`).
    pub allocation: Vec<f64>,
    /// Final cluster shares `y_a`.
    pub cluster_shares: Vec<f64>,
    /// Number of clusters `K`.
    pub clusters: usize,
    /// Iterations spent by the aggregate solve.
    pub aggregate_iterations: usize,
    /// Iterations spent by all per-cluster solves, over all rounds.
    pub inner_iterations: usize,
    /// Cross-cluster refinement rounds executed.
    pub refine_rounds: usize,
    /// Whether refinement converged (cluster-marginal spread below ε).
    pub converged: bool,
    /// Cost of the returned allocation under the oracle's estimated
    /// access costs (equation 1 with estimated `C_i`).
    pub estimated_cost: f64,
    /// Depth of the cluster tree the solve used (1 = flat
    /// cluster-solve-refine, the pre-multilevel pipeline).
    #[serde(default = "default_levels")]
    pub levels: usize,
}

fn default_levels() -> usize {
    1
}

/// Solves the single-file problem hierarchically on `oracle`.
///
/// Equivalent to [`solve_hierarchical_observed`] with a [`NoopRecorder`].
///
/// # Errors
///
/// Same conditions as [`solve_hierarchical_observed`].
pub fn solve_hierarchical(
    oracle: &LandmarkOracle,
    pattern: &AccessPattern,
    mus: &[f64],
    k: f64,
    config: &HierarchicalConfig,
) -> Result<HierarchicalSolution, CoreError> {
    solve_hierarchical_observed(oracle, pattern, mus, k, config, &mut NoopRecorder)
}

/// Solves the single-file problem hierarchically, recording the
/// `hier.refine_rounds` counter (one increment per refinement round) and
/// the oracle's row-cache counters into `recorder`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for mismatched dimensions or
/// invalid config values, [`CoreError::InsufficientCapacity`] when
/// `Σ μ_i ≤ λ`, and any solver error from the aggregate or per-cluster
/// stages.
pub fn solve_hierarchical_observed(
    oracle: &LandmarkOracle,
    pattern: &AccessPattern,
    mus: &[f64],
    k: f64,
    config: &HierarchicalConfig,
    recorder: &mut dyn Recorder,
) -> Result<HierarchicalSolution, CoreError> {
    solve_hierarchical_impl(oracle, pattern, mus, k, config, 1, recorder)
}

/// Solves the single-file problem on a multi-level cluster tree.
///
/// `levels` bounds the depth of the tree: `1` is exactly the flat
/// [`solve_hierarchical`] pipeline (bit-identical output), while deeper
/// settings let any cluster larger than ~256 members split recursively
/// into near-even chunks of its `(home distance, index)`-sorted members,
/// each chunk solved through the same aggregate/inner/refine pass. Use
/// more levels when the substrate byte ceiling forces `K` far below
/// `N / 256` — at `N = 10⁶` with `K ≈ 10²`, `levels = 3` keeps every
/// inner solve a few hundred variables wide.
///
/// Equivalent to [`solve_hierarchical_multilevel_observed`] with a
/// [`NoopRecorder`].
///
/// # Errors
///
/// Same conditions as [`solve_hierarchical_observed`], plus
/// [`CoreError::InvalidParameter`] when `levels` is zero.
pub fn solve_hierarchical_multilevel(
    oracle: &LandmarkOracle,
    pattern: &AccessPattern,
    mus: &[f64],
    k: f64,
    config: &HierarchicalConfig,
    levels: usize,
) -> Result<HierarchicalSolution, CoreError> {
    solve_hierarchical_multilevel_observed(oracle, pattern, mus, k, config, levels, &mut NoopRecorder)
}

/// Observed variant of [`solve_hierarchical_multilevel`].
///
/// # Errors
///
/// Same conditions as [`solve_hierarchical_multilevel`].
pub fn solve_hierarchical_multilevel_observed(
    oracle: &LandmarkOracle,
    pattern: &AccessPattern,
    mus: &[f64],
    k: f64,
    config: &HierarchicalConfig,
    levels: usize,
    recorder: &mut dyn Recorder,
) -> Result<HierarchicalSolution, CoreError> {
    if levels == 0 {
        return Err(CoreError::InvalidParameter(
            "hierarchy depth must be at least 1 level".into(),
        ));
    }
    solve_hierarchical_impl(oracle, pattern, mus, k, config, levels, recorder)
}

fn solve_hierarchical_impl(
    oracle: &LandmarkOracle,
    pattern: &AccessPattern,
    mus: &[f64],
    k: f64,
    config: &HierarchicalConfig,
    levels: usize,
    recorder: &mut dyn Recorder,
) -> Result<HierarchicalSolution, CoreError> {
    let n = oracle.node_count();
    if pattern.node_count() != n || mus.len() != n {
        return Err(CoreError::InvalidParameter(format!(
            "oracle covers {n} nodes, pattern {} and mus {}",
            pattern.node_count(),
            mus.len()
        )));
    }
    if !(config.alpha.is_finite()
        && config.alpha > 0.0
        && config.refine_step.is_finite()
        && config.refine_step > 0.0
        && config.epsilon.is_finite()
        && config.epsilon > 0.0)
    {
        return Err(CoreError::InvalidParameter(format!(
            "hierarchical config: alpha {}, refine_step {}, epsilon {}",
            config.alpha, config.refine_step, config.epsilon
        )));
    }
    let lambda = pattern.total_rate();

    // Tracing: the solve's phases land on a virtual iteration timeline —
    // each stage's width is the iterations it ran — nested under one
    // `hier.solve` span (a child of whatever context the caller installed).
    // The timeline is derived from solved iteration counts only, so a
    // traced run records the same spans every time.
    let mut tick = recorder.now();
    let base = tick;
    let prev_trace = recorder.current_trace();
    let root_ctx = if recorder.trace_enabled() {
        let id = recorder.reserve_span_ids(1);
        let ctx = match prev_trace {
            Some(parent) => parent.child(id),
            None => TraceContext::root(id),
        };
        emit_span_start(recorder, "hier.solve", ctx, base);
        // Install the solve as the current context so substrate markers
        // (cache hits, landmark-row drains) parent under it rather than
        // starting traces of their own.
        recorder.set_current_trace(Some(ctx));
        Some(ctx)
    } else {
        None
    };

    // The full problem under the oracle's estimated access costs: the
    // refinement marginals and the reported cost are evaluated on it.
    let est_costs = oracle.systemwide_access_costs(pattern);
    if let Some(root) = root_ctx {
        // The substrate pass takes no solver iterations: a zero-width span
        // marks where the hub-decomposed access costs were materialized.
        let id = recorder.reserve_span_ids(1);
        emit_span(recorder, "net.access_costs", root.child(id), tick, tick);
    }
    let full = SingleFileProblem::from_parts(
        est_costs.clone(),
        lambda,
        mus.iter().map(|&mu| Mm1Delay::new(mu)).collect::<Result<Vec<_>, _>>()?,
        k,
    )?;

    let clusters = oracle.cluster_members();
    let kk = clusters.len();
    let pooled_mu: Vec<f64> = clusters
        .iter()
        .map(|members| members.iter().map(|&i| mus[i.index()]).sum())
        .collect();
    // Share ceiling per cluster: the margin keeps every inner subproblem
    // strictly inside its pooled capacity (Σ caps > 1 whenever Σ μ > λ).
    let rho = lambda / pooled_mu.iter().sum::<f64>();
    let margin = (0.5 * (1.0 - rho)).min(1e-3);
    let caps: Vec<f64> = pooled_mu.iter().map(|&mu_a| mu_a / lambda * (1.0 - margin)).collect();

    let solver = ResourceDirectedOptimizer::new(StepSize::Dynamic {
        safety: 0.9,
        max: config.alpha,
    })
        .with_epsilon(config.epsilon)
        .with_max_iterations(config.max_inner_iterations);
    let mut scratch = OptimizerScratch::new();

    // Stage 1: aggregate K-cluster solve from a capacity-proportional
    // (hence feasible) start.
    let aggregate = SingleFileProblem::from_parts(
        (0..kk).map(|a| est_costs[oracle.landmarks()[a].index()]).collect(),
        lambda,
        pooled_mu.iter().map(|&mu_a| Mm1Delay::new(mu_a)).collect::<Result<Vec<_>, _>>()?,
        k,
    )?;
    let total_mu: f64 = pooled_mu.iter().sum();
    let y0: Vec<f64> = pooled_mu.iter().map(|&mu_a| mu_a / total_mu).collect();
    let agg_solution = solver.run_with_scratch(&aggregate, &y0, &mut scratch)?;
    let aggregate_iterations = agg_solution.iterations;
    if let Some(root) = root_ctx {
        let id = recorder.reserve_span_ids(1);
        let end = tick + aggregate_iterations as u64;
        emit_span(recorder, "hier.aggregate", root.child(id), tick, end);
    }
    tick += aggregate_iterations as u64;
    let mut shares = agg_solution.allocation;
    clamp_to_caps(&mut shares, &caps);

    // Stage 2 state: per-cluster member splits z (x_i = y_a · z_i).
    let mut splits: Vec<Vec<f64>> = clusters
        .iter()
        .enumerate()
        .map(|(a, members)| {
            members.iter().map(|&i| mus[i.index()] / pooled_mu[a]).collect()
        })
        .collect();
    let mut inner_iterations = 0usize;
    solve_clusters(
        oracle, config, levels, &clusters, &shares, &est_costs, mus, lambda, k, margin,
        &solver, &mut scratch, &mut splits, &mut inner_iterations, false, recorder,
        &mut tick, root_ctx,
    )?;

    let mut x = compose(n, &clusters, &shares, &splits);
    let mut best_x = x.clone();
    let mut best_cost = full.cost_of(&best_x)?;
    let mut best_shares = shares.clone();

    // Stage 3: cross-cluster refinement with warm-started inner re-solves.
    let mut marginals = vec![0.0; n];
    let mut refine_rounds = 0usize;
    let mut converged = false;
    for _ in 0..config.max_refine_rounds {
        full.marginal_utilities(&x, &mut marginals)?;
        // Cluster marginal: allocation-weighted member marginal for active
        // clusters, best entrant marginal for empty ones.
        let cluster_marginals: Vec<f64> = clusters
            .iter()
            .enumerate()
            .map(|(a, members)| {
                if shares[a] > 0.0 {
                    members
                        .iter()
                        .zip(&splits[a])
                        .map(|(&i, &z)| z * marginals[i.index()])
                        .sum()
                } else {
                    members
                        .iter()
                        .map(|&i| marginals[i.index()])
                        .fold(f64::NEG_INFINITY, f64::max)
                }
            })
            .collect();
        let spread = cluster_marginals.iter().fold(f64::NEG_INFINITY, |m, &g| m.max(g))
            - cluster_marginals.iter().fold(f64::INFINITY, |m, &g| m.min(g));
        if spread < config.epsilon {
            converged = true;
            break;
        }
        refine_rounds += 1;
        recorder.incr("hier.refine_rounds", 1);
        let round_ctx = root_ctx.map(|root| {
            let id = recorder.reserve_span_ids(1);
            let ctx = root.child(id);
            emit_span_start(recorder, "hier.refine", ctx, tick);
            ctx
        });
        let round_start = tick;

        // Resource-directed step on the shares: move resource toward the
        // clusters whose members report higher marginal utility.
        let mean: f64 = shares.iter().zip(&cluster_marginals).map(|(&y, &g)| y * g).sum();
        for (y, &g) in shares.iter_mut().zip(&cluster_marginals) {
            *y += config.refine_step * (g - mean);
        }
        project_onto_simplex(&mut shares, 1.0);
        clamp_to_caps(&mut shares, &caps);

        solve_clusters(
            oracle, config, levels, &clusters, &shares, &est_costs, mus, lambda, k, margin,
            &solver, &mut scratch, &mut splits, &mut inner_iterations, true, recorder,
            &mut tick, round_ctx,
        )?;
        if let Some(ctx) = round_ctx {
            emit_span_end(recorder, "hier.refine", ctx, tick, tick - round_start);
        }
        x = compose(n, &clusters, &shares, &splits);
        let cost = full.cost_of(&x)?;
        if cost < best_cost {
            best_cost = cost;
            best_x.copy_from_slice(&x);
            best_shares.copy_from_slice(&shares);
        }
    }
    oracle.publish_metrics(recorder);
    if let Some(ctx) = root_ctx {
        emit_span_end(recorder, "hier.solve", ctx, tick, tick - base);
        recorder.set_current_trace(prev_trace);
    }

    Ok(HierarchicalSolution {
        allocation: best_x,
        cluster_shares: best_shares,
        clusters: kk,
        aggregate_iterations,
        inner_iterations,
        refine_rounds,
        converged,
        estimated_cost: best_cost,
        levels,
    })
}

/// Solves every active cluster's inner problem, updating `splits` in place
/// and adding iteration counts to `inner_iterations`. With `warm` set, each
/// solve is seeded from the cluster's previous split. When `parent` is set
/// (tracing), each inner solve emits a `hier.cluster_solve` child span of
/// its iteration width, advancing `tick` so the pass tiles the timeline.
#[allow(clippy::too_many_arguments)]
fn solve_clusters(
    oracle: &LandmarkOracle,
    config: &HierarchicalConfig,
    levels: usize,
    clusters: &[Vec<NodeId>],
    shares: &[f64],
    est_costs: &[f64],
    mus: &[f64],
    lambda: f64,
    k: f64,
    margin: f64,
    solver: &ResourceDirectedOptimizer,
    scratch: &mut OptimizerScratch,
    splits: &mut [Vec<f64>],
    inner_iterations: &mut usize,
    warm: bool,
    recorder: &mut dyn Recorder,
    tick: &mut u64,
    parent: Option<TraceContext>,
) -> Result<(), CoreError> {
    for (a, members) in clusters.iter().enumerate() {
        if shares[a] <= 0.0 || members.len() < 2 {
            // A zero-share or singleton cluster needs no inner solve; its
            // split stays at the previous (or capacity-proportional) value.
            continue;
        }
        if levels > 1 && members.len() > LEAF_MAX {
            // Oversized cluster with levels to spend: recurse into the
            // member tree instead of one huge flat inner solve.
            let mut z = std::mem::take(&mut splits[a]);
            solve_member_tree(
                oracle, members, est_costs, mus, lambda * shares[a], k, config, solver,
                scratch, levels - 1, &mut z, warm, inner_iterations, recorder, tick, parent,
            )?;
            splits[a] = z;
            continue;
        }
        let inner_rate = lambda * shares[a];
        let inner = SingleFileProblem::from_parts(
            members.iter().map(|&i| est_costs[i.index()]).collect(),
            inner_rate,
            members
                .iter()
                .map(|&i| Mm1Delay::new(mus[i.index()]))
                .collect::<Result<Vec<_>, _>>()?,
            k,
        )?;
        // A seed carried over from a smaller share can overload a member
        // once the share grows; clamp it back inside the member capacities
        // (the half-margin leaves the caps summing above one, so the clamp
        // always lands feasible).
        let member_caps: Vec<f64> = members
            .iter()
            .map(|&i| mus[i.index()] * (1.0 - 0.5 * margin) / inner_rate)
            .collect();
        clamp_to_caps(&mut splits[a], &member_caps);
        if warm {
            scratch.start_from(&splits[a]);
        }
        let solution = solver.run_with_scratch(&inner, &splits[a].clone(), scratch)?;
        *inner_iterations += solution.iterations;
        if let Some(ctx) = parent {
            let id = recorder.reserve_span_ids(1);
            let end = *tick + solution.iterations as u64;
            emit_span(recorder, "hier.cluster_solve", ctx.child(id), *tick, end);
        }
        *tick += solution.iterations as u64;
        splits[a] = solution.allocation;
    }
    Ok(())
}

/// Solves one node of the multi-level member tree: the split `z` of
/// `rate` units of traffic over `members` (`Σ z = 1`).
///
/// A leaf (`members` within [`LEAF_MAX`], no levels left, or too small to
/// split) runs one flat inner solve. An internal node partitions the
/// `(home distance, index)`-sorted members into near-even contiguous
/// chunks, solves chunk shares on a pooled sub-aggregate, recurses into
/// each chunk, and runs a bounded share-refinement pass — the flat
/// three-stage pipeline replayed at every level, warm-started from the
/// incoming `z`. Every solver run lands a `hier.cluster_solve` span and
/// adds to `inner_iterations`, so the traced timeline partition stays
/// exact at any depth.
#[allow(clippy::too_many_arguments)]
fn solve_member_tree(
    oracle: &LandmarkOracle,
    members: &[NodeId],
    est_costs: &[f64],
    mus: &[f64],
    rate: f64,
    k: f64,
    config: &HierarchicalConfig,
    solver: &ResourceDirectedOptimizer,
    scratch: &mut OptimizerScratch,
    levels_below: usize,
    z: &mut Vec<f64>,
    warm: bool,
    inner_iterations: &mut usize,
    recorder: &mut dyn Recorder,
    tick: &mut u64,
    parent: Option<TraceContext>,
) -> Result<(), CoreError> {
    let m = members.len();
    if m < 2 {
        return Ok(());
    }
    let pooled: f64 = members.iter().map(|&i| mus[i.index()]).sum();
    let rho = rate / pooled;
    let margin = (0.5 * (1.0 - rho)).min(1e-3);

    if levels_below == 0 || m <= LEAF_MAX {
        // Leaf: one flat inner solve over the members, mirroring the
        // flat path's per-cluster stage.
        let inner = SingleFileProblem::from_parts(
            members.iter().map(|&i| est_costs[i.index()]).collect(),
            rate,
            members
                .iter()
                .map(|&i| Mm1Delay::new(mus[i.index()]))
                .collect::<Result<Vec<_>, _>>()?,
            k,
        )?;
        let member_caps: Vec<f64> = members
            .iter()
            .map(|&i| mus[i.index()] * (1.0 - 0.5 * margin) / rate)
            .collect();
        clamp_to_caps(z, &member_caps);
        if warm {
            scratch.start_from(z);
        }
        let solution = solver.run_with_scratch(&inner, &z.clone(), scratch)?;
        *inner_iterations += solution.iterations;
        if let Some(ctx) = parent {
            let id = recorder.reserve_span_ids(1);
            let end = *tick + solution.iterations as u64;
            emit_span(recorder, "hier.cluster_solve", ctx.child(id), *tick, end);
        }
        *tick += solution.iterations as u64;
        *z = solution.allocation;
        return Ok(());
    }

    // Internal node: deterministic partition into near-even contiguous
    // chunks of the sorted member list. Sorting by distance to the home
    // landmark groups members of similar network position, so a chunk's
    // closest member is a fair access-cost representative for the chunk.
    let order = sorted_by_home_distance(oracle, members);
    let b = branching_factor(m, levels_below);
    let bounds: Vec<(usize, usize)> = (0..b).map(|c| (c * m / b, (c + 1) * m / b)).collect();
    let chunk_mu: Vec<f64> = bounds
        .iter()
        .map(|&(lo, hi)| order[lo..hi].iter().map(|&p| mus[members[p].index()]).sum())
        .collect();
    let chunk_cost: Vec<f64> = bounds
        .iter()
        .map(|&(lo, _)| est_costs[members[order[lo]].index()])
        .collect();
    let caps: Vec<f64> = chunk_mu.iter().map(|&mu_c| mu_c / rate * (1.0 - margin)).collect();

    // Chunk shares seeded from the incoming split's chunk sums (they sum
    // to 1 whenever z does), then solved on the pooled sub-aggregate.
    let aggregate = SingleFileProblem::from_parts(
        chunk_cost,
        rate,
        chunk_mu.iter().map(|&mu_c| Mm1Delay::new(mu_c)).collect::<Result<Vec<_>, _>>()?,
        k,
    )?;
    let mut shares: Vec<f64> = bounds
        .iter()
        .map(|&(lo, hi)| order[lo..hi].iter().map(|&p| z[p]).sum())
        .collect();
    if shares.iter().sum::<f64>() <= 0.5 {
        // Unusable incoming split (e.g. a cluster that held zero share
        // all along): fall back to the capacity-proportional start.
        for (y, &mu_c) in shares.iter_mut().zip(&chunk_mu) {
            *y = mu_c / pooled;
        }
    }
    clamp_to_caps(&mut shares, &caps);
    if warm {
        scratch.start_from(&shares);
    }
    let agg = solver.run_with_scratch(&aggregate, &shares.clone(), scratch)?;
    *inner_iterations += agg.iterations;
    if let Some(ctx) = parent {
        let id = recorder.reserve_span_ids(1);
        let end = *tick + agg.iterations as u64;
        emit_span(recorder, "hier.cluster_solve", ctx.child(id), *tick, end);
    }
    *tick += agg.iterations as u64;
    shares = agg.allocation;
    clamp_to_caps(&mut shares, &caps);

    // Per-chunk sub-splits w (z_p = share_c · w_p), seeded from the
    // incoming z where it carries mass, capacity-proportional otherwise.
    let chunk_members: Vec<Vec<NodeId>> = bounds
        .iter()
        .map(|&(lo, hi)| order[lo..hi].iter().map(|&p| members[p]).collect())
        .collect();
    let mut subsplits: Vec<Vec<f64>> = bounds
        .iter()
        .enumerate()
        .map(|(c, &(lo, hi))| {
            let total: f64 = order[lo..hi].iter().map(|&p| z[p]).sum();
            if total > 0.0 {
                order[lo..hi].iter().map(|&p| z[p] / total).collect()
            } else {
                order[lo..hi]
                    .iter()
                    .map(|&p| mus[members[p].index()] / chunk_mu[c])
                    .collect()
            }
        })
        .collect();
    for (c, chunk) in chunk_members.iter().enumerate() {
        if shares[c] <= 0.0 || chunk.len() < 2 {
            continue;
        }
        solve_member_tree(
            oracle, chunk, est_costs, mus, rate * shares[c], k, config, solver, scratch,
            levels_below - 1, &mut subsplits[c], warm, inner_iterations, recorder, tick,
            parent,
        )?;
    }

    // Bounded share refinement across the chunks. The root's refine loop
    // already re-visits this whole subtree warm each round, so a couple
    // of local rounds are enough to even out chunk marginals.
    let member_problem = SingleFileProblem::from_parts(
        members.iter().map(|&i| est_costs[i.index()]).collect(),
        rate,
        members
            .iter()
            .map(|&i| Mm1Delay::new(mus[i.index()]))
            .collect::<Result<Vec<_>, _>>()?,
        k,
    )?;
    let mut zc = compose_members(m, &bounds, &order, &shares, &subsplits);
    let mut best_z = zc.clone();
    let mut best_cost = member_problem.cost_of(&zc)?;
    let mut marginals = vec![0.0; m];
    for _ in 0..config.max_refine_rounds.min(2) {
        member_problem.marginal_utilities(&zc, &mut marginals)?;
        let chunk_marginals: Vec<f64> = bounds
            .iter()
            .enumerate()
            .map(|(c, &(lo, hi))| {
                if shares[c] > 0.0 {
                    order[lo..hi]
                        .iter()
                        .zip(&subsplits[c])
                        .map(|(&p, &w)| w * marginals[p])
                        .sum()
                } else {
                    order[lo..hi]
                        .iter()
                        .map(|&p| marginals[p])
                        .fold(f64::NEG_INFINITY, f64::max)
                }
            })
            .collect();
        let spread = chunk_marginals.iter().fold(f64::NEG_INFINITY, |s, &g| s.max(g))
            - chunk_marginals.iter().fold(f64::INFINITY, |s, &g| s.min(g));
        if spread < config.epsilon {
            break;
        }
        let mean: f64 = shares.iter().zip(&chunk_marginals).map(|(&y, &g)| y * g).sum();
        for (y, &g) in shares.iter_mut().zip(&chunk_marginals) {
            *y += config.refine_step * (g - mean);
        }
        project_onto_simplex(&mut shares, 1.0);
        clamp_to_caps(&mut shares, &caps);
        for (c, chunk) in chunk_members.iter().enumerate() {
            if shares[c] <= 0.0 || chunk.len() < 2 {
                continue;
            }
            solve_member_tree(
                oracle, chunk, est_costs, mus, rate * shares[c], k, config, solver,
                scratch, levels_below - 1, &mut subsplits[c], true, inner_iterations,
                recorder, tick, parent,
            )?;
        }
        zc = compose_members(m, &bounds, &order, &shares, &subsplits);
        let cost = member_problem.cost_of(&zc)?;
        if cost < best_cost {
            best_cost = cost;
            best_z.copy_from_slice(&zc);
        }
    }
    *z = best_z;
    Ok(())
}

/// Indices into `members` sorted by `(distance to home landmark, node
/// index)` — a deterministic, machine-independent order (`total_cmp`
/// breaks no ties differently across platforms, and the node index
/// settles exact-distance ties).
fn sorted_by_home_distance(oracle: &LandmarkOracle, members: &[NodeId]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by(|&p, &q| {
        oracle
            .home_distance(members[p])
            .total_cmp(&oracle.home_distance(members[q]))
            .then(members[p].cmp(&members[q]))
    });
    order
}

/// Smallest branching factor `B ≥ 2` whose `levels_below`-deep tree of
/// [`LEAF_MAX`]-sized leaves covers `m` members (`B^levels_below ·
/// LEAF_MAX ≥ m`), capped at `m` so no chunk is empty. Integer
/// arithmetic only: the result feeds committed checksums, so it must not
/// depend on platform `powf` rounding.
fn branching_factor(m: usize, levels_below: usize) -> usize {
    let mut b = 2usize;
    loop {
        let mut capacity = LEAF_MAX;
        let mut saturated = false;
        for _ in 0..levels_below {
            match capacity.checked_mul(b) {
                Some(c) => capacity = c,
                None => {
                    saturated = true;
                    break;
                }
            }
        }
        if saturated || capacity >= m {
            return b.min(m);
        }
        b += 1;
    }
}

/// Assembles a member split `z_p = share_c · w_p` from chunk shares and
/// per-chunk sub-splits, back in the original `members` order.
fn compose_members(
    m: usize,
    bounds: &[(usize, usize)],
    order: &[usize],
    shares: &[f64],
    subsplits: &[Vec<f64>],
) -> Vec<f64> {
    let mut z = vec![0.0; m];
    for (c, &(lo, hi)) in bounds.iter().enumerate() {
        if shares[c] <= 0.0 {
            continue;
        }
        for (&p, &w) in order[lo..hi].iter().zip(&subsplits[c]) {
            z[p] = shares[c] * w;
        }
    }
    z
}

/// Assembles the global allocation `x_i = y_{home(i)} · z_i`.
fn compose(n: usize, clusters: &[Vec<NodeId>], shares: &[f64], splits: &[Vec<f64>]) -> Vec<f64> {
    let mut x = vec![0.0; n];
    for (a, members) in clusters.iter().enumerate() {
        if shares[a] <= 0.0 {
            continue;
        }
        for (&i, &z) in members.iter().zip(&splits[a]) {
            x[i.index()] = shares[a] * z;
        }
    }
    x
}

/// Caps each share at its cluster's capacity ceiling, redistributing the
/// excess to clusters with remaining headroom (preserves `Σ y = 1`;
/// `Σ caps > 1` guarantees termination with every cap respected).
fn clamp_to_caps(shares: &mut [f64], caps: &[f64]) {
    for _ in 0..shares.len() {
        let mut excess = 0.0;
        for (y, &cap) in shares.iter_mut().zip(caps) {
            if *y > cap {
                excess += *y - cap;
                *y = cap;
            }
        }
        if excess <= 0.0 {
            return;
        }
        let slack: f64 =
            shares.iter().zip(caps).map(|(&y, &cap)| (cap - y).max(0.0)).sum();
        if slack <= 0.0 {
            return;
        }
        for (y, &cap) in shares.iter_mut().zip(caps) {
            let head = cap - *y;
            if head > 0.0 {
                *y += excess * head / slack;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use fap_net::{topology, LandmarkOracle};

    fn mesh_setup(n: usize, seed: u64) -> (LandmarkOracle, AccessPattern, Vec<f64>) {
        let g = topology::random_connected(n, 0.15, 1.0..4.0, seed).unwrap();
        let oracle = LandmarkOracle::build(&g, (n / 6).max(2), 11).unwrap();
        let pattern = AccessPattern::random(n, 0.2..2.0, seed + 1).unwrap();
        let mu = 4.0 * pattern.total_rate() / n as f64;
        (oracle, pattern, vec![mu; n])
    }

    #[test]
    fn allocation_is_feasible_and_deterministic() {
        let (oracle, pattern, mus) = mesh_setup(36, 5);
        let cfg = HierarchicalConfig::default();
        let a = solve_hierarchical(&oracle, &pattern, &mus, 1.0, &cfg).unwrap();
        let total: f64 = a.allocation.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sums to {total}");
        assert!(a.allocation.iter().all(|&x| x >= 0.0));
        let b = solve_hierarchical(&oracle, &pattern, &mus, 1.0, &cfg).unwrap();
        for (p, q) in a.allocation.iter().zip(&b.allocation) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn refinement_never_worsens_the_estimated_cost() {
        let (oracle, pattern, mus) = mesh_setup(30, 9);
        let no_refine =
            HierarchicalConfig { max_refine_rounds: 0, ..HierarchicalConfig::default() };
        let base = solve_hierarchical(&oracle, &pattern, &mus, 1.0, &no_refine).unwrap();
        let refined =
            solve_hierarchical(&oracle, &pattern, &mus, 1.0, &HierarchicalConfig::default())
                .unwrap();
        assert!(refined.estimated_cost <= base.estimated_cost + 1e-12);
    }

    #[test]
    fn close_to_exact_on_a_small_mesh() {
        let (oracle, pattern, mus) = mesh_setup(24, 3);
        let refined =
            solve_hierarchical(&oracle, &pattern, &mus, 1.0, &HierarchicalConfig::default())
                .unwrap();
        // Exact optimum of the *estimated* problem bounds what the
        // hierarchical pipeline can achieve on it.
        let est = SingleFileProblem::from_parts(
            oracle.systemwide_access_costs(&pattern),
            pattern.total_rate(),
            mus.iter().map(|&m| Mm1Delay::new(m).unwrap()).collect(),
            1.0,
        )
        .unwrap();
        let exact = reference::solve(&est).unwrap();
        let exact_cost = est.cost_of(&exact.allocation).unwrap();
        assert!(
            refined.estimated_cost <= exact_cost * 1.05 + 1e-9,
            "hierarchical {} vs exact {exact_cost}",
            refined.estimated_cost
        );
    }

    #[test]
    fn records_refine_rounds() {
        let (oracle, pattern, mus) = mesh_setup(30, 7);
        let mut registry = fap_obs::MetricsRegistry::new();
        let cfg = HierarchicalConfig { epsilon: 1e-12, ..HierarchicalConfig::default() };
        let sol = solve_hierarchical_observed(
            &oracle, &pattern, &mus, 1.0, &cfg, &mut registry,
        )
        .unwrap();
        assert_eq!(registry.counter("hier.refine_rounds"), sol.refine_rounds as u64);
        assert!(sol.refine_rounds > 0, "tight epsilon should force refinement");
    }

    #[test]
    fn traced_solve_attributes_every_iteration_to_a_phase() {
        let (oracle, pattern, mus) = mesh_setup(30, 7);
        let cfg = HierarchicalConfig { epsilon: 1e-12, ..HierarchicalConfig::default() };
        let mut fr = fap_obs::FlightRecorder::default();
        let sol =
            solve_hierarchical_observed(&oracle, &pattern, &mus, 1.0, &cfg, &mut fr)
                .unwrap();
        assert_eq!(fr.completed_traces(), 1);
        let root = *fr.recent().next().unwrap();
        assert_eq!(root.name, "hier.solve");
        assert_eq!(
            root.dur,
            (sol.aggregate_iterations + sol.inner_iterations) as u64,
            "the root span covers exactly the iterations the stages ran"
        );
        // Self time partitions the root: leaves (aggregate + cluster
        // solves) own every tick, containers (refine rounds, the root) own
        // none — so `hier` holds it all and the partition is exact.
        let self_total: u64 = fr.layer_self_times().map(|(_, v)| v).sum();
        assert_eq!(self_total, root.dur);
        assert_eq!(fr.layer_self_time("hier"), root.dur);
        assert_eq!(fr.layer_self_time("net"), 0, "access costs are zero-width");
        assert_eq!(fr.dropped_spans(), 0);
        // Tracing never perturbs the solution.
        let untraced = solve_hierarchical(&oracle, &pattern, &mus, 1.0, &cfg).unwrap();
        assert_eq!(sol, untraced);
    }

    #[test]
    fn multilevel_depth_one_is_bit_identical_to_flat() {
        let (oracle, pattern, mus) = mesh_setup(40, 13);
        let cfg = HierarchicalConfig::default();
        let flat = solve_hierarchical(&oracle, &pattern, &mus, 1.0, &cfg).unwrap();
        let deep =
            solve_hierarchical_multilevel(&oracle, &pattern, &mus, 1.0, &cfg, 1).unwrap();
        assert_eq!(flat, deep);
        for (p, q) in flat.allocation.iter().zip(&deep.allocation) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn multilevel_rejects_zero_levels() {
        let (oracle, pattern, mus) = mesh_setup(20, 2);
        assert!(matches!(
            solve_hierarchical_multilevel(
                &oracle, &pattern, &mus, 1.0, &HierarchicalConfig::default(), 0,
            ),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn multilevel_tree_is_feasible_deterministic_and_competitive() {
        // Two landmarks over 600 nodes force ~300-member clusters, past
        // the 256-node leaf ceiling, so a 3-level solve actually splits.
        let n = 600;
        let g = topology::random_connected(n, 0.02, 1.0..4.0, 17).unwrap();
        let oracle = LandmarkOracle::build(&g, 2, 11).unwrap();
        let pattern = AccessPattern::random(n, 0.2..2.0, 18).unwrap();
        let mu = 4.0 * pattern.total_rate() / n as f64;
        let mus = vec![mu; n];
        // Scale-relative epsilon and a modest iteration cap: the default
        // absolute 1e-6 is needlessly tight at a 600-node problem scale
        // and would make this a minutes-long test.
        let cfg = HierarchicalConfig {
            epsilon: 1e-4 * pattern.total_rate(),
            max_inner_iterations: 20_000,
            max_refine_rounds: 2,
            ..HierarchicalConfig::default()
        };
        let deep =
            solve_hierarchical_multilevel(&oracle, &pattern, &mus, 1.0, &cfg, 3).unwrap();
        assert_eq!(deep.levels, 3);
        let total: f64 = deep.allocation.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sums to {total}");
        assert!(deep.allocation.iter().all(|&x| x >= 0.0));
        let again =
            solve_hierarchical_multilevel(&oracle, &pattern, &mus, 1.0, &cfg, 3).unwrap();
        for (p, q) in deep.allocation.iter().zip(&again.allocation) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        // The tree is an approximation of the flat solve, not a free
        // lunch — but it must stay in the same cost neighbourhood.
        let flat = solve_hierarchical(&oracle, &pattern, &mus, 1.0, &cfg).unwrap();
        assert!(
            deep.estimated_cost <= flat.estimated_cost * 1.25 + 1e-9,
            "tree {} vs flat {}",
            deep.estimated_cost,
            flat.estimated_cost
        );
    }

    #[test]
    fn branching_factor_is_minimal_and_covers() {
        for &(m, levels) in
            &[(300usize, 1usize), (300, 2), (1024, 1), (5000, 2), (1_000_000, 3), (513, 1)]
        {
            let b = branching_factor(m, levels);
            assert!(b >= 2);
            assert!(b.pow(levels as u32) * LEAF_MAX >= m, "b={b} m={m} t={levels}");
            if b > 2 {
                let smaller = b - 1;
                assert!(
                    smaller.pow(levels as u32) * LEAF_MAX < m,
                    "b={b} not minimal for m={m} t={levels}"
                );
            }
        }
        // Tiny member lists never get more chunks than members.
        assert!(branching_factor(3, 5) <= 3);
    }

    #[test]
    fn member_sort_orders_by_home_distance_then_index() {
        let (oracle, _pattern, _mus) = mesh_setup(30, 4);
        let members: Vec<NodeId> = (0..30).map(NodeId::new).collect();
        let order = sorted_by_home_distance(&oracle, &members);
        for w in order.windows(2) {
            let (p, q) = (members[w[0]], members[w[1]]);
            let (dp, dq) = (oracle.home_distance(p), oracle.home_distance(q));
            assert!(dp < dq || (dp == dq && p < q));
        }
    }

    #[test]
    fn rejects_mismatched_dimensions() {
        let (oracle, _pattern, mus) = mesh_setup(20, 2);
        let short = AccessPattern::uniform(10, 1.0).unwrap();
        assert!(matches!(
            solve_hierarchical(&oracle, &short, &mus, 1.0, &HierarchicalConfig::default()),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn clamp_preserves_total_and_caps() {
        let mut y = vec![0.7, 0.2, 0.1];
        let caps = vec![0.4, 0.5, 0.6];
        clamp_to_caps(&mut y, &caps);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (v, c) in y.iter().zip(&caps) {
            assert!(v <= &(c + 1e-12));
        }
    }
}
