//! The file-allocation problem of Kurose & Simha (ICDCS 1986).
//!
//! This crate assembles the network substrate (`fap-net`), the queueing
//! substrate (`fap-queue`) and the microeconomic optimization machinery
//! (`fap-econ`) into the paper's models:
//!
//! * [`SingleFileProblem`] — the §4 objective: one copy of one divisible
//!   file over `N` nodes, cost
//!   `C(x) = Σ_i (C_i + k·T_i(λ x_i)) x_i` with exact gradients and
//!   curvatures, generic over the per-node delay model (M/M/1 as in the
//!   paper, or the §5.4 M/G/1 extension) and supporting heterogeneous
//!   service rates;
//! * [`reference`] — a centralized closed-form solver (KKT water-filling)
//!   used as ground truth for the decentralized algorithm;
//! * [`baseline`] — the integral (whole-file) allocations of the classical
//!   FAP literature, against which Figure 4 argues for fragmentation;
//! * [`bound`] — the Theorem-2 step-size bound, in both the form printed in
//!   the paper and the form the appendix algebra actually yields;
//! * [`multi_file`] — the §5.4 multi-file extension with shared-queue
//!   contention and its per-file decentralized optimizer;
//! * [`query_update`] — the §5.4 query/update cost split;
//! * [`rounding`] — §8.1 record-boundary rounding of fractional allocations;
//! * [`records`] — §4's relaxation of the uniform-record-access assumption:
//!   skewed record popularity, with record-to-node assignment realizing the
//!   optimizer's access shares;
//! * [`adaptive`] — §8's adaptive "run the algorithm at night" reallocation
//!   under drifting access statistics;
//! * [`tuning`] — §8.2's "rationale for choosing the value of k": sweeps
//!   and delay-budget inversion of the communication/delay trade-off;
//! * [`market`] — the §2 price-directed view of the same problem (each node
//!   a selfish agent, a price equilibrating hosting supply), used by the
//!   price-vs-resource ablation.
//!
//! # Example
//!
//! Reproduce the headline of the paper's §6: on the symmetric 4-node ring
//! with μ = 1.5, k = 1, λ = 1, the decentralized algorithm spreads the file
//! evenly, at cost 1.8:
//!
//! ```
//! use fap_core::SingleFileProblem;
//! use fap_econ::{AllocationProblem, ResourceDirectedOptimizer, StepSize};
//! use fap_net::{topology, AccessPattern};
//!
//! let graph = topology::ring(4, 1.0)?;
//! let pattern = AccessPattern::uniform(4, 1.0)?;
//! let problem = SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0)?;
//! let solution = ResourceDirectedOptimizer::new(StepSize::Fixed(0.3))
//!     .run(&problem, &[0.8, 0.1, 0.1, 0.0])?;
//! assert!(solution.converged);
//! for x in &solution.allocation {
//!     assert!((x - 0.25).abs() < 1e-3);
//! }
//! assert!((solution.final_cost() - 1.8).abs() < 1e-3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod baseline;
pub mod bound;
pub mod error;
pub mod hierarchical;
pub mod market;
pub mod multi_file;
pub mod query_update;
pub mod records;
pub mod reference;
pub mod rounding;
pub mod single;
pub mod tuning;

pub use adaptive::AdaptiveAllocator;
pub use error::CoreError;
pub use hierarchical::{
    solve_hierarchical, solve_hierarchical_multilevel, solve_hierarchical_multilevel_observed,
    solve_hierarchical_observed, HierarchicalConfig, HierarchicalSolution,
};
pub use market::HostingMarket;
pub use multi_file::{MultiFileProblem, MultiFileScratch, MultiFileSolution};
pub use reference::ReferenceSolution;
pub use single::SingleFileProblem;
