//! Record-boundary rounding (paper §8.1).
//!
//! The converged algorithm prescribes real-valued file fractions, but "a
//! file of records cannot be divided up in this manner. The real-number
//! fractions will have to be rounded or truncated in some suitable manner so
//! that the file … will fragment at record boundaries. Naturally, the larger
//! the number of records the closer the rounded-off fractions will be to the
//! prescribed fractions and thus the closer the final allocation will be to
//! optimality."
//!
//! [`round_to_records`] implements largest-remainder apportionment of `R`
//! records to the fractional allocation, and [`rounding_penalty`] measures
//! the resulting cost increase, which vanishes as `R` grows.

use fap_queue::DelayModel;
use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::single::SingleFileProblem;

/// A record-aligned allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordAllocation {
    /// Records assigned to each node; sums to the total record count.
    pub records: Vec<usize>,
    /// Total records in the file.
    pub total_records: usize,
}

impl RecordAllocation {
    /// The realized fractional allocation `records_i / total`.
    pub fn fractions(&self) -> Vec<f64> {
        self.records.iter().map(|&r| r as f64 / self.total_records as f64).collect()
    }
}

/// Rounds a fractional allocation to `total_records` records by the
/// largest-remainder method: each node first receives `⌊x_i · R⌋` records,
/// then the leftover records go to the nodes with the largest fractional
/// remainders. The result is the record-aligned allocation closest to `x`
/// in the max-norm among all that preserve the floor.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `total_records` is zero or
/// `x` is not a non-negative vector summing to 1 (within `1e-6`).
pub fn round_to_records(x: &[f64], total_records: usize) -> Result<RecordAllocation, CoreError> {
    if total_records == 0 {
        return Err(CoreError::InvalidParameter("total_records must be positive".into()));
    }
    let sum: f64 = x.iter().sum();
    if x.is_empty() || x.iter().any(|v| !v.is_finite() || *v < -1e-12) || (sum - 1.0).abs() > 1e-6
    {
        return Err(CoreError::InvalidParameter(format!(
            "allocation must be non-negative and sum to 1, got sum {sum}"
        )));
    }
    let r = total_records as f64;
    let mut records: Vec<usize> = x.iter().map(|v| (v.max(0.0) * r).floor() as usize).collect();
    let assigned: usize = records.iter().sum();
    let mut leftover = total_records - assigned.min(total_records);
    // Hand out leftovers by decreasing fractional remainder (ties by index
    // for determinism).
    let mut order: Vec<usize> = (0..x.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = x[a].max(0.0) * r - (x[a].max(0.0) * r).floor();
        let rb = x[b].max(0.0) * r - (x[b].max(0.0) * r).floor();
        rb.total_cmp(&ra).then(a.cmp(&b))
    });
    for &i in order.iter().cycle().take(x.len().max(leftover)) {
        if leftover == 0 {
            break;
        }
        records[i] += 1;
        leftover -= 1;
    }
    Ok(RecordAllocation { records, total_records })
}

/// The relative cost increase of rounding: `(C(rounded) − C(x)) / C(x)`.
///
/// # Errors
///
/// Propagates rounding errors and evaluation errors (e.g. if rounding
/// overloads a node that was exactly at capacity).
pub fn rounding_penalty<D: DelayModel>(
    problem: &SingleFileProblem<D>,
    x: &[f64],
    total_records: usize,
) -> Result<f64, CoreError> {
    let rounded = round_to_records(x, total_records)?;
    let base = problem.cost_of(x)?;
    let cost = problem.cost_of(&rounded.fractions())?;
    Ok((cost - base) / base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_net::{topology, AccessPattern};
    use proptest::prelude::*;

    #[test]
    fn exact_fractions_round_losslessly() {
        let r = round_to_records(&[0.25, 0.25, 0.25, 0.25], 8).unwrap();
        assert_eq!(r.records, vec![2, 2, 2, 2]);
        assert_eq!(r.fractions(), vec![0.25; 4]);
    }

    #[test]
    fn leftovers_go_to_largest_remainders() {
        // 10 records at (0.46, 0.34, 0.2): floors (4, 3, 2) leave one
        // leftover, which belongs to node 0 (remainder 0.6 vs 0.4 vs 0.0).
        let r = round_to_records(&[0.46, 0.34, 0.2], 10).unwrap();
        assert_eq!(r.records, vec![5, 3, 2]);
    }

    #[test]
    fn total_is_always_preserved() {
        let r = round_to_records(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0], 100).unwrap();
        assert_eq!(r.records.iter().sum::<usize>(), 100);
    }

    #[test]
    fn validates_inputs() {
        assert!(round_to_records(&[0.5, 0.5], 0).is_err());
        assert!(round_to_records(&[0.7, 0.7], 10).is_err());
        assert!(round_to_records(&[1.2, -0.2], 10).is_err());
        assert!(round_to_records(&[], 10).is_err());
    }

    #[test]
    fn penalty_shrinks_with_more_records() {
        // §8.1: more records ⇒ closer to the prescribed fractions.
        let graph = topology::ring(4, 1.0).unwrap();
        let pattern = AccessPattern::zipf(4, 1.0, 1.0).unwrap();
        let p = SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).unwrap();
        let x = crate::reference::solve(&p).unwrap().allocation;
        let coarse = rounding_penalty(&p, &x, 7).unwrap();
        let fine = rounding_penalty(&p, &x, 10_000).unwrap();
        assert!(coarse >= -1e-12, "rounding an optimum cannot reduce cost: {coarse}");
        assert!(fine >= -1e-12);
        assert!(fine < coarse.max(1e-9), "fine {fine} vs coarse {coarse}");
        assert!(fine < 1e-5);
    }

    proptest! {
        /// Rounding conserves records, keeps every node within one record of
        /// `x_i·R` (largest-remainder quota property), and is deterministic.
        #[test]
        fn rounding_invariants(
            raw in proptest::collection::vec(0.01f64..1.0, 2..10),
            records in 1usize..500,
        ) {
            let sum: f64 = raw.iter().sum();
            let x: Vec<f64> = raw.iter().map(|v| v / sum).collect();
            let r = round_to_records(&x, records).unwrap();
            prop_assert_eq!(r.records.iter().sum::<usize>(), records);
            for (i, &ri) in r.records.iter().enumerate() {
                let quota = x[i] * records as f64;
                prop_assert!((ri as f64 - quota).abs() <= 1.0 + 1e-9,
                    "node {} got {} records for quota {}", i, ri, quota);
            }
            let again = round_to_records(&x, records).unwrap();
            prop_assert_eq!(r, again);
        }
    }
}
