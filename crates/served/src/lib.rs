//! # fap-served — the persistent serving daemon
//!
//! `fap serve` is one-shot: it builds a cost-matrix cache, serves one
//! batch, and exits — every batch pays the warm-up again. This crate is
//! the long-lived counterpart: a [`Daemon`] that accepts newline-delimited
//! JSON envelopes on any line source, keeps the expensive state alive
//! *between* batches, and streams one JSON line per outcome:
//!
//! * the [`SubstrateCache`] persists, so a topology seen in batch 1 is a
//!   `cache.hit` (dense matrix) or `cache.landmark_hit` (landmark oracle)
//!   in every later batch (the dense side bounded by an optional byte
//!   budget with FIFO eviction);
//! * warm-start state persists per [`WarmMode`]: `batch` (the default)
//!   chains within each batch exactly like one-shot
//!   `fap serve --warm-start`, `session` additionally carries each chain's
//!   converged allocation across batches through
//!   [`SessionSeeds`](fap_serve::SessionSeeds), and `off` serves cold;
//! * the work-stealing [`BatchServer`] is constructed once and reused.
//!
//! ## The virtual clock and admission control
//!
//! The daemon runs on the same deterministic virtual clock as the chaos
//! simulator — a [`Reactor`] over integer ticks. Every envelope carries an
//! `at` tick (monotone; the reactor clamps the past); batches occupy one
//! of `c` virtual servers for `max(1, total solver iterations)` ticks, and
//! scripted `work` items for exactly their requested ticks. Arrivals drain
//! due completions first, so the whole session — responses, metrics,
//! shedding decisions — is a pure function of the input lines.
//!
//! On top of that clock sits the paper's own §4 queueing theory, turned on
//! the daemon itself: an [`AdmissionController`] fits an M/M/c model to
//! the *measured* inter-arrival and service ticks and predicts the mean
//! queueing wait `W_q = C(c, λ/μ)/(cμ − λ)` an arrival would see. When a
//! configured bound is exceeded the daemon sheds the request with a
//! 429-style line instead of queueing it — the microeconomic answer to
//! overload: refuse service whose price (wait) exceeds its worth.
//!
//! ## Protocol
//!
//! Input, one JSON object per line:
//!
//! ```text
//! {"at": 0, "batch": [ ...serve specs... ]}   submit a batch at tick 0
//! {"at": 7, "work": 12}                        occupy a server for 12 ticks
//! {"cmd": "status"}                            emit a status line
//! {"cmd": "metrics"}                           emit wait quantiles + layer self time
//! {"cmd": "shutdown"}                          drain and exit
//! ```
//!
//! Output, one JSON object per line (`kind` discriminates):
//!
//! ```text
//! {"id":0,"kind":"batch","arrived":0,"started":0,"completed":412,"wait":0,
//!  "ok":2,"err":0,"responses":[...]}
//! {"id":1,"kind":"work","arrived":7,"started":7,"completed":19,"wait":0}
//! {"id":2,"kind":"shed","status":429,"arrived":9,"predicted_wait":31.5,"bound":8.0}
//! {"kind":"status","now":19,...}
//! {"kind":"error","message":"..."}
//! ```
//!
//! The *content* of a batch line's `responses` is bit-identical to the
//! one-shot `fap serve` path with the same warm flag: a cached cost matrix
//! is the same bits Dijkstra would recompute, and `batch` warm mode arms
//! no cross-batch seeds.
//!
//! Batch syntax is pluggable through [`BatchParser`], so this crate stays
//! independent of the CLI's scenario format (the CLI supplies a parser
//! that understands its `ServeSpec` list; tests supply their own).
//!
//! ## Tracing
//!
//! Tracing is always on and always bounded: every accepted arrival mints a
//! `served.request` root span at ingestion (so cache hit/miss marker spans
//! attach to the request that caused them), gets a `served.queue` child
//! covering its wait, and either a `served.work` child or the serve
//! layer's synthesized `serve.batch` span tree for the solve. Shed
//! arrivals complete as zero-duration traces with a `served.shed` marker.
//! Span events are teed both to the caller's recorder (so a JSONL metrics
//! export replays offline under `fap trace`) and to an internal
//! [`FlightRecorder`] whose ring buffer and slowest-k tail sampling keep
//! memory bounded forever; `{"cmd":"metrics"}` reports its per-layer self
//! time alongside wait quantiles. Because all span timestamps are virtual
//! ticks derived from solver iteration counts, traced output — including
//! the span stream itself — is bit-identical run to run and identical at
//! every shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::time::Instant;

use serde::{Serialize, Value};

use fap_batch::Parallelism;
use fap_cache::SubstrateCache;
use fap_obs::{
    emit_span, emit_span_end, emit_span_start, FlightRecorder, MetricsRegistry, Recorder,
    Tee, TraceContext,
};
use fap_queue::{
    AdmissionController, QueueError, DEFAULT_ADMISSION_WARMUP, DEFAULT_ADMISSION_WINDOW,
};
use fap_runtime::Reactor;
use fap_serve::{BatchServer, ServeRequest, SessionSeeds};

/// How warm-start state behaves across the daemon's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmMode {
    /// Serve every batch cold (no chaining at all).
    Off,
    /// Chain within each batch only — bit-identical to one-shot
    /// `fap serve --warm-start` per batch. The default.
    #[default]
    Batch,
    /// Chain within batches *and* seed each chain's head from the previous
    /// batch's converged tail ([`SessionSeeds`]).
    Session,
}

impl WarmMode {
    /// Parses `off` / `batch` / `session`.
    ///
    /// # Errors
    ///
    /// Returns the offending string for anything else.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "off" => Ok(WarmMode::Off),
            "batch" => Ok(WarmMode::Batch),
            "session" => Ok(WarmMode::Session),
            other => Err(format!("unknown warm mode '{other}' (expected off|batch|session)")),
        }
    }
}

/// Turns one envelope's `batch` value into solver-level requests. The
/// daemon resolves batch *syntax* through this trait so the wire format
/// stays a caller decision; the cache handed in is the daemon's persistent
/// [`SubstrateCache`] (dense cost matrices and landmark oracles side by
/// side), and hits/misses are recorded into `recorder`.
pub trait BatchParser {
    /// Parses `batch` (the envelope's `batch` field) into requests.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message; the daemon reports it on an
    /// `error` line and drops the envelope without occupying a server.
    fn parse(
        &mut self,
        batch: &Value,
        cache: &mut SubstrateCache,
        recorder: &mut dyn Recorder,
    ) -> Result<Vec<ServeRequest>, String>;
}

impl<F> BatchParser for F
where
    F: FnMut(&Value, &mut SubstrateCache, &mut dyn Recorder) -> Result<Vec<ServeRequest>, String>,
{
    fn parse(
        &mut self,
        batch: &Value,
        cache: &mut SubstrateCache,
        recorder: &mut dyn Recorder,
    ) -> Result<Vec<ServeRequest>, String> {
        self(batch, cache, recorder)
    }
}

/// Static configuration of a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Shard pool handed to the [`BatchServer`].
    pub shards: Parallelism,
    /// Virtual service slots `c` for queueing and the M/M/c model.
    pub servers: u32,
    /// Warm-start behavior across batches.
    pub warm: WarmMode,
    /// Shed arrivals whose predicted mean wait exceeds this bound (ticks).
    /// `None` disables shedding.
    pub admission_bound: Option<f64>,
    /// Samples required before the admission model predicts.
    pub admission_warmup: u64,
    /// Sliding-window length of the admission rate estimators (most
    /// recent samples kept; the model forgets a workload shift after this
    /// many observations).
    pub admission_window: usize,
    /// Byte budget for the persistent cost-matrix cache (`None` =
    /// unbounded).
    pub cache_bytes: Option<u64>,
    /// Use wall-clock milliseconds instead of scripted `at` ticks.
    pub wall_clock: bool,
    /// Let the substrate cache repair cached landmark oracles across
    /// small topology edits (incremental dirty-frontier update) instead
    /// of rebuilding from scratch. This is what keeps a
    /// [`WarmMode::Session`] cache warm when the served topology drifts
    /// by an edge re-price or a node join/leave between batches.
    pub oracle_update: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            shards: Parallelism::Auto,
            servers: 1,
            warm: WarmMode::Batch,
            admission_bound: None,
            admission_warmup: DEFAULT_ADMISSION_WARMUP,
            admission_window: DEFAULT_ADMISSION_WINDOW,
            cache_bytes: None,
            wall_clock: false,
            oracle_update: false,
        }
    }
}

/// What [`Daemon::handle_line`] tells the caller to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonStatus {
    /// Keep feeding lines.
    Continue,
    /// A `shutdown` command was processed (the daemon already drained);
    /// stop feeding lines.
    Shutdown,
}

/// A job waiting for a free virtual server.
#[derive(Debug)]
struct Pending {
    id: u64,
    arrived: usize,
    kind: PendingKind,
    /// The request's trace root, minted at ingestion (`span_start` already
    /// emitted); [`Daemon::start`] attaches the queue/solve children and
    /// the root's `span_end` at the completion tick.
    trace: TraceContext,
}

#[derive(Debug)]
enum PendingKind {
    Batch(Vec<ServeRequest>),
    Work(usize),
}

/// A scheduled service completion: the fully rendered output line (the
/// completion tick is known at start time) plus the bookkeeping the
/// completion handler feeds back into the admission model.
#[derive(Debug)]
struct Completion {
    line: String,
    duration: usize,
    wait: usize,
}

/// The persistent serving daemon. See the crate docs for the protocol.
#[derive(Debug)]
pub struct Daemon<P> {
    parser: P,
    server: BatchServer,
    warm: WarmMode,
    cache: SubstrateCache,
    seeds: SessionSeeds,
    admission: AdmissionController,
    bound: Option<f64>,
    reactor: Reactor<Completion>,
    /// The input clock: the latest arrival tick seen. The reactor's own
    /// clock only advances when completions pop, so arrivals clamp against
    /// this instead (monotone input, no time travel).
    clock: usize,
    backlog: VecDeque<Pending>,
    busy: u32,
    servers: u32,
    next_id: u64,
    completed: u64,
    shed: u64,
    epoch: Option<Instant>,
    /// The daemon's own session metrics: every line's instrumentation is
    /// teed here as well as to the caller's recorder, so `status` and
    /// `metrics` lines can report steal counts and wait quantiles without
    /// owning the caller's sink.
    obs: MetricsRegistry,
    /// Always-on bounded tracing: every request becomes a `served.request`
    /// trace here (and, via the tee, in the caller's event stream).
    flight: FlightRecorder,
}

impl<P: BatchParser> Daemon<P> {
    /// Builds a daemon around `parser` with `config`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::InvalidParameter`] for zero servers.
    pub fn new(parser: P, config: &DaemonConfig) -> Result<Self, QueueError> {
        let admission = AdmissionController::new(config.servers)?
            .with_warmup(config.admission_warmup)
            .with_window(config.admission_window);
        let mut cache = SubstrateCache::new();
        cache.set_byte_limit(config.cache_bytes);
        Ok(Daemon {
            parser,
            server: BatchServer::new(config.shards)
                .with_warm_start(config.warm != WarmMode::Off),
            warm: config.warm,
            cache,
            seeds: SessionSeeds::new(),
            admission,
            bound: config.admission_bound,
            reactor: Reactor::new(),
            clock: 0,
            backlog: VecDeque::new(),
            busy: 0,
            servers: config.servers,
            next_id: 0,
            completed: 0,
            shed: 0,
            epoch: config.wall_clock.then(Instant::now),
            obs: MetricsRegistry::new(),
            flight: FlightRecorder::default(),
        })
    }

    /// The current virtual tick (the later of the input clock and the
    /// last completion).
    pub fn now(&self) -> usize {
        self.clock.max(self.reactor.now())
    }

    /// Jobs completed so far (batches and work items, not shed lines).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Arrivals shed by the admission controller so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// The persistent cost-substrate cache (for inspection).
    pub fn cache(&self) -> &SubstrateCache {
        &self.cache
    }

    /// The daemon's always-on flight recorder: recently completed request
    /// traces, the tail-sampled slowest traces, and per-layer self time.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The daemon's own session metrics registry (every line's
    /// instrumentation lands here as well as in the caller's recorder).
    pub fn session_metrics(&self) -> &MetricsRegistry {
        &self.obs
    }

    /// Feeds the daemon one input line and writes any output lines due at
    /// or before the line's tick. Blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Only I/O errors from `out` propagate; malformed input is reported
    /// on an `error` output line and the daemon continues.
    pub fn handle_line(
        &mut self,
        line: &str,
        out: &mut dyn Write,
        recorder: &mut dyn Recorder,
    ) -> io::Result<DaemonStatus> {
        // The daemon's own sinks are moved out for the line so they can sit
        // on one side of a `Tee` while `self` methods run on the other —
        // the borrow checker cannot split fields across a `&mut self` call.
        let mut obs = std::mem::take(&mut self.obs);
        let mut flight = std::mem::take(&mut self.flight);
        let result = self.handle_line_inner(line, out, &mut obs, &mut flight, recorder);
        self.obs = obs;
        self.flight = flight;
        result
    }

    fn handle_line_inner(
        &mut self,
        line: &str,
        out: &mut dyn Write,
        obs: &mut MetricsRegistry,
        flight: &mut FlightRecorder,
        recorder: &mut dyn Recorder,
    ) -> io::Result<DaemonStatus> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(DaemonStatus::Continue);
        }
        {
            let mut ext = Tee::new(&mut *obs, &mut *recorder);
            let mut tee = Tee::new(&mut *flight, &mut ext);
            tee.incr("served.lines", 1);
        }
        let value = match serde_json::parse_value(line) {
            Ok(v) => v,
            Err(e) => {
                let mut ext = Tee::new(&mut *obs, &mut *recorder);
                let mut tee = Tee::new(&mut *flight, &mut ext);
                return self.error_line(out, &mut tee, None, &format!("bad JSON: {e}"));
            }
        };
        if let Some(cmd) = value.get("cmd") {
            return match cmd {
                Value::Str(c) if c == "shutdown" => {
                    {
                        let mut ext = Tee::new(&mut *obs, &mut *recorder);
                        let mut tee = Tee::new(&mut *flight, &mut ext);
                        self.drain_completions(out, &mut tee)?;
                    }
                    debug_assert!(self.backlog.is_empty(), "backlog drains as servers free");
                    let line = self.status_line(obs);
                    writeln!(out, "{line}")?;
                    Ok(DaemonStatus::Shutdown)
                }
                Value::Str(c) if c == "status" => {
                    let line = self.status_line(obs);
                    writeln!(out, "{line}")?;
                    Ok(DaemonStatus::Continue)
                }
                Value::Str(c) if c == "metrics" => {
                    let line = self.metrics_line(obs, flight);
                    writeln!(out, "{line}")?;
                    Ok(DaemonStatus::Continue)
                }
                other => {
                    let msg = format!("unknown cmd {}", serde_json::to_string(other).unwrap_or_default());
                    let mut ext = Tee::new(&mut *obs, &mut *recorder);
                    let mut tee = Tee::new(&mut *flight, &mut ext);
                    self.error_line(out, &mut tee, None, &msg)
                }
            };
        }
        let mut ext = Tee::new(&mut *obs, &mut *recorder);
        let mut tee = Tee::new(&mut *flight, &mut ext);
        let recorder: &mut dyn Recorder = &mut tee;
        let at = match self.arrival_tick(&value) {
            Ok(at) => at,
            Err(msg) => return self.error_line(out, recorder, None, &msg),
        };
        self.clock = at;
        self.advance_to(at, out, recorder)?;

        let id = self.next_id;
        self.next_id += 1;
        self.admission.record_arrival(at as u64);
        let predicted = self.admission.predicted_wait();
        if let Some(w) = predicted {
            recorder.gauge("served.predicted_wait", w);
        }
        if let (Some(bound), Some(w)) = (self.bound, predicted) {
            if w > bound {
                self.shed += 1;
                recorder.incr("served.shed", 1);
                // A shed request is still a (zero-duration) trace: the
                // flight recorder and any export see the refusal.
                recorder.set_time(at as u64);
                let first = recorder.reserve_span_ids(2);
                let root = TraceContext::root(first);
                emit_span_start(recorder, "served.request", root, at as u64);
                emit_span(recorder, "served.shed", root.child(first + 1), at as u64, at as u64);
                emit_span_end(recorder, "served.request", root, at as u64, 0);
                let line = render(&[
                    ("id", Value::UInt(id)),
                    ("kind", Value::Str("shed".into())),
                    ("status", Value::Int(429)),
                    ("arrived", uint(at)),
                    ("predicted_wait", finite_or_inf(w)),
                    ("bound", Value::Float(bound)),
                ]);
                writeln!(out, "{line}")?;
                return Ok(DaemonStatus::Continue);
            }
        }

        // Mint the request's trace at ingestion and install it as the
        // current context for the parse, so substrate spans (cache hits
        // and misses) attach as children at the arrival tick.
        recorder.set_time(at as u64);
        let trace = TraceContext::root(recorder.reserve_span_ids(1));
        emit_span_start(recorder, "served.request", trace, at as u64);
        recorder.set_current_trace(Some(trace));
        let kind = if let Some(batch) = value.get("batch") {
            self.parser.parse(batch, &mut self.cache, recorder).map(PendingKind::Batch)
        } else if let Some(work) = value.get("work") {
            as_tick(work)
                .map(|t| PendingKind::Work(t.max(1)))
                .ok_or_else(|| "'work' must be a non-negative integer tick count".to_string())
        } else {
            Err("envelope needs 'batch', 'work' or 'cmd'".to_string())
        };
        recorder.set_current_trace(None);
        let kind = match kind {
            Ok(kind) => kind,
            Err(msg) => {
                // Close the trace zero-width so every minted root completes.
                emit_span_end(recorder, "served.request", trace, at as u64, 0);
                return self.error_line(out, recorder, Some(id), &msg);
            }
        };

        self.dispatch(Pending { id, arrived: at, kind, trace }, recorder);
        Ok(DaemonStatus::Continue)
    }

    /// Runs the daemon over a whole line source: every line through
    /// [`Daemon::handle_line`], then a drain at EOF (an explicit
    /// `shutdown` line drains too and stops early).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `input` and `out`.
    pub fn run<R: BufRead>(
        &mut self,
        input: R,
        out: &mut dyn Write,
        recorder: &mut dyn Recorder,
    ) -> io::Result<()> {
        for line in input.lines() {
            if self.handle_line(&line?, out, recorder)? == DaemonStatus::Shutdown {
                return Ok(());
            }
        }
        self.finish(out, recorder)
    }

    /// Drains every queued and in-flight job, emitting their lines, then a
    /// final `status` line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn finish(
        &mut self,
        out: &mut dyn Write,
        recorder: &mut dyn Recorder,
    ) -> io::Result<()> {
        let mut obs = std::mem::take(&mut self.obs);
        let mut flight = std::mem::take(&mut self.flight);
        let drained = {
            let mut ext = Tee::new(&mut obs, recorder);
            let mut tee = Tee::new(&mut flight, &mut ext);
            self.drain_completions(out, &mut tee)
        };
        self.obs = obs;
        self.flight = flight;
        drained?;
        debug_assert!(self.backlog.is_empty(), "backlog drains as servers free");
        let line = self.status_line(&self.obs);
        writeln!(out, "{line}")?;
        Ok(())
    }

    /// Pops every remaining completion, emitting its line.
    fn drain_completions(
        &mut self,
        out: &mut dyn Write,
        recorder: &mut dyn Recorder,
    ) -> io::Result<()> {
        while let Some(completion) = self.reactor.pop_next() {
            let tick = self.reactor.now();
            self.complete(tick, completion, out, recorder)?;
        }
        Ok(())
    }

    /// The arrival tick of an envelope: scripted `at` in virtual mode,
    /// elapsed milliseconds in wall mode. Always clamped monotone.
    fn arrival_tick(&self, value: &Value) -> Result<usize, String> {
        let at = match &self.epoch {
            Some(epoch) => epoch.elapsed().as_millis() as usize,
            None => match value.get("at") {
                Some(v) => as_tick(v)
                    .ok_or_else(|| "'at' must be a non-negative integer tick".to_string())?,
                None => return Err("envelope needs an 'at' tick (virtual clock)".into()),
            },
        };
        Ok(at.max(self.clock))
    }

    /// Pops and handles every completion due at or before `at`.
    fn advance_to(
        &mut self,
        at: usize,
        out: &mut dyn Write,
        recorder: &mut dyn Recorder,
    ) -> io::Result<()> {
        while self.reactor.next_tick().is_some_and(|t| t <= at) {
            let completion = self.reactor.pop_next().expect("next_tick promised an event");
            let tick = self.reactor.now();
            self.complete(tick, completion, out, recorder)?;
        }
        Ok(())
    }

    /// Starts `pending` at its arrival tick if a server is free, else
    /// queues it FIFO. (All completions at or before the arrival were
    /// drained first, so a free server means a zero-wait start.)
    fn dispatch(&mut self, pending: Pending, recorder: &mut dyn Recorder) {
        if self.busy < self.servers {
            let started = pending.arrived;
            self.start(pending, started, recorder);
        } else {
            self.backlog.push_back(pending);
        }
    }

    /// Occupies a server: solves the job, renders its output line (the
    /// completion tick is `started + duration`, known now), and schedules
    /// the completion on the reactor.
    fn start(&mut self, pending: Pending, started: usize, recorder: &mut dyn Recorder) {
        self.busy += 1;
        let Pending { id, arrived, kind, trace } = pending;
        let wait = started - arrived;
        // The queue child spans [arrived, started] — zero width on an
        // immediate start, the observed wait otherwise.
        let qid = recorder.reserve_span_ids(1);
        emit_span(recorder, "served.queue", trace.child(qid), arrived as u64, started as u64);
        let (duration, line) = match kind {
            PendingKind::Work(ticks) => {
                recorder.incr("served.work", 1);
                let completed = started + ticks;
                let wid = recorder.reserve_span_ids(1);
                emit_span(
                    recorder,
                    "served.work",
                    trace.child(wid),
                    started as u64,
                    completed as u64,
                );
                let line = render(&[
                    ("id", Value::UInt(id)),
                    ("kind", Value::Str("work".into())),
                    ("arrived", uint(arrived)),
                    ("started", uint(started)),
                    ("completed", uint(completed)),
                    ("wait", uint(wait)),
                ]);
                (ticks, line)
            }
            PendingKind::Batch(requests) => {
                recorder.incr("served.batches", 1);
                // The serve layer synthesizes its `serve.batch` span tree
                // as a child of the installed request context, starting at
                // the recorder's current tick.
                recorder.set_time(started as u64);
                recorder.set_current_trace(Some(trace));
                let output = match self.warm {
                    WarmMode::Session => {
                        self.server.serve_session_observed(&requests, &mut self.seeds, recorder)
                    }
                    _ => self.server.serve_observed(&requests, recorder),
                };
                recorder.set_current_trace(None);
                let iterations: usize = output
                    .responses
                    .iter()
                    .filter_map(|r| r.as_ref().ok().map(|x| x.iterations()))
                    .sum();
                let duration = iterations.max(1);
                let completed = started + duration;
                let responses: Vec<Value> = output
                    .responses
                    .iter()
                    .map(|r| match r {
                        Ok(response) => response.serialize_value(),
                        Err(e) => Value::Map(vec![(
                            "error".into(),
                            Value::Str(e.message().into()),
                        )]),
                    })
                    .collect();
                let line = render(&[
                    ("id", Value::UInt(id)),
                    ("kind", Value::Str("batch".into())),
                    ("arrived", uint(arrived)),
                    ("started", uint(started)),
                    ("completed", uint(completed)),
                    ("wait", uint(wait)),
                    ("ok", Value::UInt(output.ok_count() as u64)),
                    ("err", Value::UInt(output.err_count() as u64)),
                    ("responses", Value::Array(responses)),
                ]);
                (duration, line)
            }
        };
        let completed = started + duration;
        emit_span_end(
            recorder,
            "served.request",
            trace,
            completed as u64,
            (completed - arrived) as u64,
        );
        self.reactor.schedule(completed, Completion { line, duration, wait });
    }

    /// Handles one service completion: frees the server, feeds the
    /// admission model, emits the job's line, and starts the next queued
    /// job (at the completion tick) if any.
    fn complete(
        &mut self,
        tick: usize,
        completion: Completion,
        out: &mut dyn Write,
        recorder: &mut dyn Recorder,
    ) -> io::Result<()> {
        self.busy -= 1;
        self.completed += 1;
        self.admission.record_service(completion.duration as f64);
        recorder.observe("served.wait", completion.wait as f64);
        recorder.observe_sketch("served.wait", completion.wait as f64);
        writeln!(out, "{}", completion.line)?;
        if self.busy < self.servers {
            if let Some(pending) = self.backlog.pop_front() {
                self.start(pending, tick, recorder);
            }
        }
        Ok(())
    }

    fn status_line(&self, obs: &MetricsRegistry) -> String {
        let predicted = match self.admission.predicted_wait() {
            Some(w) => finite_or_inf(w),
            None => Value::Null,
        };
        render(&[
            ("kind", Value::Str("status".into())),
            ("now", uint(self.now())),
            ("busy", Value::UInt(u64::from(self.busy))),
            ("backlog", uint(self.backlog.len())),
            ("completed", Value::UInt(self.completed)),
            ("shed", Value::UInt(self.shed)),
            ("seeds", uint(self.seeds.len())),
            ("cache_entries", uint(self.cache.dense().len() + self.cache.landmarks().len())),
            ("cache_hits", Value::UInt(self.cache.dense().hits() + self.cache.landmarks().hits())),
            ("cache_misses", Value::UInt(self.cache.dense().misses() + self.cache.landmarks().misses())),
            ("cache_bytes", Value::UInt(self.cache.dense().bytes() + self.cache.landmarks().bytes())),
            ("steals", Value::UInt(obs.counter("serve.steals"))),
            ("predicted_wait", predicted),
        ])
    }

    /// The `{"cmd":"metrics"}` line: session wait quantiles from the
    /// daemon's own [`QuantileSketch`](fap_obs::QuantileSketch), per-layer
    /// self-time from the flight recorder, and trace totals.
    fn metrics_line(&self, obs: &MetricsRegistry, flight: &FlightRecorder) -> String {
        let (p50, p90, p99) = match obs.sketch("served.wait") {
            Some(s) if s.count() > 0 => {
                (s.quantile(0.5), s.quantile(0.9), s.quantile(0.99))
            }
            _ => (0.0, 0.0, 0.0),
        };
        let layers: Vec<(String, Value)> = flight
            .layer_self_times()
            .map(|(layer, ticks)| (layer.to_string(), Value::UInt(ticks)))
            .collect();
        render(&[
            ("kind", Value::Str("metrics".into())),
            ("now", uint(self.now())),
            ("completed", Value::UInt(self.completed)),
            ("shed", Value::UInt(self.shed)),
            ("steals", Value::UInt(obs.counter("serve.steals"))),
            ("wait_p50", Value::Float(p50)),
            ("wait_p90", Value::Float(p90)),
            ("wait_p99", Value::Float(p99)),
            ("self_ticks", Value::Map(layers)),
            ("traces", Value::UInt(flight.completed_traces())),
            ("spans_dropped", Value::UInt(flight.dropped_spans())),
        ])
    }

    fn error_line(
        &mut self,
        out: &mut dyn Write,
        recorder: &mut dyn Recorder,
        id: Option<u64>,
        message: &str,
    ) -> io::Result<DaemonStatus> {
        recorder.incr("served.errors", 1);
        let mut fields = vec![("kind", Value::Str("error".into()))];
        if let Some(id) = id {
            fields.push(("id", Value::UInt(id)));
        }
        fields.push(("message", Value::Str(message.into())));
        let line = render(&fields);
        writeln!(out, "{line}")?;
        Ok(DaemonStatus::Continue)
    }
}

fn uint(n: usize) -> Value {
    Value::UInt(n as u64)
}

/// JSON has no infinity literal: an unbounded predicted wait renders as
/// the string `"inf"`.
fn finite_or_inf(w: f64) -> Value {
    if w.is_finite() {
        Value::Float(w)
    } else {
        Value::Str("inf".into())
    }
}

/// Reads a non-negative integer tick out of a JSON value.
fn as_tick(value: &Value) -> Option<usize> {
    match value {
        Value::Int(i) if *i >= 0 => Some(*i as usize),
        Value::UInt(u) => Some(*u as usize),
        _ => None,
    }
}

/// Renders an insertion-ordered field list as one JSON object line.
fn render(fields: &[(&str, Value)]) -> String {
    let map = Value::Map(
        fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
    );
    serde_json::to_string(&map).expect("value trees always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_core::SingleFileProblem;
    use fap_net::{topology, AccessPattern};
    use fap_obs::MetricsRegistry;

    /// A test parser: `batch` is an array of seeds, each becoming one
    /// single-file request over a shared 5-ring (every batch after the
    /// first hits the daemon's cache).
    fn seed_parser(
    ) -> impl FnMut(&Value, &mut SubstrateCache, &mut dyn Recorder) -> Result<Vec<ServeRequest>, String>
    {
        |batch, cache, recorder| {
            let Value::Array(items) = batch else {
                return Err("batch must be an array".into());
            };
            let graph = topology::ring(5, 1.0).map_err(|e| e.to_string())?;
            let costs = cache
                .dense_mut()
                .get_or_compute_observed(&graph, Parallelism::Sequential, recorder)
                .map_err(|e| e.to_string())?;
            items
                .iter()
                .map(|item| {
                    let seed = as_tick(item).ok_or("seeds must be integers")? as u64;
                    let pattern =
                        AccessPattern::random(5, 0.2..0.6, seed).map_err(|e| e.to_string())?;
                    let problem = SingleFileProblem::mm1_with_costs(costs, &pattern, 4.0, 1.0)
                        .map_err(|e| e.to_string())?;
                    Ok(ServeRequest::SingleFile {
                        problem,
                        initial: vec![0.2; 5],
                        alpha: 0.1,
                        epsilon: 1e-6,
                        max_iterations: 100_000,
                        topology: None,
                    })
                })
                .collect()
        }
    }

    fn daemon(config: &DaemonConfig) -> Daemon<impl BatchParser> {
        Daemon::new(seed_parser(), config).unwrap()
    }

    fn drive(daemon: &mut Daemon<impl BatchParser>, lines: &[&str]) -> (String, MetricsRegistry) {
        let mut out = Vec::new();
        let mut registry = MetricsRegistry::new();
        let input = lines.join("\n");
        daemon.run(input.as_bytes(), &mut out, &mut registry).unwrap();
        (String::from_utf8(out).unwrap(), registry)
    }

    #[test]
    fn a_session_is_deterministic_byte_for_byte() {
        let lines =
            ["{\"at\":0,\"batch\":[1,2]}", "{\"at\":5,\"batch\":[3]}", "{\"cmd\":\"shutdown\"}"];
        let config = DaemonConfig::default();
        let (a, _) = drive(&mut daemon(&config), &lines);
        let (b, _) = drive(&mut daemon(&config), &lines);
        assert_eq!(a, b);
        assert!(a.lines().count() >= 3, "two batch lines and a status line");
    }

    #[test]
    fn cache_hits_rise_after_the_first_batch() {
        let config = DaemonConfig::default();
        let mut d = daemon(&config);
        let (_, registry) = drive(
            &mut d,
            &["{\"at\":0,\"batch\":[1]}", "{\"at\":1000,\"batch\":[2]}", "{\"at\":2000,\"batch\":[3]}"],
        );
        assert_eq!(registry.counter("cache.miss"), 1, "one distinct topology");
        assert_eq!(registry.counter("cache.hit"), 2, "later batches reuse it");
        assert_eq!(registry.counter("served.batches"), 3);
    }

    #[test]
    fn work_items_queue_fifo_on_one_server_and_waits_are_recorded() {
        let mut d = daemon(&DaemonConfig::default());
        let (out, registry) = drive(
            &mut d,
            &[
                "{\"at\":0,\"work\":10}",
                "{\"at\":2,\"work\":5}",
                "{\"cmd\":\"shutdown\"}",
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        // First job: 0..10; second arrives at 2, waits 8, runs 10..15.
        assert!(lines[0].contains("\"id\":0") && lines[0].contains("\"completed\":10"));
        assert!(
            lines[1].contains("\"started\":10")
                && lines[1].contains("\"completed\":15")
                && lines[1].contains("\"wait\":8"),
            "{}",
            lines[1]
        );
        let wait = registry.histogram("served.wait").unwrap();
        assert_eq!(wait.count(), 2);
        let sketch = registry.sketch("served.wait").unwrap();
        assert_eq!(sketch.count(), 2);
        assert_eq!(sketch.max(), 8.0);
    }

    #[test]
    fn two_servers_run_work_concurrently() {
        let config = DaemonConfig { servers: 2, ..DaemonConfig::default() };
        let mut d = daemon(&config);
        let (out, _) = drive(
            &mut d,
            &["{\"at\":0,\"work\":10}", "{\"at\":2,\"work\":5}", "{\"cmd\":\"shutdown\"}"],
        );
        // Second job starts immediately on server 2 and finishes first.
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("\"id\":1") && lines[0].contains("\"completed\":7"), "{}", lines[0]);
        assert!(lines[1].contains("\"id\":0") && lines[1].contains("\"completed\":10"));
    }

    #[test]
    fn overload_sheds_with_a_429_line_once_warmed_up() {
        let config = DaemonConfig {
            admission_bound: Some(2.0),
            admission_warmup: 2,
            ..DaemonConfig::default()
        };
        let mut d = daemon(&config);
        // Work of 10 ticks arriving every 4 ticks on one server: λ̂ = 0.25,
        // μ̂ = 0.1 — over capacity once two services have completed (at
        // tick 20, i.e. from the sixth arrival on).
        let lines: Vec<String> =
            (0..8u64).map(|k| format!("{{\"at\":{},\"work\":10}}", 4 * k)).collect();
        let mut refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        refs.push("{\"cmd\":\"shutdown\"}");
        let (out, registry) = drive(&mut d, &refs);
        assert!(d.shed() > 0, "the admission bound must engage");
        assert_eq!(registry.counter("served.shed"), d.shed());
        assert!(out.contains("\"status\":429"));
        assert!(out.contains("\"predicted_wait\""));
        // Warmup: the first two arrivals can never shed.
        assert!(!out.lines().next().unwrap().contains("shed"));
    }

    #[test]
    fn malformed_lines_produce_error_lines_and_the_daemon_survives() {
        let mut d = daemon(&DaemonConfig::default());
        let (out, registry) = drive(
            &mut d,
            &[
                "not json",
                "{\"at\":0}",
                "{\"batch\":[1]}",
                "{\"at\":0,\"work\":-3}",
                "{\"at\":0,\"batch\":7}",
                "{\"cmd\":\"reboot\"}",
                "{\"at\":3,\"batch\":[1]}",
                "{\"cmd\":\"shutdown\"}",
            ],
        );
        assert_eq!(registry.counter("served.errors"), 6);
        assert_eq!(out.matches("\"kind\":\"error\"").count(), 6);
        // The good batch still served.
        assert_eq!(registry.counter("served.batches"), 1);
        assert!(out.contains("\"kind\":\"batch\""));
    }

    #[test]
    fn status_lines_report_live_state() {
        let mut d = daemon(&DaemonConfig::default());
        let (out, _) = drive(
            &mut d,
            &[
                "{\"at\":0,\"work\":10}",
                "{\"at\":1,\"work\":3}",
                "{\"cmd\":\"status\"}",
                "{\"cmd\":\"shutdown\"}",
            ],
        );
        let status = out.lines().find(|l| l.contains("\"kind\":\"status\"")).unwrap();
        assert!(status.contains("\"busy\":1") && status.contains("\"backlog\":1"), "{status}");
        // The final (post-drain) status shows everything completed.
        let last = out.lines().last().unwrap();
        assert!(last.contains("\"completed\":2") && last.contains("\"backlog\":0"), "{last}");
    }

    #[test]
    fn session_warm_mode_counts_warm_starts_for_later_batch_heads() {
        // The same workload arriving over and over — once seeded, each
        // later batch re-solves from its own converged optimum.
        let lines = [
            "{\"at\":0,\"batch\":[1]}",
            "{\"at\":100000,\"batch\":[1]}",
            "{\"at\":200000,\"batch\":[1]}",
        ];
        let batch_cfg = DaemonConfig::default();
        let (_, batch_reg) = drive(&mut daemon(&batch_cfg), &lines);
        // Batch mode: three singleton chains, no seeding at all.
        assert_eq!(batch_reg.counter("serve.warm_starts"), 0);
        let session_cfg = DaemonConfig { warm: WarmMode::Session, ..DaemonConfig::default() };
        let (_, session_reg) = drive(&mut daemon(&session_cfg), &lines);
        // Session mode: batches 2 and 3 start from the previous tail.
        assert_eq!(session_reg.counter("serve.warm_starts"), 2);
        assert!(
            session_reg.counter("econ.iterations") < batch_reg.counter("econ.iterations"),
            "session seeding must save iterations"
        );
    }

    #[test]
    fn batch_mode_responses_match_a_one_shot_warm_server() {
        // The daemon's batch line must embed exactly the responses a
        // one-shot warm BatchServer produces for the same requests.
        let mut cache = SubstrateCache::new();
        let requests =
            seed_parser()(&Value::Array(vec![Value::Int(1), Value::Int(2)]), &mut cache, &mut fap_obs::NoopRecorder)
                .unwrap();
        let oneshot = BatchServer::new(Parallelism::Auto)
            .with_warm_start(true)
            .serve(&requests);
        let expected: Vec<Value> =
            oneshot.responses.iter().map(|r| r.as_ref().unwrap().serialize_value()).collect();
        let expected_json =
            serde_json::to_string(&Value::Array(expected)).unwrap();

        let mut d = daemon(&DaemonConfig::default());
        let (out, _) = drive(&mut d, &["{\"at\":0,\"batch\":[1,2]}", "{\"cmd\":\"shutdown\"}"]);
        let batch_line = out.lines().find(|l| l.contains("\"kind\":\"batch\"")).unwrap();
        let embedded = format!("\"responses\":{expected_json}");
        assert!(
            batch_line.contains(&embedded),
            "daemon responses must be bit-identical to the one-shot warm serve path"
        );
    }

    #[test]
    fn out_of_order_ticks_clamp_monotone() {
        let mut d = daemon(&DaemonConfig::default());
        let (out, _) = drive(
            &mut d,
            &["{\"at\":10,\"work\":2}", "{\"at\":3,\"work\":2}", "{\"cmd\":\"shutdown\"}"],
        );
        // The second arrival's tick clamps to the input clock (10): no
        // time travel, and it starts as soon as job 0's server frees.
        let lines: Vec<&str> = out.lines().collect();
        assert!(
            lines[1].contains("\"arrived\":10")
                && lines[1].contains("\"started\":12")
                && lines[1].contains("\"wait\":2"),
            "{}",
            lines[1]
        );
    }

    #[test]
    fn every_request_completes_a_trace_in_the_flight_recorder() {
        let mut d = daemon(&DaemonConfig::default());
        let (out, _) = drive(
            &mut d,
            &[
                "{\"at\":0,\"batch\":[1,2]}",
                "{\"at\":1,\"work\":5}",
                "{\"cmd\":\"shutdown\"}",
            ],
        );
        let fr = d.flight();
        assert_eq!(fr.completed_traces(), 2, "one trace per accepted arrival");
        assert_eq!(fr.dropped_spans(), 0);
        for summary in fr.recent() {
            assert_eq!(summary.name, "served.request");
        }
        // Self time partitions each trace's wall ticks: summed over layers
        // it equals the summed (completed - arrived) of the output lines.
        let total_wall: u64 = out
            .lines()
            .filter(|l| l.contains("\"kind\":\"batch\"") || l.contains("\"kind\":\"work\""))
            .map(|l| {
                let field = |k: &str| {
                    let tail = &l[l.find(k).unwrap() + k.len()..];
                    tail[..tail.find([',', '}']).unwrap()].parse::<u64>().unwrap()
                };
                field("\"completed\":") - field("\"arrived\":")
            })
            .sum();
        let self_total: u64 = fr.layer_self_times().map(|(_, v)| v).sum();
        assert_eq!(self_total, total_wall);
        // The work item's ticks land on the served layer; the batch's
        // solver iterations land on the serve layer's leaves.
        assert!(fr.layer_self_time("serve") > 0);
        assert!(fr.layer_self_time("served") > 0);
    }

    #[test]
    fn shed_arrivals_complete_as_zero_duration_traces() {
        let config = DaemonConfig {
            admission_bound: Some(2.0),
            admission_warmup: 2,
            ..DaemonConfig::default()
        };
        let mut d = daemon(&config);
        let lines: Vec<String> =
            (0..8u64).map(|k| format!("{{\"at\":{},\"work\":10}}", 4 * k)).collect();
        let mut refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        refs.push("{\"cmd\":\"shutdown\"}");
        drive(&mut d, &refs);
        assert!(d.shed() > 0);
        let fr = d.flight();
        assert_eq!(fr.completed_traces(), 8, "accepted and shed alike");
        let zero_width = fr.recent().filter(|s| s.dur == 0).count() as u64;
        assert_eq!(zero_width, d.shed());
    }

    #[test]
    fn metrics_cmd_reports_quantiles_layers_and_trace_totals() {
        let mut d = daemon(&DaemonConfig::default());
        let (out, _) = drive(
            &mut d,
            &[
                "{\"at\":0,\"work\":10}",
                "{\"at\":2,\"work\":5}",
                "{\"at\":50,\"cmd_pad\":0,\"work\":1}",
                "{\"cmd\":\"metrics\"}",
                "{\"cmd\":\"shutdown\"}",
            ],
        );
        let metrics = out.lines().find(|l| l.contains("\"kind\":\"metrics\"")).unwrap();
        // Two completions by tick 50 with waits {0, 8}: the p90 sees 8.
        assert!(metrics.contains("\"wait_p50\""), "{metrics}");
        assert!(metrics.contains("\"wait_p90\""), "{metrics}");
        assert!(metrics.contains("\"self_ticks\":{\"served\":"), "{metrics}");
        // All three work traces are complete: spans are synthesized at
        // start time, when the completion tick is already known.
        assert!(metrics.contains("\"traces\":3"), "{metrics}");
        assert!(metrics.contains("\"spans_dropped\":0"), "{metrics}");
        // And the session is still deterministic with a metrics probe.
        let mut again = daemon(&DaemonConfig::default());
        let (out2, _) = drive(
            &mut again,
            &[
                "{\"at\":0,\"work\":10}",
                "{\"at\":2,\"work\":5}",
                "{\"at\":50,\"cmd_pad\":0,\"work\":1}",
                "{\"cmd\":\"metrics\"}",
                "{\"cmd\":\"shutdown\"}",
            ],
        );
        assert_eq!(out, out2);
    }

    #[test]
    fn status_lines_carry_cache_bytes_and_steals() {
        let mut d = daemon(&DaemonConfig::default());
        let (out, _) =
            drive(&mut d, &["{\"at\":0,\"batch\":[1]}", "{\"cmd\":\"shutdown\"}"]);
        let status = out.lines().find(|l| l.contains("\"kind\":\"status\"")).unwrap();
        // One 5-node dense matrix resident: 5·5·8 bytes.
        assert!(status.contains("\"cache_bytes\":200"), "{status}");
        assert!(status.contains("\"steals\":"), "{status}");
        assert!(status.contains("\"shed\":0"), "{status}");
    }

    #[test]
    fn warm_mode_parses() {
        assert_eq!(WarmMode::parse("off").unwrap(), WarmMode::Off);
        assert_eq!(WarmMode::parse("batch").unwrap(), WarmMode::Batch);
        assert_eq!(WarmMode::parse("session").unwrap(), WarmMode::Session);
        assert!(WarmMode::parse("warmish").is_err());
    }
}
