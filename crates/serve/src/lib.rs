//! # fap-serve — sharded batch serving for the allocation solvers
//!
//! The paper's optimizer is decentralized by design: many independent
//! allocation problems run concurrently across a network. This crate is
//! the serving-side mirror of that structure — a batcher that accepts many
//! independent scenarios (single-file §4, multi-file §5.2, ring §7) and
//! shards them across a fixed worker pool:
//!
//! * **Submission-order, bit-identical results.** Requests are split into
//!   contiguous chunks, one per shard; each request is solved by exactly
//!   one worker with the same deterministic kernel the sequential path
//!   uses, so the response vector is bit-identical to solving the batch
//!   sequentially — for *every* shard count (pinned by the tests here and
//!   by `tests/serve_equivalence.rs`).
//! * **Allocation-free steady state.** Each worker owns one
//!   [`OptimizerScratch`] and one [`MultiFileScratch`] reused across every
//!   request in its chunk, the same scratch discipline the batch engine
//!   established.
//! * **Per-shard metrics, one aggregate.** Each worker records through the
//!   `_observed` solver entry points into its own [`MetricsRegistry`]
//!   (a registry keeps counters/gauges/histograms and drops events, so
//!   shard telemetry is deterministic). After the join, shard registries
//!   are replayed in shard order through a [`Tee`] into the aggregate
//!   snapshot and any caller-provided recorder — counters add, histograms
//!   merge bucket-wise, and the aggregate's deterministic metrics are
//!   independent of the shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::Serialize;

use fap_batch::Parallelism;
use fap_core::{MultiFileProblem, MultiFileScratch, MultiFileSolution, SingleFileProblem};
use fap_econ::{OptimizerScratch, ResourceDirectedOptimizer, Solution, StepSize};
use fap_obs::{MetricsRegistry, NoopRecorder, Recorder, Tee};
use fap_ring::{RingSolver, RingSolution, VirtualRing};

/// One independent scenario submitted to the batcher.
#[derive(Debug, Clone)]
pub enum ServeRequest {
    /// A §4 single-file fractional allocation, solved by the
    /// resource-directed optimizer with a fixed step size.
    SingleFile {
        /// The problem instance.
        problem: SingleFileProblem,
        /// Feasible starting allocation (`Σ x_i = 1`, `x_i ≥ 0`).
        initial: Vec<f64>,
        /// Fixed step size α.
        alpha: f64,
        /// Marginal-spread convergence tolerance ε.
        epsilon: f64,
        /// Iteration cap.
        max_iterations: usize,
    },
    /// A §5.2 multi-file allocation (solved sequentially inside its
    /// worker — the shards are the parallelism).
    MultiFile {
        /// The problem instance.
        problem: MultiFileProblem,
        /// Feasible per-file starting allocations.
        initial: Vec<Vec<f64>>,
        /// Fixed step size α.
        alpha: f64,
        /// Marginal-spread convergence tolerance ε.
        epsilon: f64,
        /// Iteration cap.
        max_iterations: usize,
    },
    /// A §7 multi-copy ring allocation, solved by the oscillation-aware
    /// solver.
    Ring {
        /// The ring instance.
        ring: VirtualRing,
        /// Feasible starting allocation (`Σ x_i = copies`, `x_i ≥ 0`).
        initial: Vec<f64>,
        /// Initial step size α (decays on oscillation).
        alpha: f64,
        /// Cost-delta halting tolerance.
        cost_delta_tolerance: f64,
        /// Iteration cap.
        max_iterations: usize,
    },
}

/// The solved counterpart of a [`ServeRequest`], same variant order.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum ServeResponse {
    /// Result of a [`ServeRequest::SingleFile`] solve.
    SingleFile(Solution),
    /// Result of a [`ServeRequest::MultiFile`] solve.
    MultiFile(MultiFileSolution),
    /// Result of a [`ServeRequest::Ring`] solve.
    Ring(RingSolution),
}

impl ServeResponse {
    /// Iterations the underlying solver ran, whichever the variant.
    pub fn iterations(&self) -> usize {
        match self {
            ServeResponse::SingleFile(s) => s.iterations,
            ServeResponse::MultiFile(s) => s.iterations,
            ServeResponse::Ring(s) => s.iterations,
        }
    }

    /// Whether the underlying solver converged.
    pub fn converged(&self) -> bool {
        match self {
            ServeResponse::SingleFile(s) => s.converged,
            ServeResponse::MultiFile(s) => s.converged,
            ServeResponse::Ring(s) => s.converged,
        }
    }
}

/// A per-request solve failure, carrying the solver's error text. One bad
/// request never poisons its batch: every other response is still
/// produced, bit-identical to a sequential run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeError {
    message: String,
}

impl ServeError {
    /// The underlying solver error, rendered.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServeError {}

/// Everything one batch produced: responses in submission order, the
/// per-shard metric registries, and their fan-in.
#[derive(Debug)]
pub struct ServeOutput {
    /// One entry per request, in submission order.
    pub responses: Vec<Result<ServeResponse, ServeError>>,
    /// One registry per shard, in shard (= chunk) order.
    pub shard_metrics: Vec<MetricsRegistry>,
    /// The shard registries merged in shard order: counters added,
    /// histograms folded bucket-wise, plus the `serve.shards` gauge.
    pub aggregate: MetricsRegistry,
}

impl ServeOutput {
    /// Number of requests that solved successfully.
    pub fn ok_count(&self) -> usize {
        self.responses.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of requests that failed.
    pub fn err_count(&self) -> usize {
        self.responses.len() - self.ok_count()
    }
}

/// The sharded batcher.
///
/// # Example
///
/// ```
/// use fap_batch::Parallelism;
/// use fap_serve::{BatchServer, ServeRequest};
/// use fap_ring::VirtualRing;
///
/// let ring = VirtualRing::new(vec![1.0; 4], vec![0.25; 4], vec![1.5; 4], 2.0, 1.0)?;
/// let requests: Vec<ServeRequest> = (0..6)
///     .map(|_| ServeRequest::Ring {
///         ring: ring.clone(),
///         initial: vec![2.0, 0.0, 0.0, 0.0],
///         alpha: 0.05,
///         cost_delta_tolerance: 1e-7,
///         max_iterations: 3_000,
///     })
///     .collect();
/// let output = BatchServer::new(Parallelism::Fixed(2)).serve(&requests);
/// assert_eq!(output.ok_count(), 6);
/// assert_eq!(output.aggregate.counter("serve.requests"), 6);
/// # Ok::<(), fap_ring::RingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchServer {
    parallelism: Parallelism,
}

impl BatchServer {
    /// A server sharding batches per `parallelism`
    /// ([`Parallelism::Sequential`] = one shard, [`Parallelism::Auto`] =
    /// one per core, [`Parallelism::Fixed`] = exactly that many, always
    /// clamped to the request count).
    pub fn new(parallelism: Parallelism) -> Self {
        BatchServer { parallelism }
    }

    /// The shard count a batch of `requests` solves would use.
    pub fn shards_for(&self, requests: usize) -> usize {
        self.parallelism.threads_for(requests)
    }

    /// Solves every request and fans the shard registries into the
    /// aggregate. Equivalent to [`BatchServer::serve_observed`] with a
    /// [`NoopRecorder`].
    pub fn serve(&self, requests: &[ServeRequest]) -> ServeOutput {
        self.serve_observed(requests, &mut NoopRecorder)
    }

    /// Solves every request across the shard pool.
    ///
    /// Responses come back in submission order and are bit-identical to
    /// solving the same requests sequentially, whatever the shard count.
    /// Each shard records into its own [`MetricsRegistry`]; afterwards the
    /// registries are replayed in shard order through a [`Tee`] into both
    /// the aggregate snapshot and `recorder`, so a caller-side
    /// [`Telemetry`](fap_obs::Telemetry) (or streaming sink) sees the same
    /// merged metrics the aggregate holds.
    pub fn serve_observed(
        &self,
        requests: &[ServeRequest],
        recorder: &mut dyn Recorder,
    ) -> ServeOutput {
        let shards = self.shards_for(requests.len());
        let mut responses: Vec<Option<Result<ServeResponse, ServeError>>> =
            vec![None; requests.len()];
        let mut shard_metrics: Vec<MetricsRegistry> = Vec::new();

        if shards <= 1 {
            let mut registry = MetricsRegistry::new();
            let mut worker = ShardWorker::new();
            for (slot, request) in responses.iter_mut().zip(requests) {
                *slot = Some(worker.solve(request, &mut registry));
            }
            shard_metrics.push(registry);
        } else {
            let chunk = requests.len().div_ceil(shards);
            shard_metrics = std::thread::scope(|scope| {
                let handles: Vec<_> = responses
                    .chunks_mut(chunk)
                    .zip(requests.chunks(chunk))
                    .map(|(slots, chunk_requests)| {
                        scope.spawn(move || {
                            let mut registry = MetricsRegistry::new();
                            let mut worker = ShardWorker::new();
                            for (slot, request) in slots.iter_mut().zip(chunk_requests) {
                                *slot = Some(worker.solve(request, &mut registry));
                            }
                            registry
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("serve shard worker panicked"))
                    .collect()
            });
        }

        // Fan-in: replay each shard registry, in shard order, into both
        // the aggregate and the caller's recorder through one Tee — the
        // deterministic metrics of the merge are shard-count-independent
        // because counter addition and histogram folding commute.
        let mut aggregate = MetricsRegistry::new();
        for shard in &shard_metrics {
            let mut tee = Tee::new(&mut aggregate, recorder);
            shard.replay_into(&mut tee);
        }
        aggregate.gauge("serve.shards", shard_metrics.len() as f64);
        recorder.gauge("serve.shards", shard_metrics.len() as f64);

        let responses = responses
            .into_iter()
            .map(|slot| slot.expect("every request chunk is assigned to exactly one shard"))
            .collect();
        ServeOutput { responses, shard_metrics, aggregate }
    }
}

/// One shard's solver state: the scratch buffers reused across every
/// request in the shard's chunk, so the steady state allocates only what
/// the returned solutions themselves need.
struct ShardWorker {
    econ_scratch: OptimizerScratch,
    multi_scratch: MultiFileScratch,
}

impl ShardWorker {
    fn new() -> Self {
        ShardWorker { econ_scratch: OptimizerScratch::new(), multi_scratch: MultiFileScratch::new() }
    }

    fn solve(
        &mut self,
        request: &ServeRequest,
        registry: &mut MetricsRegistry,
    ) -> Result<ServeResponse, ServeError> {
        registry.incr("serve.requests", 1);
        let result = match request {
            ServeRequest::SingleFile { problem, initial, alpha, epsilon, max_iterations } => {
                ResourceDirectedOptimizer::new(StepSize::Fixed(*alpha))
                    .with_epsilon(*epsilon)
                    .with_max_iterations(*max_iterations)
                    .run_observed_with_scratch(problem, initial, &mut self.econ_scratch, registry)
                    .map(ServeResponse::SingleFile)
                    .map_err(|e| ServeError { message: e.to_string() })
            }
            ServeRequest::MultiFile { problem, initial, alpha, epsilon, max_iterations } => problem
                .solve_observed(
                    initial,
                    *alpha,
                    *epsilon,
                    *max_iterations,
                    Parallelism::Sequential,
                    &mut self.multi_scratch,
                    registry,
                )
                .map(ServeResponse::MultiFile)
                .map_err(|e| ServeError { message: e.to_string() }),
            ServeRequest::Ring { ring, initial, alpha, cost_delta_tolerance, max_iterations } => {
                RingSolver::new(*alpha)
                    .with_cost_delta_tolerance(*cost_delta_tolerance)
                    .with_max_iterations(*max_iterations)
                    .solve_observed(ring, initial, registry)
                    .map(ServeResponse::Ring)
                    .map_err(|e| ServeError { message: e.to_string() })
            }
        };
        match &result {
            Ok(response) => {
                registry.observe("serve.request_iterations", response.iterations() as f64);
            }
            Err(_) => registry.incr("serve.errors", 1),
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_net::{topology, AccessPattern};

    fn single_file_request(seed: u64) -> ServeRequest {
        let graph = topology::ring(5, 1.0).unwrap();
        let pattern = AccessPattern::random(5, 0.2..0.6, seed).unwrap();
        let problem = SingleFileProblem::mm1(&graph, &pattern, 4.0, 1.0).unwrap();
        ServeRequest::SingleFile {
            problem,
            initial: vec![0.2; 5],
            alpha: 0.1,
            epsilon: 1e-6,
            max_iterations: 100_000,
        }
    }

    fn multi_file_request(seed: u64) -> ServeRequest {
        let graph = topology::ring(4, 1.0).unwrap();
        let patterns: Vec<AccessPattern> =
            (0..3).map(|j| AccessPattern::random(4, 0.1..0.4, seed + j).unwrap()).collect();
        let problem = MultiFileProblem::mm1(&graph, &patterns, 6.0, 1.0).unwrap();
        ServeRequest::MultiFile {
            problem,
            initial: vec![vec![0.25; 4]; 3],
            alpha: 0.1,
            epsilon: 1e-6,
            max_iterations: 50_000,
        }
    }

    fn ring_request() -> ServeRequest {
        let ring = VirtualRing::new(vec![4.0, 1.0, 1.0, 1.0], vec![0.25; 4], vec![1.5; 4], 2.0, 1.0)
            .unwrap();
        ServeRequest::Ring {
            ring,
            initial: vec![2.0, 0.0, 0.0, 0.0],
            alpha: 0.1,
            cost_delta_tolerance: 1e-7,
            max_iterations: 3_000,
        }
    }

    fn mixed_batch() -> Vec<ServeRequest> {
        let mut requests = Vec::new();
        for i in 0..3 {
            requests.push(single_file_request(100 + i));
            requests.push(multi_file_request(200 + i));
            requests.push(ring_request());
        }
        requests
    }

    #[test]
    fn every_shard_count_matches_the_sequential_solve() {
        let requests = mixed_batch();
        let sequential = BatchServer::new(Parallelism::Sequential).serve(&requests);
        assert_eq!(sequential.err_count(), 0);
        for shards in [2, 3, 8, 64] {
            let sharded = BatchServer::new(Parallelism::Fixed(shards)).serve(&requests);
            assert_eq!(
                sequential.responses, sharded.responses,
                "{shards} shards must be bit-identical to sequential"
            );
        }
    }

    #[test]
    fn shard_count_clamps_to_the_request_count() {
        let server = BatchServer::new(Parallelism::Fixed(64));
        assert_eq!(server.shards_for(3), 3);
        assert_eq!(server.shards_for(0), 1);
        let output = server.serve(&[ring_request(), ring_request()]);
        assert_eq!(output.shard_metrics.len(), 2);
    }

    #[test]
    fn aggregate_counters_are_shard_count_independent() {
        let requests = mixed_batch();
        let sequential = BatchServer::new(Parallelism::Sequential).serve(&requests);
        let sharded = BatchServer::new(Parallelism::Fixed(4)).serve(&requests);
        for counter in
            ["serve.requests", "econ.iterations", "core.iterations", "ring.iterations"]
        {
            assert!(sequential.aggregate.counter(counter) > 0, "{counter} never recorded");
            assert_eq!(
                sequential.aggregate.counter(counter),
                sharded.aggregate.counter(counter),
                "{counter} must not depend on the shard count"
            );
        }
        fn iters(o: &ServeOutput) -> &fap_obs::Histogram {
            o.aggregate.histogram("serve.request_iterations").unwrap()
        }
        assert_eq!(iters(&sequential).count(), requests.len() as u64);
        assert_eq!(iters(&sequential), iters(&sharded));
    }

    #[test]
    fn aggregate_is_the_sum_of_the_shards() {
        let requests = mixed_batch();
        let output = BatchServer::new(Parallelism::Fixed(3)).serve(&requests);
        assert_eq!(output.shard_metrics.len(), 3);
        let shard_sum: u64 =
            output.shard_metrics.iter().map(|r| r.counter("serve.requests")).sum();
        assert_eq!(shard_sum, requests.len() as u64);
        assert_eq!(output.aggregate.counter("serve.requests"), shard_sum);
        assert_eq!(output.aggregate.gauge_value("serve.shards"), Some(3.0));
    }

    #[test]
    fn caller_recorder_sees_the_merged_metrics() {
        let requests = mixed_batch();
        let mut tele = fap_obs::Telemetry::manual();
        let output = BatchServer::new(Parallelism::Fixed(2)).serve_observed(&requests, &mut tele);
        assert_eq!(
            tele.registry().counter("serve.requests"),
            output.aggregate.counter("serve.requests")
        );
        assert_eq!(
            tele.registry().counter("econ.iterations"),
            output.aggregate.counter("econ.iterations")
        );
        assert_eq!(tele.registry().gauge_value("serve.shards"), Some(2.0));
    }

    #[test]
    fn a_bad_request_fails_alone() {
        let mut requests = mixed_batch();
        // An infeasible start: the simplex constraint is violated.
        if let ServeRequest::SingleFile { initial, .. } = &mut requests[3] {
            *initial = vec![0.9; 5];
        } else {
            panic!("expected a single-file request at index 3");
        }
        let output = BatchServer::new(Parallelism::Fixed(3)).serve(&requests);
        assert_eq!(output.err_count(), 1);
        assert!(output.responses[3].is_err());
        assert_eq!(output.aggregate.counter("serve.errors"), 1);
        // And the rest still match an all-good sequential solve of the
        // same (mutated) batch.
        let sequential = BatchServer::new(Parallelism::Sequential).serve(&requests);
        assert_eq!(sequential.responses, output.responses);
    }

    #[test]
    fn empty_batch_is_fine() {
        let output = BatchServer::new(Parallelism::Auto).serve(&[]);
        assert!(output.responses.is_empty());
        assert_eq!(output.shard_metrics.len(), 1);
        assert_eq!(output.aggregate.counter("serve.requests"), 0);
    }
}
