//! # fap-serve — sharded batch serving for the allocation solvers
//!
//! The paper's optimizer is decentralized by design: many independent
//! allocation problems run concurrently across a network. This crate is
//! the serving-side mirror of that structure — a batcher that accepts many
//! independent scenarios (single-file §4, multi-file §5.2, ring §7) and
//! shards them across a work-stealing worker pool:
//!
//! * **Submission-order, bit-identical results.** The batch is planned into
//!   *tasks* (single requests, or warm-start chains — see below) whose
//!   solved outputs depend only on the task's own contents, never on which
//!   worker runs it or when. Workers pull tasks from per-worker deques,
//!   stealing from the back of a victim's deque when their own runs dry
//!   (counted by `serve.steals`), and each task is solved with the same
//!   deterministic kernel the sequential path uses — so the response
//!   vector is bit-identical to solving the batch sequentially for *every*
//!   shard count, even though the task-to-worker assignment is timing
//!   dependent (pinned by the tests here and by
//!   `tests/serve_equivalence.rs`).
//! * **Warm-start chains.** With [`BatchServer::with_warm_start`], requests
//!   of the same family and shape are grouped into chains solved
//!   sequentially inside one task; each converged answer seeds the next
//!   solve through [`OptimizerScratch::start_from`] /
//!   [`MultiFileScratch::start_from`] (re-projected onto the simplex, so
//!   feasibility is exact). Because the chain — not the request — is the
//!   scheduling unit, the seed sequence is shard-count-independent and the
//!   warm responses are bit-identical to a warm sequential run. Savings
//!   are visible as `serve.warm_starts` and `econ.warm_start_iters_saved`
//!   (iterations below the chain's cold baseline).
//! * **Session seeds.** [`BatchServer::serve_session_observed`] extends
//!   warm-start chains *across batches*: a [`SessionSeeds`] store keeps
//!   each chain's last converged allocation and arms the matching chain
//!   head in the next batch — the warm state the `fap served` daemon keeps
//!   alive between requests. An empty store is bit-identical to the plain
//!   warm path.
//! * **Allocation-free steady state.** Each worker owns one
//!   [`OptimizerScratch`] and one [`MultiFileScratch`] reused across every
//!   task it executes, the same scratch discipline the batch engine
//!   established.
//! * **Per-shard metrics, one aggregate.** Each worker records through the
//!   `_observed` solver entry points into its own [`MetricsRegistry`]
//!   (a registry keeps counters/gauges/histograms and drops events). After
//!   the join, shard registries are replayed in shard order through a
//!   [`Tee`] into the aggregate snapshot and any caller-provided recorder —
//!   counters add and histograms merge bucket-wise, so those aggregate
//!   metrics are independent of the shard count *and* of which worker
//!   solved what; per-shard registry contents and last-write gauges are
//!   scheduling-dependent under stealing and are advisory only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Mutex;

use serde::Serialize;

use fap_batch::Parallelism;
use fap_cache::{Fnv64, FnvBuildHasher};
use fap_core::{MultiFileProblem, MultiFileScratch, MultiFileSolution, SingleFileProblem};
use fap_econ::{
    AllocationProblem, OptimizerScratch, ResourceDirectedOptimizer, Solution, StepSize,
};
use fap_obs::{
    emit_span, emit_span_end, emit_span_start, MetricsRegistry, NoopRecorder, Recorder,
    Tee, TraceContext,
};
use fap_ring::{RingSolver, RingSolution, VirtualRing};

/// One independent scenario submitted to the batcher.
#[derive(Debug, Clone)]
pub enum ServeRequest {
    /// A §4 single-file fractional allocation, solved by the
    /// resource-directed optimizer with a fixed step size.
    SingleFile {
        /// The problem instance.
        problem: SingleFileProblem,
        /// Feasible starting allocation (`Σ x_i = 1`, `x_i ≥ 0`).
        initial: Vec<f64>,
        /// Fixed step size α.
        alpha: f64,
        /// Marginal-spread convergence tolerance ε.
        epsilon: f64,
        /// Iteration cap.
        max_iterations: usize,
        /// Topology fingerprint of the network the problem was built on
        /// (`fap_cache::topology_fingerprint`). When set, it becomes part
        /// of the warm key, so requests on *different* topologies never
        /// share a warm chain or a session seed — λ-only drift reuses
        /// seeds, a topology change invalidates them. `None` (the
        /// pre-existing wire shape) keeps the purely structural key.
        topology: Option<u64>,
    },
    /// A §5.2 multi-file allocation (solved sequentially inside its
    /// worker — the shards are the parallelism).
    MultiFile {
        /// The problem instance.
        problem: MultiFileProblem,
        /// Feasible per-file starting allocations.
        initial: Vec<Vec<f64>>,
        /// Fixed step size α.
        alpha: f64,
        /// Marginal-spread convergence tolerance ε.
        epsilon: f64,
        /// Iteration cap.
        max_iterations: usize,
        /// Topology fingerprint, as for
        /// [`ServeRequest::SingleFile::topology`].
        topology: Option<u64>,
    },
    /// A §7 multi-copy ring allocation, solved by the oscillation-aware
    /// solver.
    Ring {
        /// The ring instance.
        ring: VirtualRing,
        /// Feasible starting allocation (`Σ x_i = copies`, `x_i ≥ 0`).
        initial: Vec<f64>,
        /// Initial step size α (decays on oscillation).
        alpha: f64,
        /// Cost-delta halting tolerance.
        cost_delta_tolerance: f64,
        /// Iteration cap.
        max_iterations: usize,
    },
}

/// The solved counterpart of a [`ServeRequest`], same variant order.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum ServeResponse {
    /// Result of a [`ServeRequest::SingleFile`] solve.
    SingleFile(Solution),
    /// Result of a [`ServeRequest::MultiFile`] solve.
    MultiFile(MultiFileSolution),
    /// Result of a [`ServeRequest::Ring`] solve.
    Ring(RingSolution),
}

impl ServeResponse {
    /// Iterations the underlying solver ran, whichever the variant.
    pub fn iterations(&self) -> usize {
        match self {
            ServeResponse::SingleFile(s) => s.iterations,
            ServeResponse::MultiFile(s) => s.iterations,
            ServeResponse::Ring(s) => s.iterations,
        }
    }

    /// Whether the underlying solver converged.
    pub fn converged(&self) -> bool {
        match self {
            ServeResponse::SingleFile(s) => s.converged,
            ServeResponse::MultiFile(s) => s.converged,
            ServeResponse::Ring(s) => s.converged,
        }
    }
}

/// A per-request solve failure, carrying the solver's error text. One bad
/// request never poisons its batch: every other response is still
/// produced, bit-identical to a sequential run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeError {
    message: String,
}

impl ServeError {
    /// The underlying solver error, rendered.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServeError {}

/// Everything one batch produced: responses in submission order, the
/// per-shard metric registries, and their fan-in.
#[derive(Debug)]
pub struct ServeOutput {
    /// One entry per request, in submission order.
    pub responses: Vec<Result<ServeResponse, ServeError>>,
    /// One registry per shard, in shard (= chunk) order.
    pub shard_metrics: Vec<MetricsRegistry>,
    /// The shard registries merged in shard order: counters added,
    /// histograms folded bucket-wise, plus the `serve.shards` gauge.
    pub aggregate: MetricsRegistry,
}

/// A converged allocation retained across batches to seed the next solve
/// of the same warm-start chain — the unit of the `fap served` daemon's
/// cross-batch warm state.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionSeed {
    /// A §4 single-file allocation (`Σ x_i = 1`).
    SingleFile(Vec<f64>),
    /// Per-file §5.2 multi-file allocations.
    MultiFile(Vec<Vec<f64>>),
}

/// Warm-start seeds that outlive a single batch, keyed by the same
/// structural chain key [`BatchServer::serve_session_observed`] groups
/// requests by. An empty seed store makes a session batch behave exactly
/// like a plain warm batch; afterwards the store holds each chain's last
/// converged allocation, so the *next* batch's chain heads start seeded
/// (visible as `serve.warm_starts` counted for chain heads, which a
/// single-batch run never does).
///
/// Seeds only ever alter a starting iterate — never a problem — so stale
/// or mismatched seeds cost iterations, not correctness.
#[derive(Debug, Clone, Default)]
pub struct SessionSeeds {
    seeds: HashMap<u64, SessionSeed, FnvBuildHasher>,
}

impl SessionSeeds {
    /// An empty seed store.
    pub fn new() -> Self {
        SessionSeeds::default()
    }

    /// Number of chains currently holding a seed.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether no chain has converged yet.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Forgets every seed (the daemon's `warm=batch` mode between batches).
    pub fn clear(&mut self) {
        self.seeds.clear();
    }

    fn get(&self, key: u64) -> Option<&SessionSeed> {
        self.seeds.get(&key)
    }

    fn insert(&mut self, key: u64, seed: SessionSeed) {
        self.seeds.insert(key, seed);
    }
}

impl ServeOutput {
    /// Number of requests that solved successfully.
    pub fn ok_count(&self) -> usize {
        self.responses.iter().filter(|r| r.is_ok()).count()
    }

    /// Number of requests that failed.
    pub fn err_count(&self) -> usize {
        self.responses.len() - self.ok_count()
    }
}

/// The sharded batcher.
///
/// # Example
///
/// ```
/// use fap_batch::Parallelism;
/// use fap_serve::{BatchServer, ServeRequest};
/// use fap_ring::VirtualRing;
///
/// let ring = VirtualRing::new(vec![1.0; 4], vec![0.25; 4], vec![1.5; 4], 2.0, 1.0)?;
/// let requests: Vec<ServeRequest> = (0..6)
///     .map(|_| ServeRequest::Ring {
///         ring: ring.clone(),
///         initial: vec![2.0, 0.0, 0.0, 0.0],
///         alpha: 0.05,
///         cost_delta_tolerance: 1e-7,
///         max_iterations: 3_000,
///     })
///     .collect();
/// let output = BatchServer::new(Parallelism::Fixed(2)).serve(&requests);
/// assert_eq!(output.ok_count(), 6);
/// assert_eq!(output.aggregate.counter("serve.requests"), 6);
/// # Ok::<(), fap_ring::RingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchServer {
    parallelism: Parallelism,
    warm_start: bool,
}

impl BatchServer {
    /// A server sharding batches per `parallelism`
    /// ([`Parallelism::Sequential`] = one shard, [`Parallelism::Auto`] =
    /// one per core, [`Parallelism::Fixed`] = exactly that many, always
    /// clamped to the request count). Warm starts are off by default, so a
    /// plain server reproduces the cold per-request solves bit-for-bit.
    pub fn new(parallelism: Parallelism) -> Self {
        BatchServer { parallelism, warm_start: false }
    }

    /// Enables (or disables) warm-start chaining: requests of the same
    /// family and shape — same variant, dimensions, α and ε — are grouped
    /// into chains, each chain solved in submission order inside one
    /// scheduling task with every converged answer seeding the next solve.
    ///
    /// Warm-started responses converge to the same fixed point but
    /// typically in far fewer iterations for perturbed-workload streams,
    /// so their iteration counts (and last float bits) differ from cold
    /// responses; the warm output is instead bit-identical across *shard
    /// counts*, which is the determinism contract that matters for
    /// serving. Seeds only ever alter the starting iterate — never the
    /// problem — so a chain that accidentally mixes unrelated requests of
    /// identical shape still solves every one of them correctly.
    #[must_use]
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.warm_start = enabled;
        self
    }

    /// Whether warm-start chaining is enabled.
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// The shard count a batch of `requests` solves would use.
    pub fn shards_for(&self, requests: usize) -> usize {
        self.parallelism.threads_for(requests)
    }

    /// Solves every request and fans the shard registries into the
    /// aggregate. Equivalent to [`BatchServer::serve_observed`] with a
    /// [`NoopRecorder`].
    pub fn serve(&self, requests: &[ServeRequest]) -> ServeOutput {
        self.serve_observed(requests, &mut NoopRecorder)
    }

    /// Solves every request across the work-stealing shard pool.
    ///
    /// Responses come back in submission order and are bit-identical to
    /// solving the same requests sequentially (with the same warm-start
    /// setting), whatever the shard count. Each shard records into its own
    /// [`MetricsRegistry`]; afterwards the registries are replayed in
    /// shard order through a [`Tee`] into both the aggregate snapshot and
    /// `recorder`, so a caller-side [`Telemetry`](fap_obs::Telemetry) (or
    /// streaming sink) sees the same merged metrics the aggregate holds.
    pub fn serve_observed(
        &self,
        requests: &[ServeRequest],
        recorder: &mut dyn Recorder,
    ) -> ServeOutput {
        self.serve_inner(requests, None, recorder)
    }

    /// Like [`BatchServer::serve_observed`], but with warm state that
    /// *persists across batches*: chain heads are seeded from `seeds` (the
    /// previous batches' converged allocations) and each chain's last
    /// converged answer is written back after the join. Requires warm-start
    /// chaining to be enabled; with it disabled the seeds are ignored and
    /// this is exactly `serve_observed`.
    ///
    /// Responses are bit-identical across shard counts for a fixed seed
    /// store, and a run with an empty store is bit-identical to
    /// [`BatchServer::serve_observed`] — the daemon's `warm=batch` mode
    /// relies on that.
    pub fn serve_session_observed(
        &self,
        requests: &[ServeRequest],
        seeds: &mut SessionSeeds,
        recorder: &mut dyn Recorder,
    ) -> ServeOutput {
        self.serve_inner(requests, Some(seeds), recorder)
    }

    /// [`BatchServer::serve_session_observed`] with a [`NoopRecorder`].
    pub fn serve_session(
        &self,
        requests: &[ServeRequest],
        seeds: &mut SessionSeeds,
    ) -> ServeOutput {
        self.serve_session_observed(requests, seeds, &mut NoopRecorder)
    }

    fn serve_inner(
        &self,
        requests: &[ServeRequest],
        seeds: Option<&mut SessionSeeds>,
        recorder: &mut dyn Recorder,
    ) -> ServeOutput {
        let shards = self.shards_for(requests.len());
        let (order, tasks, keys) = self.plan_tasks(requests);
        // Chain-head seeds are snapshotted per task before any worker
        // spawns; workers read the snapshot immutably, so scheduling can
        // never race the seed store.
        let task_seeds: Vec<Option<SessionSeed>> = match &seeds {
            Some(store) if self.warm_start => {
                keys.iter().map(|k| k.and_then(|k| store.get(k).cloned())).collect()
            }
            _ => vec![None; tasks.len()],
        };
        let mut responses: Vec<Option<Result<ServeResponse, ServeError>>> =
            vec![None; requests.len()];
        let mut shard_metrics: Vec<MetricsRegistry> = Vec::new();

        if shards <= 1 {
            let mut registry = MetricsRegistry::new();
            let mut worker = ShardWorker::new();
            let mut out = Vec::with_capacity(requests.len());
            for (task, &(start, end)) in tasks.iter().enumerate() {
                worker.run_task(
                    requests,
                    &order[start..end],
                    self.warm_start,
                    task_seeds[task].as_ref(),
                    &mut registry,
                    &mut out,
                );
            }
            scatter(&mut responses, out);
            shard_metrics.push(registry);
        } else {
            // Per-worker deques seeded with contiguous task ranges; a
            // worker pops its own deque from the front and, once dry,
            // steals from the *back* of the next non-empty victim (scanned
            // in ring order). Tasks never re-enter a deque, so "every
            // deque observed empty" is a safe termination condition. The
            // assignment of tasks to workers is timing-dependent; the
            // solved bits are not, because each task is self-contained.
            let chunk = tasks.len().div_ceil(shards);
            let queues: Vec<Mutex<VecDeque<usize>>> = (0..shards)
                .map(|w| {
                    let start = (w * chunk).min(tasks.len());
                    let end = ((w + 1) * chunk).min(tasks.len());
                    Mutex::new((start..end).collect())
                })
                .collect();
            let warm = self.warm_start;
            let (requests_ref, order_ref, tasks_ref, queues_ref, seeds_ref) =
                (requests, &order, &tasks, &queues, &task_seeds);
            let worker_outputs: Vec<(MetricsRegistry, TaskOutput)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..shards)
                        .map(|w| {
                            scope.spawn(move || {
                                let mut registry = MetricsRegistry::new();
                                let mut worker = ShardWorker::new();
                                let mut out = Vec::new();
                                while let Some(task) =
                                    next_task(queues_ref, w, &mut registry)
                                {
                                    let (start, end) = tasks_ref[task];
                                    worker.run_task(
                                        requests_ref,
                                        &order_ref[start..end],
                                        warm,
                                        seeds_ref[task].as_ref(),
                                        &mut registry,
                                        &mut out,
                                    );
                                }
                                (registry, out)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("serve shard worker panicked"))
                        .collect()
                });
            for (registry, out) in worker_outputs {
                scatter(&mut responses, out);
                shard_metrics.push(registry);
            }
        }

        // Fan-in: replay each shard registry, in shard order, into both
        // the aggregate and the caller's recorder through one Tee — the
        // counters and histograms of the merge are shard-count-independent
        // because counter addition and histogram folding commute.
        let mut aggregate = MetricsRegistry::new();
        for shard in &shard_metrics {
            let mut tee = Tee::new(&mut aggregate, recorder);
            shard.replay_into(&mut tee);
        }
        aggregate.gauge("serve.shards", shard_metrics.len() as f64);
        recorder.gauge("serve.shards", shard_metrics.len() as f64);

        let responses: Vec<Result<ServeResponse, ServeError>> = responses
            .into_iter()
            .map(|slot| slot.expect("every request is assigned to exactly one task"))
            .collect();

        // Tracing: the span timeline is *synthesized* here, after the
        // join, from the plan and the solved responses — never from worker
        // timing — so the span stream is bit-identical for every shard
        // count and steal pattern. A stolen task keeps its parent by
        // construction: parentage comes from the plan, not from which
        // worker ran the task.
        if recorder.trace_enabled() {
            emit_batch_spans(recorder, &order, &tasks, &responses);
        }

        // Seed write-back happens after the join, from the submission-order
        // responses: each keyed chain stores its *last* converged answer.
        // Chain keys are disjoint across tasks, so the write order is
        // immaterial and the stored seeds are shard-count-independent.
        if let Some(store) = seeds {
            if self.warm_start {
                for (task, &(start, end)) in tasks.iter().enumerate() {
                    let Some(key) = keys[task] else { continue };
                    for &index in order[start..end].iter().rev() {
                        let Ok(response) = &responses[index] else { continue };
                        if !response.converged() {
                            continue;
                        }
                        let seed = match response {
                            ServeResponse::SingleFile(s) => {
                                SessionSeed::SingleFile(s.allocation.clone())
                            }
                            ServeResponse::MultiFile(s) => {
                                SessionSeed::MultiFile(s.allocations.clone())
                            }
                            ServeResponse::Ring(_) => continue,
                        };
                        store.insert(key, seed);
                        break;
                    }
                }
            }
        }
        ServeOutput { responses, shard_metrics, aggregate }
    }

    /// Plans the batch into scheduling tasks. Returns `(order, tasks,
    /// keys)`: `order` is a permutation of the request indices, each task
    /// is a `(start, end)` range into it, and `keys[t]` is task `t`'s
    /// warm-start chain key (`None` for keyless singletons). Cold mode
    /// emits one singleton task per request in submission order (so
    /// execution matches the historical chunked scheduler exactly); warm
    /// mode groups same-key requests into chains in first-appearance order,
    /// keyless (ring) requests staying singletons.
    #[allow(clippy::type_complexity)]
    fn plan_tasks(
        &self,
        requests: &[ServeRequest],
    ) -> (Vec<usize>, Vec<(usize, usize)>, Vec<Option<u64>>) {
        if !self.warm_start {
            let order: Vec<usize> = (0..requests.len()).collect();
            let tasks = (0..requests.len()).map(|i| (i, i + 1)).collect();
            let keys = vec![None; requests.len()];
            return (order, tasks, keys);
        }
        let mut chains: Vec<(Option<u64>, Vec<usize>)> = Vec::new();
        let mut chain_of_key: HashMap<u64, usize, FnvBuildHasher> =
            HashMap::with_hasher(FnvBuildHasher);
        for (i, request) in requests.iter().enumerate() {
            match warm_key(request) {
                Some(key) => match chain_of_key.get(&key) {
                    Some(&c) => chains[c].1.push(i),
                    None => {
                        chain_of_key.insert(key, chains.len());
                        chains.push((Some(key), vec![i]));
                    }
                },
                None => chains.push((None, vec![i])),
            }
        }
        let mut order = Vec::with_capacity(requests.len());
        let mut tasks = Vec::with_capacity(chains.len());
        let mut keys = Vec::with_capacity(chains.len());
        for (key, chain) in chains {
            let start = order.len();
            order.extend(chain);
            tasks.push((start, order.len()));
            keys.push(key);
        }
        (order, tasks, keys)
    }
}

/// Synthesizes the batch's span tree on the recorder's virtual timeline:
/// one `serve.batch` span (a child of the recorder's current context, or a
/// new root), one `serve.task` child per scheduling task, one `serve.solve`
/// leaf per request. Durations are virtual — a request's width is its
/// solved iteration count (errors are zero-width) — and the tasks tile the
/// batch contiguously in task order, so per-layer self time telescopes
/// exactly to the batch span's duration. Ids come from one
/// [`Recorder::reserve_span_ids`] block; every end is emitted before its
/// parent's end, the order the flight recorder's bookkeeping relies on.
fn emit_batch_spans(
    recorder: &mut dyn Recorder,
    order: &[usize],
    tasks: &[(usize, usize)],
    responses: &[Result<ServeResponse, ServeError>],
) {
    let dur_of = |i: usize| -> u64 {
        responses[i].as_ref().map(|r| r.iterations() as u64).unwrap_or(0)
    };
    let base = recorder.now();
    let total: u64 = order.iter().map(|&i| dur_of(i)).sum();
    let first = recorder.reserve_span_ids(1 + tasks.len() as u64 + order.len() as u64);
    let batch = match recorder.current_trace() {
        Some(parent) => parent.child(first),
        None => TraceContext::root(first),
    };
    let mut next_id = first + 1;
    emit_span_start(recorder, "serve.batch", batch, base);
    let mut t = base;
    for &(start, end) in tasks {
        let task_ctx = batch.child(next_id);
        next_id += 1;
        let task_dur: u64 = order[start..end].iter().map(|&i| dur_of(i)).sum();
        emit_span_start(recorder, "serve.task", task_ctx, t);
        let mut rt = t;
        for &i in &order[start..end] {
            let ctx = task_ctx.child(next_id);
            next_id += 1;
            let d = dur_of(i);
            emit_span(recorder, "serve.solve", ctx, rt, rt + d);
            rt += d;
        }
        emit_span_end(recorder, "serve.task", task_ctx, t + task_dur, task_dur);
        t += task_dur;
    }
    emit_span_end(recorder, "serve.batch", batch, base + total, total);
}

/// A worker's collected `(request index, result)` pairs, scattered back to
/// submission-order slots after the join.
type TaskOutput = Vec<(usize, Result<ServeResponse, ServeError>)>;

fn scatter(responses: &mut [Option<Result<ServeResponse, ServeError>>], out: TaskOutput) {
    for (index, result) in out {
        responses[index] = Some(result);
    }
}

/// Pops the next task for worker `w`: front of its own deque, else the back
/// of the first non-empty victim deque in ring order (a steal, counted in
/// the worker's registry). `None` means every deque is empty — and since
/// tasks are never re-queued, empty means finished.
fn next_task(
    queues: &[Mutex<VecDeque<usize>>],
    w: usize,
    registry: &mut MetricsRegistry,
) -> Option<usize> {
    if let Some(task) = queues[w].lock().expect("serve queue poisoned").pop_front() {
        return Some(task);
    }
    for offset in 1..queues.len() {
        let victim = (w + offset) % queues.len();
        if let Some(task) = queues[victim].lock().expect("serve queue poisoned").pop_back() {
            registry.incr("serve.steals", 1);
            return Some(task);
        }
    }
    None
}

/// The warm-start chain key of a request: requests with the same key are
/// seeded from each other's converged answers. The key covers the family
/// tag, the problem dimensions, the solver parameters (α, ε) and — when
/// the caller provides one — the topology fingerprint, a deliberately
/// *structural* fingerprint: perturbed-workload (λ-only) streams over one
/// topology share it (that is the whole point of warm starts), while a
/// topology change rotates the key so stale seeds from the old network
/// are never consulted. A false merge only changes a starting iterate,
/// never a solution's fixed point, but an un-rotated key would warm a new
/// topology's solve from an allocation optimized for the old one — legal,
/// just slow. Ring requests have no warm path and return `None`.
fn warm_key(request: &ServeRequest) -> Option<u64> {
    let mut h = Fnv64::new();
    match request {
        ServeRequest::SingleFile { problem, alpha, epsilon, topology, .. } => {
            h.write_u64(1);
            h.write_usize(problem.dimension());
            h.write_u64(alpha.to_bits());
            h.write_u64(epsilon.to_bits());
            if let Some(fingerprint) = topology {
                h.write_u64(*fingerprint);
            }
        }
        ServeRequest::MultiFile { problem, alpha, epsilon, topology, .. } => {
            h.write_u64(2);
            h.write_usize(problem.file_count());
            h.write_usize(problem.node_count());
            h.write_u64(alpha.to_bits());
            h.write_u64(epsilon.to_bits());
            if let Some(fingerprint) = topology {
                h.write_u64(*fingerprint);
            }
        }
        ServeRequest::Ring { .. } => return None,
    }
    Some(h.finish64())
}

/// One shard's solver state: the scratch buffers reused across every
/// request in the shard's chunk, so the steady state allocates only what
/// the returned solutions themselves need.
struct ShardWorker {
    econ_scratch: OptimizerScratch,
    multi_scratch: MultiFileScratch,
}

impl ShardWorker {
    fn new() -> Self {
        ShardWorker { econ_scratch: OptimizerScratch::new(), multi_scratch: MultiFileScratch::new() }
    }

    /// Executes one scheduling task — a single request, or a warm-start
    /// chain of same-key requests solved in submission order, each
    /// converged answer seeding the next solve. Seeds never cross a task
    /// boundary *within a batch*: both scratches are disarmed on entry and
    /// exit, so a task's outputs depend only on its own contents — and on
    /// the optional cross-batch `seed`, which is part of those contents
    /// (snapshotted per task before scheduling). That is the property the
    /// work-stealing scheduler's determinism rests on.
    ///
    /// A session `seed` arms the matching scratch before the chain head, so
    /// the head itself runs seeded (counted by `serve.warm_starts`); the
    /// cold-baseline bookkeeping stays unset for such chains, so
    /// `econ.warm_start_iters_saved` never compares against a baseline from
    /// a different batch.
    fn run_task(
        &mut self,
        requests: &[ServeRequest],
        chain: &[usize],
        warm: bool,
        seed: Option<&SessionSeed>,
        registry: &mut MetricsRegistry,
        out: &mut TaskOutput,
    ) {
        self.econ_scratch.clear_warm_start();
        self.multi_scratch.clear_warm_start();
        if warm {
            match seed {
                Some(SessionSeed::SingleFile(x)) => self.econ_scratch.start_from(x),
                Some(SessionSeed::MultiFile(xs)) => self.multi_scratch.start_from(xs),
                None => {}
            }
        }
        let mut baseline: Option<usize> = None;
        for (pos, &index) in chain.iter().enumerate() {
            let request = &requests[index];
            let armed = warm
                && match request {
                    ServeRequest::SingleFile { .. } => self.econ_scratch.has_warm_start(),
                    ServeRequest::MultiFile { .. } => self.multi_scratch.has_warm_start(),
                    ServeRequest::Ring { .. } => false,
                };
            let result = self.solve(request, registry);
            if let Ok(response) = &result {
                if armed {
                    registry.incr("serve.warm_starts", 1);
                    // Savings are measured against the chain's most recent
                    // cold solve — the iterations this request would have
                    // needed had it, like that one, started from scratch.
                    if let Some(cold) = baseline {
                        registry.incr(
                            "econ.warm_start_iters_saved",
                            cold.saturating_sub(response.iterations()) as u64,
                        );
                    }
                } else {
                    baseline = Some(response.iterations());
                }
                if warm && pos + 1 < chain.len() && response.converged() {
                    match response {
                        ServeResponse::SingleFile(s) => {
                            self.econ_scratch.start_from(&s.allocation);
                        }
                        ServeResponse::MultiFile(s) => {
                            self.multi_scratch.start_from(&s.allocations);
                        }
                        ServeResponse::Ring(_) => {}
                    }
                }
            }
            out.push((index, result));
        }
        self.econ_scratch.clear_warm_start();
        self.multi_scratch.clear_warm_start();
    }

    fn solve(
        &mut self,
        request: &ServeRequest,
        registry: &mut MetricsRegistry,
    ) -> Result<ServeResponse, ServeError> {
        registry.incr("serve.requests", 1);
        let result = match request {
            ServeRequest::SingleFile { problem, initial, alpha, epsilon, max_iterations, .. } => {
                ResourceDirectedOptimizer::new(StepSize::Fixed(*alpha))
                    .with_epsilon(*epsilon)
                    .with_max_iterations(*max_iterations)
                    .run_observed_with_scratch(problem, initial, &mut self.econ_scratch, registry)
                    .map(ServeResponse::SingleFile)
                    .map_err(|e| ServeError { message: e.to_string() })
            }
            ServeRequest::MultiFile { problem, initial, alpha, epsilon, max_iterations, .. } => {
                problem
                .solve_observed(
                    initial,
                    *alpha,
                    *epsilon,
                    *max_iterations,
                    Parallelism::Sequential,
                    &mut self.multi_scratch,
                    registry,
                )
                .map(ServeResponse::MultiFile)
                .map_err(|e| ServeError { message: e.to_string() })
            }
            ServeRequest::Ring { ring, initial, alpha, cost_delta_tolerance, max_iterations } => {
                RingSolver::new(*alpha)
                    .with_cost_delta_tolerance(*cost_delta_tolerance)
                    .with_max_iterations(*max_iterations)
                    .solve_observed(ring, initial, registry)
                    .map(ServeResponse::Ring)
                    .map_err(|e| ServeError { message: e.to_string() })
            }
        };
        match &result {
            Ok(response) => {
                registry.observe("serve.request_iterations", response.iterations() as f64);
            }
            Err(_) => registry.incr("serve.errors", 1),
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_net::{topology, AccessPattern};
    use fap_obs::{Value, SPAN_START};

    fn single_file_request(seed: u64) -> ServeRequest {
        let graph = topology::ring(5, 1.0).unwrap();
        let pattern = AccessPattern::random(5, 0.2..0.6, seed).unwrap();
        let problem = SingleFileProblem::mm1(&graph, &pattern, 4.0, 1.0).unwrap();
        ServeRequest::SingleFile {
            problem,
            initial: vec![0.2; 5],
            alpha: 0.1,
            epsilon: 1e-6,
            max_iterations: 100_000,
            topology: None,
        }
    }

    fn multi_file_request(seed: u64) -> ServeRequest {
        let graph = topology::ring(4, 1.0).unwrap();
        let patterns: Vec<AccessPattern> =
            (0..3).map(|j| AccessPattern::random(4, 0.1..0.4, seed + j).unwrap()).collect();
        let problem = MultiFileProblem::mm1(&graph, &patterns, 6.0, 1.0).unwrap();
        ServeRequest::MultiFile {
            problem,
            initial: vec![vec![0.25; 4]; 3],
            alpha: 0.1,
            epsilon: 1e-6,
            max_iterations: 50_000,
            topology: None,
        }
    }

    fn ring_request() -> ServeRequest {
        let ring = VirtualRing::new(vec![4.0, 1.0, 1.0, 1.0], vec![0.25; 4], vec![1.5; 4], 2.0, 1.0)
            .unwrap();
        ServeRequest::Ring {
            ring,
            initial: vec![2.0, 0.0, 0.0, 0.0],
            alpha: 0.1,
            cost_delta_tolerance: 1e-7,
            max_iterations: 3_000,
        }
    }

    fn mixed_batch() -> Vec<ServeRequest> {
        let mut requests = Vec::new();
        for i in 0..3 {
            requests.push(single_file_request(100 + i));
            requests.push(multi_file_request(200 + i));
            requests.push(ring_request());
        }
        requests
    }

    #[test]
    fn every_shard_count_matches_the_sequential_solve() {
        let requests = mixed_batch();
        let sequential = BatchServer::new(Parallelism::Sequential).serve(&requests);
        assert_eq!(sequential.err_count(), 0);
        for shards in [2, 3, 8, 64] {
            let sharded = BatchServer::new(Parallelism::Fixed(shards)).serve(&requests);
            assert_eq!(
                sequential.responses, sharded.responses,
                "{shards} shards must be bit-identical to sequential"
            );
        }
    }

    #[test]
    fn shard_count_clamps_to_the_request_count() {
        let server = BatchServer::new(Parallelism::Fixed(64));
        assert_eq!(server.shards_for(3), 3);
        assert_eq!(server.shards_for(0), 1);
        let output = server.serve(&[ring_request(), ring_request()]);
        assert_eq!(output.shard_metrics.len(), 2);
    }

    #[test]
    fn aggregate_counters_are_shard_count_independent() {
        let requests = mixed_batch();
        let sequential = BatchServer::new(Parallelism::Sequential).serve(&requests);
        let sharded = BatchServer::new(Parallelism::Fixed(4)).serve(&requests);
        for counter in
            ["serve.requests", "econ.iterations", "core.iterations", "ring.iterations"]
        {
            assert!(sequential.aggregate.counter(counter) > 0, "{counter} never recorded");
            assert_eq!(
                sequential.aggregate.counter(counter),
                sharded.aggregate.counter(counter),
                "{counter} must not depend on the shard count"
            );
        }
        fn iters(o: &ServeOutput) -> &fap_obs::Histogram {
            o.aggregate.histogram("serve.request_iterations").unwrap()
        }
        assert_eq!(iters(&sequential).count(), requests.len() as u64);
        assert_eq!(iters(&sequential), iters(&sharded));
    }

    #[test]
    fn aggregate_is_the_sum_of_the_shards() {
        let requests = mixed_batch();
        let output = BatchServer::new(Parallelism::Fixed(3)).serve(&requests);
        assert_eq!(output.shard_metrics.len(), 3);
        let shard_sum: u64 =
            output.shard_metrics.iter().map(|r| r.counter("serve.requests")).sum();
        assert_eq!(shard_sum, requests.len() as u64);
        assert_eq!(output.aggregate.counter("serve.requests"), shard_sum);
        assert_eq!(output.aggregate.gauge_value("serve.shards"), Some(3.0));
    }

    #[test]
    fn caller_recorder_sees_the_merged_metrics() {
        let requests = mixed_batch();
        let mut tele = fap_obs::Telemetry::manual();
        let output = BatchServer::new(Parallelism::Fixed(2)).serve_observed(&requests, &mut tele);
        assert_eq!(
            tele.registry().counter("serve.requests"),
            output.aggregate.counter("serve.requests")
        );
        assert_eq!(
            tele.registry().counter("econ.iterations"),
            output.aggregate.counter("econ.iterations")
        );
        assert_eq!(tele.registry().gauge_value("serve.shards"), Some(2.0));
    }

    #[test]
    fn a_bad_request_fails_alone() {
        let mut requests = mixed_batch();
        // An infeasible start: the simplex constraint is violated.
        if let ServeRequest::SingleFile { initial, .. } = &mut requests[3] {
            *initial = vec![0.9; 5];
        } else {
            panic!("expected a single-file request at index 3");
        }
        let output = BatchServer::new(Parallelism::Fixed(3)).serve(&requests);
        assert_eq!(output.err_count(), 1);
        assert!(output.responses[3].is_err());
        assert_eq!(output.aggregate.counter("serve.errors"), 1);
        // And the rest still match an all-good sequential solve of the
        // same (mutated) batch.
        let sequential = BatchServer::new(Parallelism::Sequential).serve(&requests);
        assert_eq!(sequential.responses, output.responses);
    }

    #[test]
    fn empty_batch_is_fine() {
        let output = BatchServer::new(Parallelism::Auto).serve(&[]);
        assert!(output.responses.is_empty());
        assert_eq!(output.shard_metrics.len(), 1);
        assert_eq!(output.aggregate.counter("serve.requests"), 0);
    }

    #[test]
    fn warm_keys_group_by_family_shape_and_parameters() {
        let a = single_file_request(100);
        let b = single_file_request(777); // different pattern, same shape
        assert_eq!(warm_key(&a), warm_key(&b), "perturbed workloads must share a chain");
        assert_eq!(warm_key(&ring_request()), None, "ring solves have no warm path");
        assert_ne!(
            warm_key(&a),
            warm_key(&multi_file_request(200)),
            "families must never share a chain"
        );
        let mut c = single_file_request(100);
        if let ServeRequest::SingleFile { epsilon, .. } = &mut c {
            *epsilon = 1e-9;
        }
        assert_ne!(warm_key(&a), warm_key(&c), "solver parameters are part of the key");
    }

    #[test]
    fn cold_planning_is_one_singleton_task_per_request() {
        let requests = mixed_batch();
        let (order, tasks, keys) = BatchServer::new(Parallelism::Auto).plan_tasks(&requests);
        assert_eq!(order, (0..requests.len()).collect::<Vec<_>>());
        assert_eq!(tasks, (0..requests.len()).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert!(keys.iter().all(Option::is_none), "cold tasks are keyless");
    }

    #[test]
    fn warm_planning_chains_same_key_requests_in_first_appearance_order() {
        let requests = mixed_batch();
        let server = BatchServer::new(Parallelism::Auto).with_warm_start(true);
        let (order, tasks, keys) = server.plan_tasks(&requests);
        // Submission order: single, multi, ring, repeated three times.
        // Singles chain, multis chain, each ring stays a singleton.
        assert_eq!(order, vec![0, 3, 6, 1, 4, 7, 2, 5, 8]);
        assert_eq!(tasks, vec![(0, 3), (3, 6), (6, 7), (7, 8), (8, 9)]);
        assert_eq!(keys[0], warm_key(&requests[0]));
        assert_eq!(keys[1], warm_key(&requests[1]));
        assert_eq!(&keys[2..], &[None, None, None], "ring singletons stay keyless");
    }

    #[test]
    fn stealing_pops_the_back_of_the_first_non_empty_victim() {
        let queues = vec![
            Mutex::new(VecDeque::new()),
            Mutex::new(VecDeque::from([1, 2])),
            Mutex::new(VecDeque::from([3])),
        ];
        let mut registry = MetricsRegistry::new();
        // Worker 0 is dry: it steals the *back* of worker 1's deque.
        assert_eq!(next_task(&queues, 0, &mut registry), Some(2));
        assert_eq!(registry.counter("serve.steals"), 1);
        // Worker 1 still owns its front.
        assert_eq!(next_task(&queues, 1, &mut registry), Some(1));
        assert_eq!(registry.counter("serve.steals"), 1);
        // Everyone dry once the last victim is drained.
        assert_eq!(next_task(&queues, 0, &mut registry), Some(3));
        assert_eq!(next_task(&queues, 0, &mut registry), None);
        assert_eq!(registry.counter("serve.steals"), 2);
    }

    #[test]
    fn warm_responses_are_bit_identical_across_every_shard_count() {
        let requests = mixed_batch();
        let warm_sequential =
            BatchServer::new(Parallelism::Sequential).with_warm_start(true).serve(&requests);
        assert_eq!(warm_sequential.err_count(), 0);
        for shards in [1, 2, 4, 8] {
            let sharded = BatchServer::new(Parallelism::Fixed(shards))
                .with_warm_start(true)
                .serve(&requests);
            assert_eq!(
                warm_sequential.responses, sharded.responses,
                "{shards} warm shards must be bit-identical to a warm sequential run"
            );
        }
    }

    #[test]
    fn warm_starts_save_iterations_and_are_counted() {
        // A perturbed workload: one topology and solver configuration,
        // slightly different access patterns — the scenario warm starts
        // exist for.
        let graph = topology::ring(5, 1.0).unwrap();
        let requests: Vec<ServeRequest> = (0..6)
            .map(|i| {
                let rates: Vec<f64> = (0..5)
                    .map(|n| 0.2 + 0.08 * n as f64 + 0.002 * (i as f64) * (n as f64 + 1.0))
                    .collect();
                let pattern = AccessPattern::new(rates).unwrap();
                let problem = SingleFileProblem::mm1(&graph, &pattern, 4.0, 1.0).unwrap();
                ServeRequest::SingleFile {
                    problem,
                    initial: vec![0.2; 5],
                    alpha: 0.1,
                    epsilon: 1e-6,
                    max_iterations: 100_000,
                    topology: None,
                }
            })
            .collect();
        let cold = BatchServer::new(Parallelism::Sequential).serve(&requests);
        let warm =
            BatchServer::new(Parallelism::Sequential).with_warm_start(true).serve(&requests);
        assert_eq!(warm.err_count(), 0);
        // Every request after the chain head runs seeded.
        assert_eq!(warm.aggregate.counter("serve.warm_starts"), requests.len() as u64 - 1);
        assert_eq!(
            warm.aggregate.counter("econ.warm_starts"),
            warm.aggregate.counter("serve.warm_starts"),
            "the serve-side and engine-side warm counts must agree"
        );
        assert!(
            warm.aggregate.counter("econ.warm_start_iters_saved") > 0,
            "seeding from a converged neighbour must save iterations"
        );
        assert!(
            warm.aggregate.counter("econ.iterations") < cold.aggregate.counter("econ.iterations"),
            "the warm batch must run fewer total iterations than the cold one"
        );
        // Warm answers land on the same optimum the cold solves found.
        for (w, c) in warm.responses.iter().zip(&cold.responses) {
            let (ServeResponse::SingleFile(w), ServeResponse::SingleFile(c)) =
                (w.as_ref().unwrap(), c.as_ref().unwrap())
            else {
                panic!("expected single-file responses");
            };
            assert!(w.converged && c.converged);
            assert!(
                (w.final_utility - c.final_utility).abs() <= 1e-9,
                "warm and cold optima diverged: {} vs {}",
                w.final_utility,
                c.final_utility
            );
        }
    }

    #[test]
    fn the_first_request_in_a_chain_is_never_seeded() {
        let requests = vec![single_file_request(42)];
        let warm =
            BatchServer::new(Parallelism::Sequential).with_warm_start(true).serve(&requests);
        assert_eq!(warm.aggregate.counter("serve.warm_starts"), 0);
        assert_eq!(warm.aggregate.counter("econ.warm_starts"), 0);
        // And a singleton chain matches the cold server bit for bit.
        let cold = BatchServer::new(Parallelism::Sequential).serve(&requests);
        assert_eq!(warm.responses, cold.responses);
    }

    /// A perturbed-workload stream split into two batches — the daemon's
    /// steady state.
    fn perturbed_stream(batch: usize) -> Vec<ServeRequest> {
        let graph = topology::ring(5, 1.0).unwrap();
        (0..4)
            .map(|i| {
                let k = (batch * 4 + i) as f64;
                let rates: Vec<f64> =
                    (0..5).map(|n| 0.2 + 0.08 * n as f64 + 0.002 * k * (n as f64 + 1.0)).collect();
                let pattern = AccessPattern::new(rates).unwrap();
                let problem = SingleFileProblem::mm1(&graph, &pattern, 4.0, 1.0).unwrap();
                ServeRequest::SingleFile {
                    problem,
                    initial: vec![0.2; 5],
                    alpha: 0.1,
                    epsilon: 1e-6,
                    max_iterations: 100_000,
                    topology: None,
                }
            })
            .collect()
    }

    #[test]
    fn an_empty_seed_store_matches_the_plain_warm_path_and_fills_up() {
        let requests = perturbed_stream(0);
        let server = BatchServer::new(Parallelism::Sequential).with_warm_start(true);
        let plain = server.serve(&requests);
        let mut seeds = SessionSeeds::new();
        let session = server.serve_session(&requests, &mut seeds);
        assert_eq!(plain.responses, session.responses);
        assert_eq!(seeds.len(), 1, "one single-file chain converged into one seed");
    }

    #[test]
    fn session_seeds_warm_the_next_batch_including_its_chain_head() {
        let server = BatchServer::new(Parallelism::Sequential).with_warm_start(true);
        let mut seeds = SessionSeeds::new();
        let first = server.serve_session(&perturbed_stream(0), &mut seeds);
        // Batch 1: the chain head is cold, the other three are seeded.
        assert_eq!(first.aggregate.counter("serve.warm_starts"), 3);
        let second_requests = perturbed_stream(1);
        let second = server.serve_session(&second_requests, &mut seeds);
        // Batch 2: even the head starts from batch 1's converged tail.
        assert_eq!(second.aggregate.counter("serve.warm_starts"), 4);
        // Seeding changed iterates, never optima: compare against cold.
        let cold = BatchServer::new(Parallelism::Sequential).serve(&second_requests);
        assert!(
            second.aggregate.counter("econ.iterations")
                < cold.aggregate.counter("econ.iterations"),
            "cross-batch seeds must save iterations"
        );
        for (s, c) in second.responses.iter().zip(&cold.responses) {
            let (ServeResponse::SingleFile(s), ServeResponse::SingleFile(c)) =
                (s.as_ref().unwrap(), c.as_ref().unwrap())
            else {
                panic!("expected single-file responses");
            };
            assert!(s.converged && c.converged);
            assert!((s.final_utility - c.final_utility).abs() <= 1e-9);
        }
    }

    /// [`perturbed_stream`] on an explicit graph with a topology
    /// fingerprint attached — the shape the CLI spec layer produces.
    fn fingerprinted_stream(
        batch: usize,
        graph: &fap_net::Graph,
        fingerprint: u64,
    ) -> Vec<ServeRequest> {
        let n = graph.node_count();
        (0..4)
            .map(|i| {
                let k = (batch * 4 + i) as f64;
                let rates: Vec<f64> = (0..n)
                    .map(|v| 0.2 + 0.08 * v as f64 + 0.002 * k * (v as f64 + 1.0))
                    .collect();
                let pattern = AccessPattern::new(rates).unwrap();
                let problem = SingleFileProblem::mm1(graph, &pattern, 4.0, 1.0).unwrap();
                ServeRequest::SingleFile {
                    problem,
                    initial: vec![1.0 / n as f64; n],
                    alpha: 0.1,
                    epsilon: 1e-6,
                    max_iterations: 100_000,
                    topology: Some(fingerprint),
                }
            })
            .collect()
    }

    #[test]
    fn topology_fingerprints_partition_warm_keys() {
        let with_fp = |seed: u64, fp: Option<u64>| {
            let mut request = single_file_request(seed);
            if let ServeRequest::SingleFile { topology, .. } = &mut request {
                *topology = fp;
            }
            request
        };
        // λ-only perturbations on one fingerprinted topology still chain.
        assert_eq!(
            warm_key(&with_fp(100, Some(11))),
            warm_key(&with_fp(777, Some(11))),
            "same topology, different workload: one chain"
        );
        // A different topology — same dimension, α, ε — rotates the key.
        assert_ne!(
            warm_key(&with_fp(100, Some(11))),
            warm_key(&with_fp(100, Some(22))),
            "a topology change must invalidate the chain"
        );
        // Fingerprinted and unfingerprinted requests never share a chain
        // (an unfingerprinted peer could be on any topology).
        assert_ne!(warm_key(&with_fp(100, Some(11))), warm_key(&with_fp(100, None)));
    }

    #[test]
    fn session_seeds_survive_lambda_drift_but_not_topology_changes() {
        let server = BatchServer::new(Parallelism::Sequential).with_warm_start(true);
        let ring = topology::ring(5, 1.0).unwrap();
        let mesh = topology::full_mesh(5, 1.0).unwrap();
        // Distinct stand-in fingerprints (the spec layer derives real ones
        // from the graph; the serving layer only compares them).
        let (ring_fp, mesh_fp) = (1, 2);

        let mut seeds = SessionSeeds::new();
        let first = server.serve_session(&fingerprinted_stream(0, &ring, ring_fp), &mut seeds);
        assert_eq!(first.aggregate.counter("serve.warm_starts"), 3, "cold head");
        // λ-only drift on the same topology: the next batch's head is
        // seeded from the previous batch's tail.
        let second = server.serve_session(&fingerprinted_stream(1, &ring, ring_fp), &mut seeds);
        assert_eq!(
            second.aggregate.counter("serve.warm_starts"),
            4,
            "a mid-session λ-only change must reuse session seeds"
        );
        // A topology change — same dimension and solver parameters, so
        // the old structural key would have collided — must run its head
        // cold instead of starting from the ring's optimum.
        let third = server.serve_session(&fingerprinted_stream(2, &mesh, mesh_fp), &mut seeds);
        assert_eq!(
            third.aggregate.counter("serve.warm_starts"),
            3,
            "a mid-session topology change must invalidate session seeds"
        );
        // And the mesh responses equal a fresh no-seed serve: the ring
        // seeds were never consulted.
        let mut fresh = SessionSeeds::new();
        let fresh_third =
            server.serve_session(&fingerprinted_stream(2, &mesh, mesh_fp), &mut fresh);
        assert_eq!(third.responses, fresh_third.responses);
    }

    #[test]
    fn session_responses_are_bit_identical_across_shard_counts() {
        let batches = [perturbed_stream(0), mixed_batch(), perturbed_stream(1)];
        let mut reference_seeds = SessionSeeds::new();
        let reference: Vec<_> = batches
            .iter()
            .map(|batch| {
                BatchServer::new(Parallelism::Sequential)
                    .with_warm_start(true)
                    .serve_session(batch, &mut reference_seeds)
                    .responses
            })
            .collect();
        for shards in [2, 4, 8] {
            let server = BatchServer::new(Parallelism::Fixed(shards)).with_warm_start(true);
            let mut seeds = SessionSeeds::new();
            for (batch, expected) in batches.iter().zip(&reference) {
                let output = server.serve_session(batch, &mut seeds);
                assert_eq!(
                    expected, &output.responses,
                    "{shards}-shard session must match the sequential session"
                );
            }
        }
    }

    #[test]
    fn seeds_are_inert_without_warm_start() {
        let requests = perturbed_stream(0);
        let server = BatchServer::new(Parallelism::Sequential); // cold
        let mut seeds = SessionSeeds::new();
        let session = server.serve_session(&requests, &mut seeds);
        let plain = server.serve(&requests);
        assert_eq!(plain.responses, session.responses);
        assert!(seeds.is_empty(), "a cold server must never write seeds");
        assert_eq!(session.aggregate.counter("serve.warm_starts"), 0);
    }

    /// Renders only the event stream (no registry trailer), which is the
    /// part of a traced export that must be shard-count independent.
    fn events_jsonl(tele: &fap_obs::Telemetry) -> String {
        let mut out = String::new();
        for event in tele.events() {
            fap_obs::jsonl::write_event(&mut out, event);
        }
        out
    }

    #[test]
    fn tracing_changes_no_response_bits_at_any_shard_count() {
        let requests = mixed_batch();
        let plain = BatchServer::new(Parallelism::Sequential).serve(&requests);
        let mut reference_spans: Option<String> = None;
        for shards in [1, 2, 3, 4, 8, 64] {
            let mut traced = fap_obs::Telemetry::manual().with_tracing(true);
            let output = BatchServer::new(Parallelism::Fixed(shards))
                .serve_observed(&requests, &mut traced);
            assert_eq!(
                plain.responses, output.responses,
                "tracing at {shards} shards must not change the solved bits"
            );
            let spans = events_jsonl(&traced);
            assert!(spans.contains("serve.batch") && spans.contains("serve.solve"));
            match &reference_spans {
                None => reference_spans = Some(spans),
                Some(reference) => assert_eq!(
                    reference, &spans,
                    "the span stream must be identical at {shards} shards"
                ),
            }
        }
    }

    #[test]
    fn warm_chain_spans_are_steal_invariant_and_tile_the_batch() {
        // Warm chains are the indivisible task units the stealer moves
        // around; their spans must come out identical whatever the shard
        // count, and the task spans must tile the batch span exactly.
        let requests = mixed_batch();
        let mut reference: Option<String> = None;
        for shards in [1, 2, 4, 8] {
            let mut traced = fap_obs::Telemetry::manual().with_tracing(true);
            BatchServer::new(Parallelism::Fixed(shards))
                .with_warm_start(true)
                .serve_observed(&requests, &mut traced);
            let spans = events_jsonl(&traced);
            match &reference {
                None => reference = Some(spans),
                Some(r) => assert_eq!(r, &spans, "{shards} shards"),
            }
        }
        let traced = reference.unwrap();
        // The batch span's duration equals the sum of its task durations:
        // replay into a flight recorder and check the self-time partition.
        let mut fr = fap_obs::FlightRecorder::default();
        let mut tele = fap_obs::Telemetry::manual().with_tracing(true);
        BatchServer::new(Parallelism::Sequential)
            .with_warm_start(true)
            .serve_observed(&requests, &mut Tee::new(&mut tele, &mut fr));
        assert_eq!(fr.completed_traces(), 1, "one batch, one root trace");
        let root = fr.recent().next().unwrap();
        assert_eq!(root.name, "serve.batch");
        let self_total: u64 = fr.layer_self_times().map(|(_, v)| v).sum();
        assert_eq!(
            self_total, root.dur,
            "self time must partition the batch's virtual duration"
        );
        // Leaves own every tick: tasks and the batch are pure containers.
        assert_eq!(fr.layer_self_time("serve"), root.dur);
        assert!(traced.contains("serve.task"));
    }

    #[test]
    fn batch_spans_nest_under_an_installed_context() {
        let requests = vec![ring_request()];
        let mut tele = fap_obs::Telemetry::manual().with_tracing(true);
        let root_id = tele.reserve_span_ids(1);
        let root = TraceContext::root(root_id);
        tele.set_current_trace(Some(root));
        BatchServer::new(Parallelism::Sequential).serve_observed(&requests, &mut tele);
        let batch_start = tele
            .events()
            .iter()
            .find(|e| {
                e.name() == SPAN_START && e.field("name") == Some(Value::Str("serve.batch"))
            })
            .expect("the batch span must be emitted");
        assert_eq!(batch_start.field("parent"), Some(Value::U64(root_id)));
        assert_eq!(batch_start.field("trace"), Some(Value::U64(root.trace_id)));
        // The installed context is untouched afterwards.
        assert_eq!(tele.current_trace(), Some(root));
    }

    #[test]
    fn a_failed_link_does_not_break_its_chain() {
        let mut requests: Vec<ServeRequest> =
            (0..4).map(|i| single_file_request(300 + i)).collect();
        if let ServeRequest::SingleFile { initial, .. } = &mut requests[1] {
            *initial = vec![0.9; 5]; // infeasible: validation rejects it
        }
        let warm_sequential =
            BatchServer::new(Parallelism::Sequential).with_warm_start(true).serve(&requests);
        assert_eq!(warm_sequential.err_count(), 1);
        assert!(warm_sequential.responses[1].is_err());
        for shards in [2, 4] {
            let sharded = BatchServer::new(Parallelism::Fixed(shards))
                .with_warm_start(true)
                .serve(&requests);
            assert_eq!(warm_sequential.responses, sharded.responses);
        }
    }
}
