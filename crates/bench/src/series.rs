//! Result series and CSV output.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// A named series of `(x, y)` points — one curve of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (e.g. `"alpha=0.3"`).
    pub name: String,
    /// The points, in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label and points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.into(), points }
    }

    /// Creates a series from y-values indexed 0, 1, 2, … (iteration
    /// profiles).
    pub fn from_values(name: impl Into<String>, values: &[f64]) -> Self {
        Series::new(name, values.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect())
    }

    /// The final y-value, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }
}

/// Renders a set of series as a long-format CSV (`series,x,y`).
pub fn to_csv(series: &[Series]) -> String {
    let mut out = String::from("series,x,y\n");
    for s in series {
        for &(x, y) in &s.points {
            let _ = writeln!(out, "{},{},{}", s.name, x, y);
        }
    }
    out
}

/// Renders a compact fixed-width table of one series per column, padded
/// with blanks where series lengths differ — for terminal inspection.
pub fn to_table(series: &[Series]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>6}", "x");
    for s in series {
        let _ = write!(out, " {:>18}", s.name);
    }
    out.push('\n');
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for row in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(row).map(|&(x, _)| x))
            .unwrap_or(row as f64);
        let _ = write!(out, "{x:>6.1}");
        for s in series {
            match s.points.get(row) {
                Some(&(_, y)) => {
                    let _ = write!(out, " {y:>18.6}");
                }
                None => {
                    let _ = write!(out, " {:>18}", "");
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_indexes_by_iteration() {
        let s = Series::from_values("c", &[3.0, 2.0, 1.5]);
        assert_eq!(s.points, vec![(0.0, 3.0), (1.0, 2.0), (2.0, 1.5)]);
        assert_eq!(s.last_y(), Some(1.5));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = vec![Series::new("a", vec![(0.0, 1.0)]), Series::new("b", vec![(0.0, 2.0)])];
        let csv = to_csv(&s);
        assert!(csv.starts_with("series,x,y\n"));
        assert!(csv.contains("a,0,1"));
        assert!(csv.contains("b,0,2"));
    }

    #[test]
    fn table_pads_ragged_series() {
        let s = vec![
            Series::from_values("long", &[1.0, 2.0, 3.0]),
            Series::from_values("short", &[9.0]),
        ];
        let table = to_table(&s);
        assert_eq!(table.lines().count(), 4); // header + 3 rows
    }
}
