//! The `scale` benchmark: sequential-vs-parallel wall clock for the two
//! batch kernels (all-pairs shortest paths and the multi-file solver) over a
//! grid of network sizes `N` and file counts `M`, plus the sparse
//! cost-substrate sweep (landmark oracle + hierarchical solver) that
//! carries the node count past where the dense matrix fits.
//!
//! The parallel paths are bit-identical to the sequential ones by
//! construction (disjoint contiguous chunks, deterministic reductions), and
//! [`bench_scale`] asserts that on every point before reporting a timing.
//! The sparse points are gated differently: the hierarchical allocation is
//! approximate by design, so at `N ≤` [`SPARSE_GAP_LIMIT`] its utility gap
//! against the exact dense optimum is measured and must stay within
//! [`SPARSE_GAP_BOUND`]; beyond that the dense reference no longer fits and
//! the gates are completion plus a [`SPARSE_BYTE_LIMIT`] ceiling on the
//! oracle's resident memory. Results serialize to the `BENCH_scale.json`
//! schema committed at the repo root; regenerate with `fap bench-scale`
//! (prefer `--release`).

use std::time::Instant;

use fap_batch::Parallelism;
use fap_core::{
    hierarchical::{solve_hierarchical_multilevel, HierarchicalConfig},
    reference, MultiFileProblem, MultiFileScratch, MultiFileSolution, SingleFileProblem,
};
use fap_net::{
    topology, AccessPattern, CostMatrix, CostProvider, Graph, GraphDelta, LandmarkOracle,
};
use serde::{Deserialize, Serialize};

/// Largest `N` at which the sparse sweep still builds the dense reference
/// to measure the true utility gap.
pub const SPARSE_GAP_LIMIT: usize = 4096;
/// Hard ceiling on the measured utility gap of the sparse pipeline
/// (sparse allocation evaluated on the exact dense objective).
pub const SPARSE_GAP_BOUND: f64 = 0.05;
/// Hard ceiling on the cost substrate's resident bytes at any sparse point.
pub const SPARSE_BYTE_LIMIT: usize = 1 << 30;
/// Landmark-selection seed of the sparse sweep.
pub const SPARSE_SEED: u64 = 7;
/// Farthest-point selection batch of the sparse sweep's oracle build
/// ([`LandmarkOracle::build_parallel`]): each round selects up to this
/// many landmarks from one `min_dist` sweep and computes their rows
/// concurrently, cutting the selection cost from `K` full scans to
/// `K / 16` and exposing 16-way parallelism inside the otherwise serial
/// chain.
pub const SPARSE_BATCH: usize = 16;

/// Landmark count of the sparse sweep at size `n`:
/// `clamp(n / 128, 64, 512)` further capped by the node count and by the
/// memory budget. Small graphs make every node a landmark (the hub
/// estimator is then exact and the gap measures pure solver quality).
/// Past the gap limit the count grows with `n` to hold per-cluster
/// subproblems near 128–256 nodes — the hierarchical solver's wall clock
/// is dominated by the inner solves, whose convergence degrades sharply
/// with cluster size, so more (cheap, `O(N + E)` each) Dijkstra runs buy
/// back far more solve time than they cost. The memory cap holds the
/// `O(K·N)` f64 distance table at or under ¾ of [`SPARSE_BYTE_LIMIT`]
/// (the remaining quarter absorbs landmark lists, home assignments and
/// the row LRU): `K = 512` through `N = 131072`, then 384, 192 and 96 at
/// the quarter-, half- and full-million-node points. Shrinking `K` while
/// `N` grows is what trades hub precision for feasibility — the
/// multi-level cluster tree ([`sparse_levels`]) absorbs the resulting
/// `N / K` cluster growth.
pub fn sparse_landmarks(n: usize) -> usize {
    let grow = (n / 128).clamp(64, 512);
    let mem_cap = (3 * (SPARSE_BYTE_LIMIT / 4)) / (8 * n.max(1));
    grow.min(mem_cap.max(1)).min(n)
}

/// Hierarchy depth of the sparse sweep at size `n`: flat (`1`) while the
/// expected cluster size `N / K` fits a single inner solve (≤ 256
/// members, the multi-level leaf bound), one extra tree level once it
/// does not. Depth 2 carries clusters of up to `256²` members, far past
/// the million-node sweep's worst case (`N / K ≈ 10923` at `N = 2²⁰`).
pub fn sparse_levels(n: usize) -> usize {
    if n / sparse_landmarks(n) <= 256 {
        1
    } else {
        2
    }
}

/// One measured grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Which kernel: `"all_pairs"` or `"multi_file"`.
    pub kind: String,
    /// Network size `N`.
    pub n: usize,
    /// File count `M` (1 for the all-pairs kernel).
    pub m: usize,
    /// Sequential wall clock, milliseconds.
    pub sequential_ms: f64,
    /// Parallel wall clock, milliseconds.
    pub parallel_ms: f64,
    /// `sequential_ms / parallel_ms`.
    pub speedup: f64,
    /// A content checksum (sum over the result), equal for both paths.
    pub checksum: f64,
}

/// One measured sparse-substrate point: landmark oracle build plus a
/// hierarchical cluster-solve-refine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsePoint {
    /// Network size `N`.
    pub n: usize,
    /// Landmark count `K` ([`sparse_landmarks`]).
    pub landmarks: usize,
    /// Cluster-tree depth the solve ran at ([`sparse_levels`] unless
    /// overridden with `--hier-levels`).
    #[serde(default = "default_one")]
    pub levels: usize,
    /// Oracle build wall clock (K Dijkstra runs), milliseconds.
    pub build_ms: f64,
    /// Hierarchical solve wall clock, milliseconds.
    pub solve_ms: f64,
    /// Resident bytes of the cost substrate after the solve.
    pub provider_bytes: usize,
    /// Cross-cluster refinement rounds the solve spent.
    pub refine_rounds: usize,
    /// Position-weighted allocation checksum:
    /// `Σ x_i·((i mod 64) + 1)` plus the estimated cost.
    pub checksum: f64,
    /// Relative utility gap of the sparse allocation on the exact dense
    /// objective; measured only at `N ≤` [`SPARSE_GAP_LIMIT`].
    pub gap: Option<f64>,
    /// Wall clock of the single-edge incremental oracle repair,
    /// milliseconds.
    #[serde(default)]
    pub update_ms: f64,
    /// Virtual work (heap pops + frontier visits) the single-edge repair
    /// spent; hard-gated at ≤ 10% of `rebuild_work`.
    #[serde(default)]
    pub update_work: u64,
    /// Virtual work of a from-scratch rebuild (`K·N` row entries) on the
    /// same topology.
    #[serde(default)]
    pub rebuild_work: u64,
}

fn default_one() -> usize {
    1
}

/// The full benchmark report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Logical CPUs of the recording host
    /// (`std::thread::available_parallelism()`).
    #[serde(default)]
    pub host_threads: usize,
    /// Worker threads the parallel path used.
    pub threads: usize,
    /// The `N` grid.
    pub ns: Vec<usize>,
    /// The `M` grid.
    pub ms: Vec<usize>,
    /// The sparse-substrate `N` grid.
    #[serde(default)]
    pub sparse_ns: Vec<usize>,
    /// Utility-gap ceiling the sparse points were gated on.
    #[serde(default = "default_gap_bound")]
    pub gap_bound: f64,
    /// Solver iterations per multi-file point.
    pub iterations: usize,
    /// All measured dense points.
    pub points: Vec<ScalePoint>,
    /// All measured sparse points.
    #[serde(default)]
    pub sparse_points: Vec<SparsePoint>,
}

fn default_gap_bound() -> f64 {
    SPARSE_GAP_BOUND
}

/// Logical CPUs of this host, `1` when undeterminable.
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The benchmark network on `n` nodes: a torus as close to square as the
/// factorization of `n` allows, falling back to a ring when `n` has no
/// divisor ≥ 3 (primes and small numbers).
///
/// # Panics
///
/// Panics only on programming errors (`n ≥ 3`).
pub fn scale_graph(n: usize) -> Graph {
    let mut rows = 1;
    for r in (2..=n).take_while(|r| r * r <= n) {
        if n % r == 0 {
            rows = r;
        }
    }
    if rows >= 3 && n / rows >= 3 {
        topology::torus(rows, n / rows, 1.0).expect("valid torus")
    } else {
        topology::ring(n, 1.0).expect("valid ring")
    }
}

/// The benchmark problem: `m` files with seeded random access patterns on
/// the [`scale_graph`], node capacity 10× the even-split load.
///
/// # Panics
///
/// Panics only on programming errors (the generated parameters are valid).
pub fn scale_problem(graph: &Graph, m: usize) -> MultiFileProblem {
    let n = graph.node_count();
    let patterns: Vec<AccessPattern> = (0..m)
        .map(|j| AccessPattern::random(n, 0.05..0.2, 1_000 + j as u64).expect("valid pattern"))
        .collect();
    let offered: f64 = patterns.iter().map(AccessPattern::total_rate).sum();
    let mu = 10.0 * offered / n as f64;
    MultiFileProblem::mm1(graph, &patterns, mu, 1.0).expect("valid problem")
}

/// The sparse-sweep workload at size `n`: the same seeded random access
/// pattern family as [`scale_problem`], uniform node capacity 10× the
/// even-split load.
///
/// # Panics
///
/// Panics only on programming errors (the generated pattern is valid).
pub fn sparse_workload(n: usize) -> (AccessPattern, f64) {
    let pattern = AccessPattern::random(n, 0.05..0.2, 1_000).expect("valid pattern");
    let mu = 10.0 * pattern.total_rate() / n as f64;
    (pattern, mu)
}

/// The hierarchical tuning the sparse sweep (and the pinned gap test)
/// runs with. The stock [`HierarchicalConfig`] keeps its absolute
/// `epsilon = 1e-6` marginal-spread threshold, but the solver's marginals
/// carry cost×rate units: at `N = 131072` the seeded workload offers
/// `λ ≈ 1.6·10⁴`, so an absolute `1e-6` demands ~10 significant digits of
/// convergence and slams every aggregate/inner solve into its iteration
/// cap — hours of wall clock for digits the ≤5% gap gate cannot see.
/// Scaling the threshold by the offered load makes the stopping rule
/// scale-invariant, and the tighter per-solve iteration budget bounds the
/// damage of a mis-tuned point to seconds instead of a stalled sweep.
pub fn sparse_hierarchical_config(pattern: &AccessPattern) -> HierarchicalConfig {
    let n = pattern.node_count();
    HierarchicalConfig {
        epsilon: 1e-6 * pattern.total_rate().max(1.0),
        max_inner_iterations: 20_000,
        // Quality-gated sizes refine to convergence-or-8; past the gap
        // limit the points measure throughput and memory, and each round
        // costs seconds, so three rounds bound the sweep's wall clock.
        max_refine_rounds: if n <= SPARSE_GAP_LIMIT { 8 } else { 3 },
        ..HierarchicalConfig::default()
    }
}

fn checksum_sparse(allocation: &[f64], cost: f64) -> f64 {
    allocation
        .iter()
        .enumerate()
        .map(|(i, &x)| x * ((i % 64) + 1) as f64)
        .sum::<f64>()
        + cost
}

/// Runs the sparse sweep with the default hierarchy depth policy
/// ([`sparse_levels`]); see [`bench_sparse_with`].
///
/// # Panics
///
/// Same conditions as [`bench_sparse_with`].
pub fn bench_sparse(ns: &[usize]) -> Vec<SparsePoint> {
    bench_sparse_with(ns, None)
}

/// Runs the sparse sweep: for each `n` a batched landmark-oracle build
/// ([`LandmarkOracle::build_parallel`] with [`SPARSE_BATCH`]), a
/// hierarchical solve at `levels_override.unwrap_or(sparse_levels(n))`
/// tree levels, and a single-edge incremental oracle repair. The
/// dense-reference gap is measured while the dense matrix still fits
/// (`n ≤` [`SPARSE_GAP_LIMIT`]); at those sizes the build is also re-run
/// at one and two worker threads and must match the timed build bit for
/// bit (the parallel reduction's determinism contract).
///
/// # Panics
///
/// Panics when a gate fails: a measured gap above [`SPARSE_GAP_BOUND`],
/// a substrate footprint at or above [`SPARSE_BYTE_LIMIT`], a
/// thread-count-dependent build, or a single-edge repair costing more
/// than 10% of a full rebuild in virtual work.
pub fn bench_sparse_with(ns: &[usize], levels_override: Option<usize>) -> Vec<SparsePoint> {
    let mut points = Vec::new();
    for &n in ns {
        let mut graph = scale_graph(n);
        let landmarks = sparse_landmarks(n);
        let levels = levels_override.unwrap_or_else(|| sparse_levels(n)).max(1);
        let (pattern, mu) = sparse_workload(n);
        let mus = vec![mu; n];
        let (build_ms, mut oracle) = time_ms(|| {
            LandmarkOracle::build_parallel(
                &graph,
                landmarks,
                SPARSE_SEED,
                SPARSE_BATCH,
                Parallelism::Auto,
            )
            .expect("connected")
        });
        if n <= SPARSE_GAP_LIMIT {
            for threads in [1, 2] {
                let again = LandmarkOracle::build_parallel(
                    &graph,
                    landmarks,
                    SPARSE_SEED,
                    SPARSE_BATCH,
                    Parallelism::Fixed(threads),
                )
                .expect("connected");
                assert_identical_oracles(&oracle, &again, n, threads);
            }
        }
        let config = sparse_hierarchical_config(&pattern);
        let (solve_ms, solution) = time_ms(|| {
            solve_hierarchical_multilevel(&oracle, &pattern, &mus, 1.0, &config, levels)
                .expect("stable solve")
        });
        let provider_bytes = oracle.substrate_bytes();
        assert!(
            provider_bytes < SPARSE_BYTE_LIMIT,
            "substrate at N = {n} holds {provider_bytes} bytes, over the 1 GiB ceiling"
        );
        let gap = (n <= SPARSE_GAP_LIMIT).then(|| {
            let dense =
                SingleFileProblem::mm1(&graph, &pattern, mu, 1.0).expect("valid problem");
            let exact = reference::solve(&dense).expect("solvable");
            let sparse_cost =
                dense.cost_of(&solution.allocation).expect("feasible allocation");
            let gap = (sparse_cost - exact.cost) / exact.cost;
            assert!(
                gap <= SPARSE_GAP_BOUND,
                "sparse utility gap {gap:.4} at N = {n} exceeds the {SPARSE_GAP_BOUND} bound"
            );
            gap
        });
        // The point's results are captured; re-price one edge and repair
        // the oracle in place to measure the incremental path. A 10%
        // bump on one torus link barely perturbs the shortest-path
        // structure, which is exactly the regime topology drift hands
        // the daemon — the repair must cost ≤ 10% of a K·N rebuild.
        let from = fap_net::NodeId::new(0);
        let (to, old_cost) = graph.neighbors(from)[0];
        let delta = GraphDelta::EdgeWeight { from, to, cost: old_cost * 1.1 };
        let (update_ms, stats) = time_ms(|| {
            oracle.apply_deltas(&mut graph, &[delta]).expect("repairable delta")
        });
        let (update_work, rebuild_work) = (stats.virtual_work(), oracle.full_rebuild_work());
        assert!(
            update_work * 10 <= rebuild_work,
            "single-edge repair at N = {n} cost {update_work} virtual work, \
             over 10% of the {rebuild_work} full rebuild"
        );
        points.push(SparsePoint {
            n,
            landmarks,
            levels,
            build_ms,
            solve_ms,
            provider_bytes,
            refine_rounds: solution.refine_rounds,
            checksum: checksum_sparse(&solution.allocation, solution.estimated_cost),
            gap,
            update_ms,
            update_work,
            rebuild_work,
        });
    }
    points
}

/// Panics unless two oracle builds agree bit for bit (landmark chain and
/// full `K×N` distance table) — the thread-count determinism contract of
/// [`LandmarkOracle::build_parallel`].
fn assert_identical_oracles(a: &LandmarkOracle, b: &LandmarkOracle, n: usize, threads: usize) {
    assert_eq!(
        a.landmarks(),
        b.landmarks(),
        "landmark chain diverged at N = {n} with {threads} worker thread(s)"
    );
    for k in 0..a.landmark_count() {
        for v in 0..n {
            let (da, db) =
                (a.landmark_distance(k, fap_net::NodeId::new(v)), b.landmark_distance(k, fap_net::NodeId::new(v)));
            assert!(
                da.to_bits() == db.to_bits(),
                "distance table diverged at N = {n}, landmark {k}, node {v} \
                 with {threads} worker thread(s): {da:?} vs {db:?}"
            );
        }
    }
}

fn checksum_matrix(matrix: &CostMatrix) -> f64 {
    matrix.as_matrix().as_slice().iter().sum()
}

fn checksum_solution(solution: &MultiFileSolution) -> f64 {
    solution.final_cost
        + solution.allocations.iter().flat_map(|row| row.iter()).sum::<f64>()
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64() * 1e3, value)
}

/// Runs the sweep: for each `n` an all-pairs point, for each `(n, m)` a
/// multi-file point of exactly `iterations` solver steps (ε is set far below
/// attainability so every run pays the same iteration count), and for each
/// `sparse_ns` entry a [`bench_sparse`] point.
///
/// # Panics
///
/// Panics if any parallel result differs bitwise from its sequential
/// counterpart — the determinism contract this PR's tests pin down — or if
/// a sparse point violates its gap or memory gate.
pub fn bench_scale(
    ns: &[usize],
    ms: &[usize],
    sparse_ns: &[usize],
    iterations: usize,
    parallelism: Parallelism,
) -> ScaleReport {
    bench_scale_configured(ns, ms, sparse_ns, iterations, parallelism, None)
}

/// [`bench_scale`] with the sparse sweep's hierarchy depth overridable
/// (`fap bench-scale --hier-levels <L>`); `None` applies the per-size
/// default policy ([`sparse_levels`]).
///
/// # Panics
///
/// Same conditions as [`bench_scale`].
pub fn bench_scale_configured(
    ns: &[usize],
    ms: &[usize],
    sparse_ns: &[usize],
    iterations: usize,
    parallelism: Parallelism,
    levels_override: Option<usize>,
) -> ScaleReport {
    let mut points = Vec::new();
    for &n in ns {
        let graph = scale_graph(n);
        let (sequential_ms, seq) = time_ms(|| graph.shortest_path_matrix().expect("connected"));
        let (parallel_ms, par) =
            time_ms(|| graph.shortest_path_matrix_parallel(parallelism).expect("connected"));
        assert_eq!(seq, par, "all-pairs parallel result diverged at N = {n}");
        points.push(ScalePoint {
            kind: "all_pairs".into(),
            n,
            m: 1,
            sequential_ms,
            parallel_ms,
            speedup: sequential_ms / parallel_ms,
            checksum: checksum_matrix(&seq),
        });

        for &m in ms {
            let problem = scale_problem(&graph, m);
            let initial = vec![vec![1.0 / n as f64; n]; m];
            let mut seq_scratch = MultiFileScratch::new();
            let mut par_scratch = MultiFileScratch::new();
            // ε far below attainability: every run pays `iterations` steps.
            let epsilon = 1e-300;
            let (sequential_ms, seq) = time_ms(|| {
                problem
                    .solve_with_scratch(
                        &initial,
                        0.002,
                        epsilon,
                        iterations,
                        Parallelism::Sequential,
                        &mut seq_scratch,
                    )
                    .expect("stable solve")
            });
            let (parallel_ms, par) = time_ms(|| {
                problem
                    .solve_with_scratch(
                        &initial,
                        0.002,
                        epsilon,
                        iterations,
                        parallelism,
                        &mut par_scratch,
                    )
                    .expect("stable solve")
            });
            assert_eq!(seq, par, "multi-file parallel result diverged at N = {n}, M = {m}");
            points.push(ScalePoint {
                kind: "multi_file".into(),
                n,
                m,
                sequential_ms,
                parallel_ms,
                speedup: sequential_ms / parallel_ms,
                checksum: checksum_solution(&seq),
            });
        }
    }
    ScaleReport {
        host_threads: host_threads(),
        threads: parallelism.thread_count(),
        ns: ns.to_vec(),
        ms: ms.to_vec(),
        sparse_ns: sparse_ns.to_vec(),
        gap_bound: SPARSE_GAP_BOUND,
        iterations,
        points,
        sparse_points: bench_sparse_with(sparse_ns, levels_override),
    }
}

/// The result of checking a fresh [`ScaleReport`] against a committed one
/// (`fap bench-scale --check`).
///
/// *Hard failures* are determinism violations: the grid changed, or a
/// checksum is no longer bit-identical to the committed value. *Advisories*
/// are environment-dependent drifts (thread count, wall-clock timings) that
/// are reported but never fail the check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Determinism violations; any entry fails the check.
    pub hard_failures: Vec<String>,
    /// Timing/environment drift; informational only.
    pub advisories: Vec<String>,
}

impl CheckOutcome {
    /// Whether the check passed (no hard failures).
    pub fn is_pass(&self) -> bool {
        self.hard_failures.is_empty()
    }
}

/// Compares a `fresh` run against the `committed` report.
///
/// Grid shape (`ns`, `ms`, `sparse_ns`, `iterations`), point identity
/// (`kind`, `n`, `m`) and dense result checksums (compared bit-for-bit via
/// [`f64::to_bits`]) are hard gates, as is every fresh sparse gap staying
/// within the committed `gap_bound`. The sparse path is approximate by
/// contract, so its checksums only produce advisories when they drift.
/// Thread counts and wall-clock timings are likewise advisories: a fresh
/// timing more than `timing_tolerance` times the committed one is flagged,
/// since the committed numbers came from a different (possibly slower or
/// faster) machine.
pub fn check_against(
    committed: &ScaleReport,
    fresh: &ScaleReport,
    timing_tolerance: f64,
) -> CheckOutcome {
    let mut outcome = CheckOutcome::default();
    if committed.ns != fresh.ns || committed.ms != fresh.ms {
        outcome.hard_failures.push(format!(
            "grid mismatch: committed N×M grid {:?}×{:?}, fresh {:?}×{:?}",
            committed.ns, committed.ms, fresh.ns, fresh.ms
        ));
    }
    if committed.sparse_ns != fresh.sparse_ns {
        outcome.hard_failures.push(format!(
            "sparse grid mismatch: committed {:?}, fresh {:?}",
            committed.sparse_ns, fresh.sparse_ns
        ));
    }
    if committed.gap_bound.to_bits() != fresh.gap_bound.to_bits() {
        outcome.hard_failures.push(format!(
            "gap bound mismatch: committed {}, fresh {}",
            committed.gap_bound, fresh.gap_bound
        ));
    }
    if committed.iterations != fresh.iterations {
        outcome.hard_failures.push(format!(
            "iteration count mismatch: committed {}, fresh {}",
            committed.iterations, fresh.iterations
        ));
    }
    if committed.points.len() != fresh.points.len() {
        outcome.hard_failures.push(format!(
            "point count mismatch: committed {}, fresh {}",
            committed.points.len(),
            fresh.points.len()
        ));
        return outcome;
    }
    if committed.sparse_points.len() != fresh.sparse_points.len() {
        outcome.hard_failures.push(format!(
            "sparse point count mismatch: committed {}, fresh {}",
            committed.sparse_points.len(),
            fresh.sparse_points.len()
        ));
        return outcome;
    }
    if committed.threads != fresh.threads {
        outcome.advisories.push(format!(
            "thread count differs: committed {}, fresh {} (machine-dependent)",
            committed.threads, fresh.threads
        ));
    }
    if committed.host_threads != fresh.host_threads {
        outcome.advisories.push(format!(
            "host CPU count differs: committed {}, fresh {} (machine-dependent)",
            committed.host_threads, fresh.host_threads
        ));
    }
    for (old, new) in committed.sparse_points.iter().zip(&fresh.sparse_points) {
        let label = format!("sparse N={} K={}", old.n, old.landmarks);
        if old.n != new.n || old.landmarks != new.landmarks || old.levels != new.levels {
            outcome.hard_failures.push(format!(
                "sparse point identity mismatch: committed {label} levels={}, \
                 fresh N={} K={} levels={}",
                old.levels, new.n, new.landmarks, new.levels
            ));
            continue;
        }
        // The incremental-repair budget is a hard gate wherever the fresh
        // run measured it (virtual work is machine-independent).
        if new.rebuild_work > 0 && new.update_work * 10 > new.rebuild_work {
            outcome.hard_failures.push(format!(
                "incremental repair at {label} cost {} virtual work, \
                 over 10% of the {} full rebuild",
                new.update_work, new.rebuild_work
            ));
        }
        if old.rebuild_work > 0
            && (old.update_work != new.update_work || old.rebuild_work != new.rebuild_work)
        {
            outcome.hard_failures.push(format!(
                "incremental repair work diverged at {label}: committed {}/{}, fresh {}/{}",
                old.update_work, old.rebuild_work, new.update_work, new.rebuild_work
            ));
        }
        match (old.gap, new.gap) {
            (Some(_), Some(gap)) if gap > committed.gap_bound => {
                outcome.hard_failures.push(format!(
                    "sparse utility gap at {label} is {gap:.4}, over the committed {} bound",
                    committed.gap_bound
                ));
            }
            (Some(_), Some(_)) | (None, None) => {}
            (old_gap, new_gap) => {
                outcome.hard_failures.push(format!(
                    "gap coverage changed at {label}: committed {old_gap:?}, fresh {new_gap:?}"
                ));
            }
        }
        if old.checksum.to_bits() != new.checksum.to_bits() {
            outcome.advisories.push(format!(
                "sparse checksum drifted at {label}: committed {:?}, fresh {:?} \
                 (approximate path; the gap gate governs)",
                old.checksum, new.checksum
            ));
        }
        for (stage, was, now) in [
            ("build", old.build_ms, new.build_ms),
            ("solve", old.solve_ms, new.solve_ms),
            ("update", old.update_ms, new.update_ms),
        ] {
            if was > 0.0 && now > was * timing_tolerance {
                outcome.advisories.push(format!(
                    "{label}: {stage} timing {now:.2} ms exceeds {timing_tolerance}× committed {was:.2} ms"
                ));
            }
        }
    }
    for (old, new) in committed.points.iter().zip(&fresh.points) {
        let label = format!("{} N={} M={}", old.kind, old.n, old.m);
        if old.kind != new.kind || old.n != new.n || old.m != new.m {
            outcome.hard_failures.push(format!(
                "point identity mismatch: committed {label}, fresh {} N={} M={}",
                new.kind, new.n, new.m
            ));
            continue;
        }
        if old.checksum.to_bits() != new.checksum.to_bits() {
            outcome.hard_failures.push(format!(
                "checksum diverged at {label}: committed {:?} ({:#018x}), fresh {:?} ({:#018x})",
                old.checksum,
                old.checksum.to_bits(),
                new.checksum,
                new.checksum.to_bits()
            ));
        }
        for (stage, was, now) in [
            ("sequential", old.sequential_ms, new.sequential_ms),
            ("parallel", old.parallel_ms, new.parallel_ms),
        ] {
            if now > was * timing_tolerance {
                outcome.advisories.push(format!(
                    "{label}: {stage} timing {now:.2} ms exceeds {timing_tolerance}× committed {was:.2} ms"
                ));
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_graph_prefers_square_torus() {
        assert_eq!(scale_graph(64).node_count(), 64);
        assert_eq!(scale_graph(9).link_count(), 9 * 4); // 3×3 torus, out-degree 4
        assert_eq!(scale_graph(7).link_count(), 7 * 2); // prime → ring
    }

    #[test]
    fn bench_scale_produces_consistent_points() {
        let report = bench_scale(&[16], &[1, 2], &[], 3, Parallelism::Fixed(2));
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.threads, 2);
        for p in &report.points {
            assert!(p.sequential_ms >= 0.0 && p.parallel_ms >= 0.0);
            assert!(p.checksum.is_finite());
        }
    }

    #[test]
    fn sparse_grid_policies_scale_with_n() {
        // The memory cap leaves the committed grid untouched through
        // 131072, then shrinks K to hold the table under ¾ GiB.
        assert_eq!(sparse_landmarks(4096), 64);
        assert_eq!(sparse_landmarks(131072), 512);
        assert_eq!(sparse_landmarks(262144), 384);
        assert_eq!(sparse_landmarks(524288), 192);
        assert_eq!(sparse_landmarks(1048576), 96);
        // Depth stays flat while N/K fits one inner solve, then grows.
        assert_eq!(sparse_levels(4096), 1);
        assert_eq!(sparse_levels(131072), 1);
        assert_eq!(sparse_levels(262144), 2);
        assert_eq!(sparse_levels(1048576), 2);
    }

    #[test]
    fn sparse_points_measure_and_gate_the_incremental_repair() {
        let p = &bench_sparse_with(&[64], None)[0];
        assert_eq!((p.levels, p.landmarks), (1, 64));
        assert_eq!(p.rebuild_work, 64 * 64);
        assert!(p.update_work > 0, "the repair visits at least the dirty frontier");
        assert!(p.update_work * 10 <= p.rebuild_work);
        // A depth override is recorded on the point.
        assert_eq!(bench_sparse_with(&[64], Some(2))[0].levels, 2);
    }

    #[test]
    fn check_gates_the_incremental_repair_budget() {
        let committed =
            bench_scale_configured(&[], &[], &[64], 2, Parallelism::Fixed(2), None);
        let mut fresh = committed.clone();
        fresh.sparse_points[0].update_work = fresh.sparse_points[0].rebuild_work;
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(outcome
            .hard_failures
            .iter()
            .any(|f| f.contains("incremental repair")));
        // An unchanged rerun passes the work gates.
        let outcome = check_against(&committed, &committed.clone(), f64::INFINITY);
        assert!(outcome.is_pass(), "failures: {:?}", outcome.hard_failures);
    }

    #[test]
    fn check_passes_on_a_rerun_of_the_same_grid() {
        let committed = bench_scale(&[12], &[1], &[], 2, Parallelism::Fixed(2));
        let fresh = bench_scale(&[12], &[1], &[], 2, Parallelism::Fixed(3));
        // Timings differ run to run; with an infinite tolerance the only
        // gates left are the deterministic ones, which must all hold.
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(outcome.is_pass(), "failures: {:?}", outcome.hard_failures);
        // Thread count differs → advisory, never a failure.
        assert!(outcome.advisories.iter().any(|a| a.contains("thread count")));
    }

    #[test]
    fn check_flags_checksum_and_grid_divergence_as_hard() {
        let committed = bench_scale(&[12], &[1], &[], 2, Parallelism::Fixed(2));
        let mut fresh = committed.clone();
        fresh.points[0].checksum += 1.0;
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(!outcome.is_pass());
        assert!(outcome.hard_failures[0].contains("checksum diverged"));

        let mut regridded = committed.clone();
        regridded.ns = vec![13];
        let outcome = check_against(&committed, &regridded, f64::INFINITY);
        assert!(outcome.hard_failures.iter().any(|f| f.contains("grid mismatch")));
    }

    #[test]
    fn check_reports_slow_timings_as_advisory() {
        let committed = bench_scale(&[12], &[1], &[], 2, Parallelism::Fixed(2));
        let mut fresh = committed.clone();
        fresh.points[0].sequential_ms = committed.points[0].sequential_ms * 100.0 + 1.0;
        let outcome = check_against(&committed, &fresh, 1.5);
        assert!(outcome.is_pass(), "slow timing must not fail the check");
        assert!(outcome.advisories.iter().any(|a| a.contains("sequential timing")));
    }
}
