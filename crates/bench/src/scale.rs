//! The `scale` benchmark: sequential-vs-parallel wall clock for the two
//! batch kernels (all-pairs shortest paths and the multi-file solver) over a
//! grid of network sizes `N` and file counts `M`.
//!
//! The parallel paths are bit-identical to the sequential ones by
//! construction (disjoint contiguous chunks, deterministic reductions), and
//! [`bench_scale`] asserts that on every point before reporting a timing.
//! Results serialize to the `BENCH_scale.json` schema committed at the repo
//! root; regenerate with `fap bench-scale` (prefer `--release`).

use std::time::Instant;

use fap_batch::Parallelism;
use fap_core::{MultiFileProblem, MultiFileScratch, MultiFileSolution};
use fap_net::{topology, AccessPattern, CostMatrix, Graph};
use serde::{Deserialize, Serialize};

/// One measured grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Which kernel: `"all_pairs"` or `"multi_file"`.
    pub kind: String,
    /// Network size `N`.
    pub n: usize,
    /// File count `M` (1 for the all-pairs kernel).
    pub m: usize,
    /// Sequential wall clock, milliseconds.
    pub sequential_ms: f64,
    /// Parallel wall clock, milliseconds.
    pub parallel_ms: f64,
    /// `sequential_ms / parallel_ms`.
    pub speedup: f64,
    /// A content checksum (sum over the result), equal for both paths.
    pub checksum: f64,
}

/// The full benchmark report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Worker threads the parallel path used.
    pub threads: usize,
    /// The `N` grid.
    pub ns: Vec<usize>,
    /// The `M` grid.
    pub ms: Vec<usize>,
    /// Solver iterations per multi-file point.
    pub iterations: usize,
    /// All measured points.
    pub points: Vec<ScalePoint>,
}

/// The benchmark network on `n` nodes: a torus as close to square as the
/// factorization of `n` allows, falling back to a ring when `n` has no
/// divisor ≥ 3 (primes and small numbers).
///
/// # Panics
///
/// Panics only on programming errors (`n ≥ 3`).
pub fn scale_graph(n: usize) -> Graph {
    let mut rows = 1;
    for r in (2..=n).take_while(|r| r * r <= n) {
        if n % r == 0 {
            rows = r;
        }
    }
    if rows >= 3 && n / rows >= 3 {
        topology::torus(rows, n / rows, 1.0).expect("valid torus")
    } else {
        topology::ring(n, 1.0).expect("valid ring")
    }
}

/// The benchmark problem: `m` files with seeded random access patterns on
/// the [`scale_graph`], node capacity 10× the even-split load.
///
/// # Panics
///
/// Panics only on programming errors (the generated parameters are valid).
pub fn scale_problem(graph: &Graph, m: usize) -> MultiFileProblem {
    let n = graph.node_count();
    let patterns: Vec<AccessPattern> = (0..m)
        .map(|j| AccessPattern::random(n, 0.05..0.2, 1_000 + j as u64).expect("valid pattern"))
        .collect();
    let offered: f64 = patterns.iter().map(AccessPattern::total_rate).sum();
    let mu = 10.0 * offered / n as f64;
    MultiFileProblem::mm1(graph, &patterns, mu, 1.0).expect("valid problem")
}

fn checksum_matrix(matrix: &CostMatrix) -> f64 {
    matrix.as_matrix().as_slice().iter().sum()
}

fn checksum_solution(solution: &MultiFileSolution) -> f64 {
    solution.final_cost
        + solution.allocations.iter().flat_map(|row| row.iter()).sum::<f64>()
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64() * 1e3, value)
}

/// Runs the sweep: for each `n` an all-pairs point, and for each `(n, m)` a
/// multi-file point of exactly `iterations` solver steps (ε is set far below
/// attainability so every run pays the same iteration count).
///
/// # Panics
///
/// Panics if any parallel result differs bitwise from its sequential
/// counterpart — the determinism contract this PR's tests pin down.
pub fn bench_scale(
    ns: &[usize],
    ms: &[usize],
    iterations: usize,
    parallelism: Parallelism,
) -> ScaleReport {
    let mut points = Vec::new();
    for &n in ns {
        let graph = scale_graph(n);
        let (sequential_ms, seq) = time_ms(|| graph.shortest_path_matrix().expect("connected"));
        let (parallel_ms, par) =
            time_ms(|| graph.shortest_path_matrix_parallel(parallelism).expect("connected"));
        assert_eq!(seq, par, "all-pairs parallel result diverged at N = {n}");
        points.push(ScalePoint {
            kind: "all_pairs".into(),
            n,
            m: 1,
            sequential_ms,
            parallel_ms,
            speedup: sequential_ms / parallel_ms,
            checksum: checksum_matrix(&seq),
        });

        for &m in ms {
            let problem = scale_problem(&graph, m);
            let initial = vec![vec![1.0 / n as f64; n]; m];
            let mut seq_scratch = MultiFileScratch::new();
            let mut par_scratch = MultiFileScratch::new();
            // ε far below attainability: every run pays `iterations` steps.
            let epsilon = 1e-300;
            let (sequential_ms, seq) = time_ms(|| {
                problem
                    .solve_with_scratch(
                        &initial,
                        0.002,
                        epsilon,
                        iterations,
                        Parallelism::Sequential,
                        &mut seq_scratch,
                    )
                    .expect("stable solve")
            });
            let (parallel_ms, par) = time_ms(|| {
                problem
                    .solve_with_scratch(
                        &initial,
                        0.002,
                        epsilon,
                        iterations,
                        parallelism,
                        &mut par_scratch,
                    )
                    .expect("stable solve")
            });
            assert_eq!(seq, par, "multi-file parallel result diverged at N = {n}, M = {m}");
            points.push(ScalePoint {
                kind: "multi_file".into(),
                n,
                m,
                sequential_ms,
                parallel_ms,
                speedup: sequential_ms / parallel_ms,
                checksum: checksum_solution(&seq),
            });
        }
    }
    ScaleReport {
        threads: parallelism.thread_count(),
        ns: ns.to_vec(),
        ms: ms.to_vec(),
        iterations,
        points,
    }
}

/// The result of checking a fresh [`ScaleReport`] against a committed one
/// (`fap bench-scale --check`).
///
/// *Hard failures* are determinism violations: the grid changed, or a
/// checksum is no longer bit-identical to the committed value. *Advisories*
/// are environment-dependent drifts (thread count, wall-clock timings) that
/// are reported but never fail the check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Determinism violations; any entry fails the check.
    pub hard_failures: Vec<String>,
    /// Timing/environment drift; informational only.
    pub advisories: Vec<String>,
}

impl CheckOutcome {
    /// Whether the check passed (no hard failures).
    pub fn is_pass(&self) -> bool {
        self.hard_failures.is_empty()
    }
}

/// Compares a `fresh` run against the `committed` report.
///
/// Grid shape (`ns`, `ms`, `iterations`), point identity (`kind`, `n`, `m`)
/// and result checksums (compared bit-for-bit via [`f64::to_bits`]) are hard
/// gates. Thread count and wall-clock timings only produce advisories: a
/// fresh timing more than `timing_tolerance` times the committed one is
/// flagged, since the committed numbers came from a different (possibly
/// slower or faster) machine.
pub fn check_against(
    committed: &ScaleReport,
    fresh: &ScaleReport,
    timing_tolerance: f64,
) -> CheckOutcome {
    let mut outcome = CheckOutcome::default();
    if committed.ns != fresh.ns || committed.ms != fresh.ms {
        outcome.hard_failures.push(format!(
            "grid mismatch: committed N×M grid {:?}×{:?}, fresh {:?}×{:?}",
            committed.ns, committed.ms, fresh.ns, fresh.ms
        ));
    }
    if committed.iterations != fresh.iterations {
        outcome.hard_failures.push(format!(
            "iteration count mismatch: committed {}, fresh {}",
            committed.iterations, fresh.iterations
        ));
    }
    if committed.points.len() != fresh.points.len() {
        outcome.hard_failures.push(format!(
            "point count mismatch: committed {}, fresh {}",
            committed.points.len(),
            fresh.points.len()
        ));
        return outcome;
    }
    if committed.threads != fresh.threads {
        outcome.advisories.push(format!(
            "thread count differs: committed {}, fresh {} (machine-dependent)",
            committed.threads, fresh.threads
        ));
    }
    for (old, new) in committed.points.iter().zip(&fresh.points) {
        let label = format!("{} N={} M={}", old.kind, old.n, old.m);
        if old.kind != new.kind || old.n != new.n || old.m != new.m {
            outcome.hard_failures.push(format!(
                "point identity mismatch: committed {label}, fresh {} N={} M={}",
                new.kind, new.n, new.m
            ));
            continue;
        }
        if old.checksum.to_bits() != new.checksum.to_bits() {
            outcome.hard_failures.push(format!(
                "checksum diverged at {label}: committed {:?} ({:#018x}), fresh {:?} ({:#018x})",
                old.checksum,
                old.checksum.to_bits(),
                new.checksum,
                new.checksum.to_bits()
            ));
        }
        for (stage, was, now) in [
            ("sequential", old.sequential_ms, new.sequential_ms),
            ("parallel", old.parallel_ms, new.parallel_ms),
        ] {
            if now > was * timing_tolerance {
                outcome.advisories.push(format!(
                    "{label}: {stage} timing {now:.2} ms exceeds {timing_tolerance}× committed {was:.2} ms"
                ));
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_graph_prefers_square_torus() {
        assert_eq!(scale_graph(64).node_count(), 64);
        assert_eq!(scale_graph(9).link_count(), 9 * 4); // 3×3 torus, out-degree 4
        assert_eq!(scale_graph(7).link_count(), 7 * 2); // prime → ring
    }

    #[test]
    fn bench_scale_produces_consistent_points() {
        let report = bench_scale(&[16], &[1, 2], 3, Parallelism::Fixed(2));
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.threads, 2);
        for p in &report.points {
            assert!(p.sequential_ms >= 0.0 && p.parallel_ms >= 0.0);
            assert!(p.checksum.is_finite());
        }
    }

    #[test]
    fn check_passes_on_a_rerun_of_the_same_grid() {
        let committed = bench_scale(&[12], &[1], 2, Parallelism::Fixed(2));
        let fresh = bench_scale(&[12], &[1], 2, Parallelism::Fixed(3));
        // Timings differ run to run; with an infinite tolerance the only
        // gates left are the deterministic ones, which must all hold.
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(outcome.is_pass(), "failures: {:?}", outcome.hard_failures);
        // Thread count differs → advisory, never a failure.
        assert!(outcome.advisories.iter().any(|a| a.contains("thread count")));
    }

    #[test]
    fn check_flags_checksum_and_grid_divergence_as_hard() {
        let committed = bench_scale(&[12], &[1], 2, Parallelism::Fixed(2));
        let mut fresh = committed.clone();
        fresh.points[0].checksum += 1.0;
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(!outcome.is_pass());
        assert!(outcome.hard_failures[0].contains("checksum diverged"));

        let mut regridded = committed.clone();
        regridded.ns = vec![13];
        let outcome = check_against(&committed, &regridded, f64::INFINITY);
        assert!(outcome.hard_failures.iter().any(|f| f.contains("grid mismatch")));
    }

    #[test]
    fn check_reports_slow_timings_as_advisory() {
        let committed = bench_scale(&[12], &[1], 2, Parallelism::Fixed(2));
        let mut fresh = committed.clone();
        fresh.points[0].sequential_ms = committed.points[0].sequential_ms * 100.0 + 1.0;
        let outcome = check_against(&committed, &fresh, 1.5);
        assert!(outcome.is_pass(), "slow timing must not fail the check");
        assert!(outcome.advisories.iter().any(|a| a.contains("sequential timing")));
    }
}
