//! The `scale` benchmark: sequential-vs-parallel wall clock for the two
//! batch kernels (all-pairs shortest paths and the multi-file solver) over a
//! grid of network sizes `N` and file counts `M`.
//!
//! The parallel paths are bit-identical to the sequential ones by
//! construction (disjoint contiguous chunks, deterministic reductions), and
//! [`bench_scale`] asserts that on every point before reporting a timing.
//! Results serialize to the `BENCH_scale.json` schema committed at the repo
//! root; regenerate with `fap bench-scale` (prefer `--release`).

use std::time::Instant;

use fap_batch::Parallelism;
use fap_core::{MultiFileProblem, MultiFileScratch, MultiFileSolution};
use fap_net::{topology, AccessPattern, CostMatrix, Graph};
use serde::{Deserialize, Serialize};

/// One measured grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Which kernel: `"all_pairs"` or `"multi_file"`.
    pub kind: String,
    /// Network size `N`.
    pub n: usize,
    /// File count `M` (1 for the all-pairs kernel).
    pub m: usize,
    /// Sequential wall clock, milliseconds.
    pub sequential_ms: f64,
    /// Parallel wall clock, milliseconds.
    pub parallel_ms: f64,
    /// `sequential_ms / parallel_ms`.
    pub speedup: f64,
    /// A content checksum (sum over the result), equal for both paths.
    pub checksum: f64,
}

/// The full benchmark report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Worker threads the parallel path used.
    pub threads: usize,
    /// The `N` grid.
    pub ns: Vec<usize>,
    /// The `M` grid.
    pub ms: Vec<usize>,
    /// Solver iterations per multi-file point.
    pub iterations: usize,
    /// All measured points.
    pub points: Vec<ScalePoint>,
}

/// The benchmark network on `n` nodes: a torus as close to square as the
/// factorization of `n` allows, falling back to a ring when `n` has no
/// divisor ≥ 3 (primes and small numbers).
///
/// # Panics
///
/// Panics only on programming errors (`n ≥ 3`).
pub fn scale_graph(n: usize) -> Graph {
    let mut rows = 1;
    for r in (2..=n).take_while(|r| r * r <= n) {
        if n % r == 0 {
            rows = r;
        }
    }
    if rows >= 3 && n / rows >= 3 {
        topology::torus(rows, n / rows, 1.0).expect("valid torus")
    } else {
        topology::ring(n, 1.0).expect("valid ring")
    }
}

/// The benchmark problem: `m` files with seeded random access patterns on
/// the [`scale_graph`], node capacity 10× the even-split load.
///
/// # Panics
///
/// Panics only on programming errors (the generated parameters are valid).
pub fn scale_problem(graph: &Graph, m: usize) -> MultiFileProblem {
    let n = graph.node_count();
    let patterns: Vec<AccessPattern> = (0..m)
        .map(|j| AccessPattern::random(n, 0.05..0.2, 1_000 + j as u64).expect("valid pattern"))
        .collect();
    let offered: f64 = patterns.iter().map(AccessPattern::total_rate).sum();
    let mu = 10.0 * offered / n as f64;
    MultiFileProblem::mm1(graph, &patterns, mu, 1.0).expect("valid problem")
}

fn checksum_matrix(matrix: &CostMatrix) -> f64 {
    matrix.as_matrix().as_slice().iter().sum()
}

fn checksum_solution(solution: &MultiFileSolution) -> f64 {
    solution.final_cost
        + solution.allocations.iter().flat_map(|row| row.iter()).sum::<f64>()
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64() * 1e3, value)
}

/// Runs the sweep: for each `n` an all-pairs point, and for each `(n, m)` a
/// multi-file point of exactly `iterations` solver steps (ε is set far below
/// attainability so every run pays the same iteration count).
///
/// # Panics
///
/// Panics if any parallel result differs bitwise from its sequential
/// counterpart — the determinism contract this PR's tests pin down.
pub fn bench_scale(
    ns: &[usize],
    ms: &[usize],
    iterations: usize,
    parallelism: Parallelism,
) -> ScaleReport {
    let mut points = Vec::new();
    for &n in ns {
        let graph = scale_graph(n);
        let (sequential_ms, seq) = time_ms(|| graph.shortest_path_matrix().expect("connected"));
        let (parallel_ms, par) =
            time_ms(|| graph.shortest_path_matrix_parallel(parallelism).expect("connected"));
        assert_eq!(seq, par, "all-pairs parallel result diverged at N = {n}");
        points.push(ScalePoint {
            kind: "all_pairs".into(),
            n,
            m: 1,
            sequential_ms,
            parallel_ms,
            speedup: sequential_ms / parallel_ms,
            checksum: checksum_matrix(&seq),
        });

        for &m in ms {
            let problem = scale_problem(&graph, m);
            let initial = vec![vec![1.0 / n as f64; n]; m];
            let mut seq_scratch = MultiFileScratch::new();
            let mut par_scratch = MultiFileScratch::new();
            // ε far below attainability: every run pays `iterations` steps.
            let epsilon = 1e-300;
            let (sequential_ms, seq) = time_ms(|| {
                problem
                    .solve_with_scratch(
                        &initial,
                        0.002,
                        epsilon,
                        iterations,
                        Parallelism::Sequential,
                        &mut seq_scratch,
                    )
                    .expect("stable solve")
            });
            let (parallel_ms, par) = time_ms(|| {
                problem
                    .solve_with_scratch(
                        &initial,
                        0.002,
                        epsilon,
                        iterations,
                        parallelism,
                        &mut par_scratch,
                    )
                    .expect("stable solve")
            });
            assert_eq!(seq, par, "multi-file parallel result diverged at N = {n}, M = {m}");
            points.push(ScalePoint {
                kind: "multi_file".into(),
                n,
                m,
                sequential_ms,
                parallel_ms,
                speedup: sequential_ms / parallel_ms,
                checksum: checksum_solution(&seq),
            });
        }
    }
    ScaleReport {
        threads: parallelism.thread_count(),
        ns: ns.to_vec(),
        ms: ms.to_vec(),
        iterations,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_graph_prefers_square_torus() {
        assert_eq!(scale_graph(64).node_count(), 64);
        assert_eq!(scale_graph(9).link_count(), 9 * 4); // 3×3 torus, out-degree 4
        assert_eq!(scale_graph(7).link_count(), 7 * 2); // prime → ring
    }

    #[test]
    fn bench_scale_produces_consistent_points() {
        let report = bench_scale(&[16], &[1, 2], 3, Parallelism::Fixed(2));
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.threads, 2);
        for p in &report.points {
            assert!(p.sequential_ms >= 0.0 && p.parallel_ms >= 0.0);
            assert!(p.checksum.is_finite());
        }
    }
}
