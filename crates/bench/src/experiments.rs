//! The per-figure experiment implementations.
//!
//! Figures 3–6 use the paper's §6 parameters (see [`crate::paper`]);
//! Figures 8–9 use the §7.3 four-node virtual rings. All boundary handling
//! for the §6 figures is [`BoundaryRule::Unconstrained`], which is what the
//! paper's own simulation evidently used (see `DESIGN.md`: with α = 0.67
//! the first step leaves the positive orthant transiently, yet the paper
//! reports 4-iteration convergence).

use serde::{Deserialize, Serialize};

use fap_core::{baseline, bound, reference, HostingMarket, SingleFileProblem};
use fap_econ::{
    BoundaryRule, GossipOptimizer, Neighborhood, PriceDirectedOptimizer,
    ResourceDirectedOptimizer, SecondOrderOptimizer, StepSize,
};
use fap_net::{topology, AccessPattern};
use fap_queue::{NetworkSimulation, ServiceDistribution};
use fap_ring::{RingSolver, VirtualRing};
use fap_runtime::{DistributedRun, ExchangeScheme, MessageCounting};

use crate::paper;
use crate::series::Series;

/// One Figure-3 convergence profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Curve {
    /// Step size α.
    pub alpha: f64,
    /// Iterations the paper reports for this α.
    pub paper_iterations: usize,
    /// Iterations we measure.
    pub iterations: usize,
    /// Whether the ε-criterion fired.
    pub converged: bool,
    /// Whether the cost decreased strictly monotonically.
    pub monotone: bool,
    /// Cost per iteration.
    pub profile: Series,
    /// Final allocation.
    pub allocation: Vec<f64>,
}

/// Figure 3: convergence profiles on the §6 ring for the paper's four α.
///
/// # Panics
///
/// Panics only if the fixed paper parameters fail to evaluate (a bug).
pub fn fig3() -> Vec<Fig3Curve> {
    paper::FIG3_ALPHAS
        .iter()
        .map(|&(alpha, paper_iterations)| {
            let problem = paper::ring_problem();
            let s = ResourceDirectedOptimizer::new(StepSize::Fixed(alpha))
                .with_boundary(BoundaryRule::Unconstrained)
                .with_epsilon(paper::EPSILON)
                .run(&problem, &paper::START)
                .expect("paper parameters evaluate");
            Fig3Curve {
                alpha,
                paper_iterations,
                iterations: s.iterations,
                converged: s.converged,
                monotone: s.trace.is_cost_monotone_decreasing(1e-12),
                profile: Series::from_values(format!("alpha={alpha}"), &s.trace.cost_series()),
                allocation: s.allocation,
            }
        })
        .collect()
}

/// Figure 4: starting with the entire file at one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Cost of the best integral (whole-file) placement.
    pub integral_cost: f64,
    /// Cost of the fractional optimum.
    pub optimal_cost: f64,
    /// Relative reduction `(integral − optimal) / integral`, in percent
    /// (the paper reports "significant (25%)"; the §6 parameters actually
    /// give 40%).
    pub reduction_percent: f64,
    /// Cost per iteration starting from `(0, 0, 0, 1)`.
    pub profile: Series,
    /// Final allocation.
    pub allocation: Vec<f64>,
}

/// Figure 4: the argument for fragmenting the file.
///
/// # Panics
///
/// Panics only if the fixed paper parameters fail to evaluate (a bug).
pub fn fig4() -> Fig4Result {
    let problem = paper::ring_problem();
    let integral = baseline::best_single_node(&problem).expect("integral placement exists");
    let optimum = reference::solve(&problem).expect("waterfilling solves");
    let s = ResourceDirectedOptimizer::new(StepSize::Fixed(0.3))
        .with_boundary(BoundaryRule::Unconstrained)
        .with_epsilon(paper::EPSILON)
        .run(&problem, &[0.0, 0.0, 0.0, 1.0])
        .expect("paper parameters evaluate");
    Fig4Result {
        integral_cost: integral.cost,
        optimal_cost: optimum.cost,
        reduction_percent: 100.0 * (integral.cost - optimum.cost) / integral.cost,
        profile: Series::from_values("from integral placement", &s.trace.cost_series()),
        allocation: s.allocation,
    }
}

/// Figure 5: iterations to convergence as a function of α.
///
/// Returns `(alpha, iterations)` pairs; `None` iterations means the run
/// failed to converge within `cap` (diverged or oscillated).
pub fn fig5(alphas: &[f64], cap: usize) -> Vec<(f64, Option<usize>)> {
    alphas
        .iter()
        .map(|&alpha| {
            let problem = paper::ring_problem();
            let result = ResourceDirectedOptimizer::new(StepSize::Fixed(alpha))
                .with_boundary(BoundaryRule::Unconstrained)
                .with_epsilon(paper::EPSILON)
                .with_max_iterations(cap)
                .run(&problem, &paper::START);
            let iterations = match result {
                Ok(s) if s.converged => Some(s.iterations),
                _ => None, // diverged (model error) or hit the cap
            };
            (alpha, iterations)
        })
        .collect()
}

/// The default Figure-5 α grid.
pub fn fig5_default_grid() -> Vec<f64> {
    let mut grid = Vec::new();
    let mut a = 0.02;
    while a < 1.0 {
        grid.push(a);
        a += 0.02;
    }
    grid
}

/// One Figure-6 data point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Point {
    /// Network size `N`.
    pub n: usize,
    /// The best α found on the search grid.
    pub best_alpha: f64,
    /// Iterations at the best α.
    pub iterations: usize,
    /// Largest deviation of the final allocation from the expected `1/N`.
    pub deviation_from_even: f64,
}

/// Figure 6: iterations (at the best α) for fully connected networks of
/// `4 ≤ N ≤ 20` nodes — the paper's range. Any `ns` are accepted; for the
/// large-N regime (hundreds of nodes) expect the grid's best α to sit at its
/// low end and the iteration count to grow roughly linearly in `N`, and
/// prefer `--release`: each point runs the optimizer 30 times over the α
/// grid (with one reused scratch, so the sweep itself does not allocate).
///
/// # Panics
///
/// Panics if no α on the grid converges for some `N` (does not happen for
/// the paper's parameter range).
pub fn fig6(ns: impl IntoIterator<Item = usize>) -> Vec<Fig6Point> {
    let grid: Vec<f64> = (1..=30).map(|i| i as f64 * 0.04).collect();
    let mut scratch = fap_econ::OptimizerScratch::new();
    ns.into_iter()
        .map(|n| {
            let problem = paper::full_mesh_problem(n);
            let start = paper::spread_start(n);
            let mut best: Option<(f64, usize, Vec<f64>)> = None;
            for &alpha in &grid {
                let result = ResourceDirectedOptimizer::new(StepSize::Fixed(alpha))
                    .with_boundary(BoundaryRule::Unconstrained)
                    .with_epsilon(paper::EPSILON)
                    .with_max_iterations(5_000)
                    .run_with_scratch(&problem, &start, &mut scratch);
                if let Ok(s) = result {
                    if s.converged
                        && best.as_ref().is_none_or(|&(_, it, _)| s.iterations < it)
                    {
                        best = Some((alpha, s.iterations, s.allocation));
                    }
                }
            }
            let (best_alpha, iterations, allocation) =
                best.expect("some alpha converges for every N in the paper's range");
            let even = 1.0 / n as f64;
            let deviation_from_even = allocation
                .iter()
                .map(|x| (x - even).abs())
                .fold(0.0, f64::max);
            Fig6Point { n, best_alpha, iterations, deviation_from_even }
        })
        .collect()
}

/// A Figure-8/9 virtual-ring profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingProfile {
    /// Curve label.
    pub label: String,
    /// Step size used.
    pub alpha: f64,
    /// Cost per iteration.
    pub profile: Series,
    /// Largest single-iteration cost increase (oscillation amplitude).
    pub amplitude: f64,
    /// Best cost observed.
    pub best_cost: f64,
}

/// The §7.3 four-node virtual ring with the given link costs:
/// λ_i = 0.25, μ = 1.5, k = 1, m = 2 copies.
///
/// # Panics
///
/// Panics only on invalid fixed parameters (a bug).
pub fn fig8_ring(link_costs: Vec<f64>) -> VirtualRing {
    VirtualRing::new(link_costs, vec![0.25; 4], vec![paper::MU; 4], 2.0, paper::K)
        .expect("valid ring")
}

fn ring_profile(label: &str, ring: &VirtualRing, alpha: f64, iterations: usize) -> RingProfile {
    let s = RingSolver::new(alpha)
        .without_adaptation()
        .with_max_iterations(iterations)
        .solve(ring, &[2.0, 0.0, 0.0, 0.0])
        .expect("ring parameters evaluate");
    RingProfile {
        label: label.to_string(),
        alpha,
        profile: Series::from_values(label, &s.cost_series),
        amplitude: s.oscillation_amplitude(),
        best_cost: s.best_cost,
    }
}

/// Figure 8: convergence profiles for the communication-dominated ring
/// (link costs `(4,1,1,1)`) versus the delay-dominated unit-cost ring.
pub fn fig8() -> (RingProfile, RingProfile) {
    let comm = ring_profile("link costs (4,1,1,1)", &fig8_ring(vec![4.0, 1.0, 1.0, 1.0]), 0.1, 120);
    let delay = ring_profile("unit link costs", &fig8_ring(vec![1.0; 4]), 0.1, 120);
    (comm, delay)
}

/// Figure 9: the same ring at α = 0.1 versus α = 0.05 — decreasing the
/// step size shrinks the oscillations.
pub fn fig9() -> (RingProfile, RingProfile) {
    let ring = fig8_ring(vec![4.0, 1.0, 1.0, 1.0]);
    let big = ring_profile("alpha=0.1", &ring, 0.1, 160);
    let small = ring_profile("alpha=0.05", &ring, 0.05, 160);
    (big, small)
}

/// Ablation A1: the Theorem-2 bound versus step sizes that work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct A1Result {
    /// The bound as printed in the paper.
    pub paper_bound: f64,
    /// The bound the appendix algebra yields.
    pub exact_bound: f64,
    /// The largest α (to 3 significant digits) that still converges within
    /// 2 000 iterations, found by bisection.
    pub empirical_max_alpha: f64,
    /// `empirical_max_alpha / paper_bound` — how conservative the theory is.
    pub conservatism_factor: f64,
}

/// Ablation A1 on the §6 ring.
///
/// # Panics
///
/// Panics only on invalid fixed parameters (a bug).
pub fn a1_alpha_bound() -> A1Result {
    let problem = paper::ring_problem();
    let paper_bound = bound::alpha_bound_paper(&problem, paper::EPSILON).expect("bound valid");
    let exact_bound = bound::alpha_bound_exact(&problem, paper::EPSILON).expect("bound valid");

    let converges = |alpha: f64| -> bool {
        ResourceDirectedOptimizer::new(StepSize::Fixed(alpha))
            .with_boundary(BoundaryRule::Unconstrained)
            .with_epsilon(paper::EPSILON)
            .with_max_iterations(2_000)
            .run(&problem, &paper::START)
            .map(|s| s.converged)
            .unwrap_or(false)
    };
    let mut lo = 0.01;
    let mut hi = 16.0;
    assert!(converges(lo), "base step must converge");
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if converges(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    A1Result {
        paper_bound,
        exact_bound,
        empirical_max_alpha: lo,
        conservatism_factor: lo / paper_bound,
    }
}

/// Ablation A2: scale resilience of the second-derivative algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct A2Result {
    /// Cost-scale factor applied (all link costs and k multiplied).
    pub scale: f64,
    /// First-order iterations on the base problem.
    pub first_base: Option<usize>,
    /// First-order iterations on the scaled problem (same α).
    pub first_scaled: Option<usize>,
    /// Second-order iterations on the base problem.
    pub second_base: Option<usize>,
    /// Second-order iterations on the scaled problem (same α).
    pub second_scaled: Option<usize>,
}

/// Ablation A2 (§8.2): multiply the whole cost scale by `scale` and compare
/// iteration counts at fixed α for the first- and second-derivative
/// algorithms. The asymmetric workload makes the problem non-trivial.
///
/// # Panics
///
/// Panics only on invalid fixed parameters (a bug).
pub fn a2_second_derivative(scale: f64) -> A2Result {
    let graph = topology::ring(4, 1.0).expect("valid ring");
    let pattern =
        AccessPattern::new(vec![0.4, 0.3, 0.2, 0.1]).expect("valid pattern");
    let base = SingleFileProblem::mm1(&graph, &pattern, paper::MU, paper::K).expect("valid");
    let scaled_graph = topology::ring(4, scale).expect("valid ring");
    let scaled = SingleFileProblem::mm1(&scaled_graph, &pattern, paper::MU, paper::K * scale)
        .expect("valid");

    let first = |p: &SingleFileProblem| {
        ResourceDirectedOptimizer::new(StepSize::Fixed(0.15))
            .with_epsilon(1e-5)
            .with_max_iterations(20_000)
            .run(p, &[0.25; 4])
            .ok()
            .filter(|s| s.converged)
            .map(|s| s.iterations)
    };
    let second = |p: &SingleFileProblem| {
        SecondOrderOptimizer::new(StepSize::Fixed(0.5))
            .with_epsilon(1e-5)
            .with_max_iterations(20_000)
            .run(p, &[0.25; 4])
            .ok()
            .filter(|s| s.converged)
            .map(|s| s.iterations)
    };
    A2Result {
        scale,
        first_base: first(&base),
        first_scaled: first(&scaled),
        second_base: second(&base),
        second_scaled: second(&scaled),
    }
}

/// Ablation A3: price-directed versus resource-directed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct A3Result {
    /// Resource-directed iterations.
    pub resource_iterations: usize,
    /// Price-directed iterations.
    pub price_iterations: usize,
    /// Worst intermediate `|Σx − 1|` of the resource-directed run (zero by
    /// Theorem 1).
    pub resource_max_infeasibility: f64,
    /// Worst intermediate `|D(p) − 1|` of the tâtonnement.
    pub price_max_infeasibility: f64,
    /// Max per-node difference between the two final allocations.
    pub optimum_gap: f64,
}

/// Ablation A3 (§2) on an asymmetric 5-node network.
///
/// # Panics
///
/// Panics only on invalid fixed parameters (a bug).
pub fn a3_price_vs_resource() -> A3Result {
    let graph = topology::random_connected(5, 0.5, 1.0..3.0, 7).expect("valid graph");
    let pattern = AccessPattern::random(5, 0.1..0.4, 7).expect("valid pattern");
    let problem = SingleFileProblem::mm1(&graph, &pattern, pattern.total_rate() * 1.8, paper::K)
        .expect("valid problem");

    let resource = ResourceDirectedOptimizer::new(StepSize::Fixed(0.05))
        .with_epsilon(1e-7)
        .with_recorded_allocations()
        .with_max_iterations(100_000)
        .run(&problem, &[0.2; 5])
        .expect("resource run");
    let resource_max_infeasibility = resource
        .trace
        .recorded_allocations()
        .map(|x| (x.iter().sum::<f64>() - 1.0).abs())
        .fold(0.0, f64::max);

    let market = HostingMarket::new(&problem).expect("market");
    let price = PriceDirectedOptimizer::new(0.3)
        .with_tolerance(1e-7)
        .run(&market)
        .expect("price run");

    let optimum_gap = resource
        .allocation
        .iter()
        .zip(&price.allocation)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    A3Result {
        resource_iterations: resource.iterations,
        price_iterations: price.iterations,
        resource_max_infeasibility,
        price_max_infeasibility: price.max_infeasibility(),
        optimum_gap,
    }
}

/// One row of the A4 message-complexity comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct A4Row {
    /// Exchange scheme label.
    pub scheme: String,
    /// Iterations to convergence.
    pub iterations: usize,
    /// Messages per iteration.
    pub messages_per_round: u64,
    /// Total messages to convergence.
    pub total_messages: u64,
}

/// Ablation A4 (§5.1, §8.2): message bills of central, broadcast (point to
/// point and LAN) and neighbors-only gossip on an `n`-node ring network.
///
/// # Panics
///
/// Panics only on invalid fixed parameters (a bug).
pub fn a4_messages(n: usize) -> Vec<A4Row> {
    let graph = topology::ring(n, 1.0).expect("valid ring");
    let pattern = AccessPattern::uniform(n, 1.0).expect("valid pattern");
    let problem = SingleFileProblem::mm1(&graph, &pattern, paper::MU, paper::K).expect("valid");
    let mut start = vec![0.0; n];
    start[0] = 1.0;
    let epsilon = 1e-4;

    let mut rows = Vec::new();
    for (label, scheme, counting) in [
        ("central (p2p)", ExchangeScheme::Central { coordinator: 0 }, MessageCounting::PointToPoint),
        ("broadcast (p2p)", ExchangeScheme::Broadcast, MessageCounting::PointToPoint),
        ("broadcast (LAN)", ExchangeScheme::Broadcast, MessageCounting::BroadcastMedium),
    ] {
        let r = DistributedRun::new(&problem, scheme, 0.1)
            .with_epsilon(epsilon)
            .with_counting(counting)
            .with_max_rounds(200_000)
            .run(&start)
            .expect("distributed run");
        assert!(r.converged, "{label} failed to converge");
        rows.push(A4Row {
            scheme: label.to_string(),
            iterations: r.rounds,
            messages_per_round: r.messages.per_round,
            total_messages: r.messages.total,
        });
    }

    let neighborhood = Neighborhood::ring(n).expect("ring neighborhood");
    let per_round = neighborhood.messages_per_iteration() as u64;
    let gossip = GossipOptimizer::new(neighborhood, 0.05)
        .with_epsilon(epsilon)
        .with_max_iterations(500_000)
        .run(&problem, &start)
        .expect("gossip run");
    assert!(gossip.converged, "gossip failed to converge");
    rows.push(A4Row {
        scheme: "gossip (ring)".to_string(),
        iterations: gossip.iterations,
        messages_per_round: per_round,
        total_messages: per_round * (gossip.iterations as u64 + 1),
    });
    rows
}

/// Ablation A6: the optimal-copy-count sweep (§8.2 future work).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct A6Result {
    /// Per-copy storage cost charged.
    pub per_copy_cost: f64,
    /// `(m, access cost, total cost)` per candidate.
    pub points: Vec<(f64, f64, f64)>,
    /// The winning copy count.
    pub best_copies: f64,
}

/// Ablation A6: sweep m = 1…5 copies on an 8-node expensive-link ring at
/// the given per-copy storage cost.
///
/// # Panics
///
/// Panics only on invalid fixed parameters (a bug).
pub fn a6_copy_count(per_copy_cost: f64) -> A6Result {
    let solver = RingSolver::new(0.05).with_max_iterations(2_000);
    let sweep = fap_ring::sweep_copies(
        &[6.0; 8],
        &[0.2; 8],
        &[2.0; 8],
        paper::K,
        per_copy_cost,
        &[1.0, 2.0, 3.0, 4.0, 5.0],
        &solver,
    )
    .expect("sweep parameters are valid");
    A6Result {
        per_copy_cost,
        points: sweep.points.iter().map(|p| (p.copies, p.access_cost, p.total_cost)).collect(),
        best_copies: sweep.best_point().copies,
    }
}

/// Ablation A5: analytic model versus discrete-event measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct A5Result {
    /// Analytic cost of the fractional optimum.
    pub analytic_optimal: f64,
    /// Empirical (simulated) cost of the fractional optimum.
    pub empirical_optimal: f64,
    /// Analytic cost of the best integral placement.
    pub analytic_integral: f64,
    /// Empirical cost of the best integral placement.
    pub empirical_integral: f64,
}

/// Ablation A5: simulate the §6 ring with real Poisson arrivals and FIFO
/// queues and confirm the analytic ranking (fractional < integral) holds in
/// measurement.
///
/// # Panics
///
/// Panics only on invalid fixed parameters (a bug).
pub fn a5_des_validation(duration: f64, seed: u64) -> A5Result {
    let graph = topology::ring(4, 1.0).expect("valid ring");
    let costs = graph.shortest_path_matrix().expect("connected");
    let pattern = AccessPattern::uniform(4, paper::LAMBDA).expect("valid pattern");
    let problem = paper::ring_problem();
    let optimum = reference::solve(&problem).expect("waterfilling");
    let integral = baseline::best_single_node(&problem).expect("integral");
    let mut integral_x = vec![0.0; 4];
    integral_x[integral.node] = 1.0;
    let service = ServiceDistribution::exponential(paper::MU).expect("valid service");

    let simulate = |x: Vec<f64>| {
        NetworkSimulation::new(x, pattern.clone(), costs.clone(), service)
            .expect("valid simulation")
            .with_duration(duration)
            .with_seed(seed)
            .run()
            .expect("simulation runs")
            .mean_total_cost(paper::K)
    };
    A5Result {
        analytic_optimal: optimum.cost,
        empirical_optimal: simulate(optimum.allocation.clone()),
        analytic_integral: integral.cost,
        empirical_integral: simulate(integral_x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shapes_match_the_paper() {
        let curves = fig3();
        assert_eq!(curves.len(), 4);
        for c in &curves {
            assert!(c.converged, "alpha={} did not converge", c.alpha);
            // The optimum is the even split.
            for x in &c.allocation {
                assert!((x - 0.25).abs() < 5e-3, "alpha={}: {:?}", c.alpha, c.allocation);
            }
            // Iteration counts in the same band the paper reports (within
            // a factor of two — the 1986 plot values are read off a graph).
            assert!(
                c.iterations <= 2 * c.paper_iterations + 2
                    && 2 * c.iterations + 2 >= c.paper_iterations,
                "alpha={}: {} iterations vs paper's {}",
                c.alpha,
                c.iterations,
                c.paper_iterations
            );
        }
        // Smaller α ⇒ more iterations (the Figure-3 ordering).
        for pair in curves.windows(2) {
            assert!(pair[0].iterations <= pair[1].iterations);
        }
    }

    #[test]
    fn fig4_shows_a_large_reduction() {
        let r = fig4();
        assert!((r.integral_cost - 3.0).abs() < 1e-9);
        assert!((r.optimal_cost - 1.8).abs() < 1e-6);
        assert!(r.reduction_percent > 25.0);
        for x in &r.allocation {
            assert!((x - 0.25).abs() < 5e-3);
        }
    }

    #[test]
    fn fig5_iterations_blow_up_for_tiny_alpha_with_a_wide_plateau() {
        let points = fig5(&[0.02, 0.1, 0.3, 0.5, 0.7], 100_000);
        let tiny = points[0].1.expect("tiny alpha converges slowly");
        let mid = points[2].1.expect("mid alpha converges");
        assert!(tiny > 5 * mid, "tiny {tiny} vs mid {mid}");
        // Plateau: a broad range of α converges in few iterations.
        for &(alpha, it) in &points[1..] {
            let it = it.unwrap_or(usize::MAX);
            assert!(it < 200, "alpha={alpha} took {it}");
        }
    }

    #[test]
    fn fig6_iterations_stay_flat_with_network_size() {
        let points = fig6([4usize, 8, 12]);
        for p in &points {
            assert!(p.deviation_from_even < 5e-3, "N={}: {:?}", p.n, p);
        }
        let first = points.first().unwrap().iterations as f64;
        let last = points.last().unwrap().iterations as f64;
        assert!(last <= 3.0 * first.max(4.0), "iterations grew: {points:?}");
    }

    #[test]
    fn fig8_comm_dominated_ring_oscillates_more() {
        let (comm, delay) = fig8();
        assert!(comm.amplitude > delay.amplitude);
    }

    #[test]
    fn fig9_smaller_alpha_oscillates_less() {
        let (big, small) = fig9();
        assert!(small.amplitude < big.amplitude);
    }

    #[test]
    fn a1_bound_is_orders_of_magnitude_conservative() {
        let r = a1_alpha_bound();
        assert!(r.paper_bound < 1e-7);
        assert!(r.exact_bound < r.paper_bound);
        assert!(r.empirical_max_alpha > 0.5);
        assert!(r.conservatism_factor > 1e5);
    }

    #[test]
    fn a3_price_is_infeasible_in_the_interim_resource_is_not() {
        let r = a3_price_vs_resource();
        assert!(r.resource_max_infeasibility < 1e-9);
        assert!(r.price_max_infeasibility > 0.01);
        assert!(r.optimum_gap < 1e-3);
    }

    #[test]
    fn a6_storage_cost_moves_the_optimal_copy_count() {
        assert!(a6_copy_count(0.5).best_copies > a6_copy_count(25.0).best_copies);
        assert_eq!(a6_copy_count(25.0).best_copies, 1.0);
    }

    #[test]
    fn a4_gossip_trades_rounds_for_messages() {
        let rows = a4_messages(6);
        let broadcast = rows.iter().find(|r| r.scheme == "broadcast (p2p)").unwrap();
        let central = rows.iter().find(|r| r.scheme == "central (p2p)").unwrap();
        let gossip = rows.iter().find(|r| r.scheme == "gossip (ring)").unwrap();
        assert!(central.messages_per_round < broadcast.messages_per_round);
        assert!(gossip.messages_per_round < broadcast.messages_per_round);
        assert!(gossip.iterations > broadcast.iterations);
    }
}
