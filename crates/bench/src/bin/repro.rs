//! Regenerates every figure of the paper plus the ablations, printing the
//! series and writing CSVs under `experiments/`.
//!
//! ```text
//! cargo run --release -p fap-bench --bin repro [out_dir]
//! ```

use std::fs;
use std::path::PathBuf;

use fap_bench::experiments;
use fap_bench::series::{to_csv, Series};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args().nth(1).map_or_else(|| PathBuf::from("experiments"), PathBuf::from);
    fs::create_dir_all(&out_dir)?;
    let write = |name: &str, series: &[Series]| -> std::io::Result<()> {
        fs::write(out_dir.join(name), to_csv(series))
    };

    println!("== Figure 3: convergence profiles (4-node ring, mu=1.5, k=1, lambda=1, eps=1e-3) ==");
    let fig3 = experiments::fig3();
    for c in &fig3 {
        println!(
            "  alpha={:<5} iterations={:<4} (paper: {:<3}) converged={} monotone={} final cost={:.6}",
            c.alpha,
            c.iterations,
            c.paper_iterations,
            c.converged,
            c.monotone,
            c.profile.last_y().unwrap_or(f64::NAN),
        );
    }
    write("fig3_convergence.csv", &fig3.iter().map(|c| c.profile.clone()).collect::<Vec<_>>())?;

    println!("\n== Figure 4: starting with the entire file at one node ==");
    let fig4 = experiments::fig4();
    println!(
        "  integral cost={:.4}  fractional optimum={:.4}  reduction={:.1}% (paper: \"significant (25%)\")",
        fig4.integral_cost, fig4.optimal_cost, fig4.reduction_percent
    );
    write("fig4_fragmentation.csv", std::slice::from_ref(&fig4.profile))?;

    println!("\n== Figure 5: iterations to convergence vs alpha ==");
    let grid = experiments::fig5_default_grid();
    let fig5 = experiments::fig5(&grid, 100_000);
    let fig5_series = Series::new(
        "iterations",
        fig5.iter()
            .filter_map(|&(a, it)| it.map(|it| (a, it as f64)))
            .collect::<Vec<_>>(),
    );
    let sample: Vec<String> = fig5
        .iter()
        .step_by(5)
        .map(|&(a, it)| format!("{a:.2}:{}", it.map_or("-".into(), |v| v.to_string())))
        .collect();
    println!("  alpha:iterations  {}", sample.join("  "));
    write("fig5_stepsize.csv", &[fig5_series])?;

    println!("\n== Figure 6: iterations (best alpha) vs network size N ==");
    let fig6 = experiments::fig6(4..=20);
    for p in &fig6 {
        println!(
            "  N={:<3} best_alpha={:.2}  iterations={:<4} max|x - 1/N|={:.2e}",
            p.n, p.best_alpha, p.iterations, p.deviation_from_even
        );
    }
    let fig6_series =
        Series::new("iterations", fig6.iter().map(|p| (p.n as f64, p.iterations as f64)).collect());
    write("fig6_scaling.csv", &[fig6_series])?;

    println!("\n== Figure 8: multi-copy virtual ring (m=2) convergence profiles ==");
    let (comm, delay) = experiments::fig8();
    println!(
        "  {}: amplitude={:.4} best={:.4}   {}: amplitude={:.4} best={:.4}",
        comm.label, comm.amplitude, comm.best_cost, delay.label, delay.amplitude, delay.best_cost
    );
    write("fig8_multicopy.csv", &[comm.profile.clone(), delay.profile.clone()])?;

    println!("\n== Figure 9: decreasing alpha shrinks the oscillations ==");
    let (big, small) = experiments::fig9();
    println!(
        "  {}: amplitude={:.4}   {}: amplitude={:.4}",
        big.label, big.amplitude, small.label, small.amplitude
    );
    write("fig9_oscillation.csv", &[big.profile.clone(), small.profile.clone()])?;

    println!("\n== A1: Theorem-2 step bound vs practice ==");
    let a1 = experiments::a1_alpha_bound();
    println!(
        "  paper bound={:.3e}  exact bound={:.3e}  empirical max alpha={:.3}  conservatism={:.1e}x",
        a1.paper_bound, a1.exact_bound, a1.empirical_max_alpha, a1.conservatism_factor
    );

    println!("\n== A2: second-derivative scale resilience (cost scale x10) ==");
    let a2 = experiments::a2_second_derivative(10.0);
    let show = |v: Option<usize>| v.map_or("diverged".to_string(), |x| x.to_string());
    println!(
        "  first-order:  base={}  scaled={}\n  second-order: base={}  scaled={}",
        show(a2.first_base),
        show(a2.first_scaled),
        show(a2.second_base),
        show(a2.second_scaled)
    );

    println!("\n== A3: price-directed vs resource-directed ==");
    let a3 = experiments::a3_price_vs_resource();
    println!(
        "  resource: iters={} max infeasibility={:.2e}\n  price:    iters={} max infeasibility={:.3}\n  optimum gap={:.2e}",
        a3.resource_iterations,
        a3.resource_max_infeasibility,
        a3.price_iterations,
        a3.price_max_infeasibility,
        a3.optimum_gap
    );

    println!("\n== A4: message complexity (8-node ring) ==");
    for row in experiments::a4_messages(8) {
        println!(
            "  {:<16} rounds={:<6} msgs/round={:<4} total={}",
            row.scheme, row.iterations, row.messages_per_round, row.total_messages
        );
    }

    println!("\n== A6: optimal copy count vs per-copy storage cost ==");
    for sigma in [0.5, 2.0, 25.0] {
        let a6 = experiments::a6_copy_count(sigma);
        let detail: Vec<String> =
            a6.points.iter().map(|(m, _, t)| format!("m={m}:{t:.2}")).collect();
        println!("  per-copy cost {sigma}: best m = {}   ({})", a6.best_copies, detail.join("  "));
    }

    println!("\n== A5: analytic vs discrete-event measurement ==");
    let a5 = experiments::a5_des_validation(200_000.0, 42);
    println!(
        "  optimal:  analytic={:.4} empirical={:.4}\n  integral: analytic={:.4} empirical={:.4}",
        a5.analytic_optimal, a5.empirical_optimal, a5.analytic_integral, a5.empirical_integral
    );

    println!("\nCSV series written to {}", out_dir.display());
    Ok(())
}
