//! The drift benchmark: the online-reallocation control loop over every
//! scenario preset, hard-gated on its two contracts.
//!
//! For each scenario [`bench_drift`] runs the seeded [`DriftRun`] once
//! sequentially (timed) and once per thread count in the grid, asserting
//! the reports are bit-identical — the tracker's determinism contract.
//! The diurnal point additionally asserts the ISSUE's regret gate:
//! tracked regret at most 10% of the static-allocation regret. Results
//! serialize to the `BENCH_drift.json` schema committed at the repo root;
//! regenerate with `fap bench-drift` (prefer `--release`). `--check`
//! re-runs the committed grid: regret bits, virtual counts and the regret
//! gate are hard failures, wall-clock drift only an advisory.

use std::time::Instant;

use fap_batch::Parallelism;
use fap_net::topology;
use fap_runtime::{DriftConfig, DriftReport, DriftRun, DriftScenario};
use serde::{Deserialize, Serialize};

pub use crate::scale::CheckOutcome;

/// The regret gate: tracked regret must stay within this fraction of the
/// static-allocation regret on the diurnal scenario.
pub const REGRET_GATE: f64 = 0.1;

/// One scenario's measured run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftPoint {
    /// Scenario label ([`DriftScenario::label`]).
    pub scenario: String,
    /// `Σ_t max(0, u*_t − u_tracked_t)` over the run.
    pub tracked_regret: f64,
    /// `Σ_t max(0, u*_t − u_static_t)` over the run.
    pub static_regret: f64,
    /// `tracked_regret / static_regret`.
    pub regret_ratio: f64,
    /// Total fragment mass the tracker moved.
    pub total_movement: f64,
    /// Total copy steps the migration planner scheduled.
    pub total_copies: usize,
    /// Total bandwidth-bounded migration rounds scheduled.
    pub total_rounds: usize,
    /// Total re-solve iterations across all epochs (virtual count).
    pub iterations: u64,
    /// Epochs that re-solved warm (all but the first).
    pub warm_epochs: usize,
    /// A content checksum over the report (regrets, movement, final
    /// allocation and per-epoch utilities), equal at every thread count.
    pub checksum: f64,
    /// Sequential wall clock, milliseconds. Machine-dependent — advisory.
    pub run_ms: f64,
}

/// The full drift benchmark report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftBenchReport {
    /// Logical CPUs of the recording host
    /// (`std::thread::available_parallelism()`).
    #[serde(default)]
    pub host_threads: usize,
    /// Ring size the scenarios run on.
    pub nodes: usize,
    /// Epochs per scenario.
    pub epochs: usize,
    /// Trajectory seed.
    pub seed: u64,
    /// The scenario labels, in run order.
    pub scenarios: Vec<String>,
    /// Thread counts each run was re-checked at for bit-identity.
    pub thread_grid: Vec<usize>,
    /// One point per scenario.
    pub points: Vec<DriftPoint>,
}

/// The benchmark's [`DriftConfig`] for a scenario preset: the library
/// defaults with the grid's epoch count and seed, and an iteration cap
/// sized for the small ring.
///
/// # Panics
///
/// Panics on an unknown scenario label (the grids are fixed).
pub fn drift_config(label: &str, epochs: usize, seed: u64) -> DriftConfig {
    let scenario = DriftScenario::preset(label, epochs)
        .unwrap_or_else(|| panic!("unknown drift scenario '{label}'"));
    DriftConfig { scenario, epochs, seed, max_iterations: 60_000, ..DriftConfig::default() }
}

fn checksum_report(report: &DriftReport) -> f64 {
    report.tracked_regret
        + report.static_regret
        + report.total_movement
        + report.final_allocation.iter().sum::<f64>()
        + report.epochs.iter().map(|e| e.tracked_utility + e.movement).sum::<f64>()
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64() * 1e3, value)
}

/// Runs the sweep: each scenario once sequentially (timed), then once per
/// thread count asserting the report is bit-identical.
///
/// # Panics
///
/// Panics if any threaded report differs bitwise from the sequential one,
/// or if the diurnal point misses the [`REGRET_GATE`] — the tracker's two
/// contracts.
pub fn bench_drift(
    scenarios: &[String],
    nodes: usize,
    epochs: usize,
    seed: u64,
    thread_grid: &[usize],
) -> DriftBenchReport {
    let graph = topology::ring(nodes, 1.0).expect("valid ring");
    let mut points = Vec::with_capacity(scenarios.len());
    for label in scenarios {
        let run = DriftRun::new(&graph, drift_config(label, epochs, seed))
            .expect("valid drift config");
        let (run_ms, sequential) = time_ms(|| run.run(Parallelism::Sequential));
        let sequential = sequential.expect("the benchmark trajectory must solve cleanly");
        for &threads in thread_grid {
            let parallel =
                run.run(Parallelism::Fixed(threads)).expect("threaded run must succeed");
            assert_eq!(
                sequential, parallel,
                "drift report diverged at scenario = {label}, threads = {threads}"
            );
        }
        let point = DriftPoint {
            scenario: label.clone(),
            tracked_regret: sequential.tracked_regret,
            static_regret: sequential.static_regret,
            regret_ratio: sequential.regret_ratio(),
            total_movement: sequential.total_movement,
            total_copies: sequential.total_copies,
            total_rounds: sequential.total_rounds,
            iterations: sequential.epochs.iter().map(|e| e.iterations as u64).sum(),
            warm_epochs: sequential.epochs.iter().filter(|e| e.warm).count(),
            checksum: checksum_report(&sequential),
            run_ms,
        };
        if label == "diurnal" {
            assert!(
                point.regret_ratio <= REGRET_GATE,
                "diurnal regret ratio {} exceeds the {REGRET_GATE} gate \
                 (tracked {} vs static {})",
                point.regret_ratio,
                point.tracked_regret,
                point.static_regret
            );
        }
        points.push(point);
    }
    DriftBenchReport {
        host_threads: crate::scale::host_threads(),
        nodes,
        epochs,
        seed,
        scenarios: scenarios.to_vec(),
        thread_grid: thread_grid.to_vec(),
        points,
    }
}

/// Compares a `fresh` run against the `committed` report
/// (`fap bench-drift --check`).
///
/// Grid identity, regret/checksum bits (via [`f64::to_bits`]), the virtual
/// counts (iterations, copies, rounds, warm epochs) and the diurnal
/// [`REGRET_GATE`] are hard gates — the control loop is deterministic on
/// any machine. Host CPU count and wall-clock timings only produce
/// advisories.
pub fn check_against(
    committed: &DriftBenchReport,
    fresh: &DriftBenchReport,
    timing_tolerance: f64,
) -> CheckOutcome {
    let mut outcome = CheckOutcome::default();
    if committed.nodes != fresh.nodes
        || committed.epochs != fresh.epochs
        || committed.seed != fresh.seed
        || committed.scenarios != fresh.scenarios
        || committed.thread_grid != fresh.thread_grid
    {
        outcome.hard_failures.push(format!(
            "grid mismatch: committed {} nodes × {} epochs seed {} {:?} threads {:?}, \
             fresh {} nodes × {} epochs seed {} {:?} threads {:?}",
            committed.nodes,
            committed.epochs,
            committed.seed,
            committed.scenarios,
            committed.thread_grid,
            fresh.nodes,
            fresh.epochs,
            fresh.seed,
            fresh.scenarios,
            fresh.thread_grid
        ));
    }
    if committed.points.len() != fresh.points.len() {
        outcome.hard_failures.push(format!(
            "point count mismatch: committed {}, fresh {}",
            committed.points.len(),
            fresh.points.len()
        ));
        return outcome;
    }
    if committed.host_threads != fresh.host_threads {
        outcome.advisories.push(format!(
            "host CPU count differs: committed {}, fresh {} (machine-dependent)",
            committed.host_threads, fresh.host_threads
        ));
    }
    for (old, new) in committed.points.iter().zip(&fresh.points) {
        let label = format!("scenario={}", old.scenario);
        if old.scenario != new.scenario {
            outcome.hard_failures.push(format!(
                "point identity mismatch: committed {label}, fresh scenario={}",
                new.scenario
            ));
            continue;
        }
        for (what, was, now) in [
            ("tracked regret", old.tracked_regret, new.tracked_regret),
            ("static regret", old.static_regret, new.static_regret),
            ("checksum", old.checksum, new.checksum),
        ] {
            if was.to_bits() != now.to_bits() {
                outcome.hard_failures.push(format!(
                    "{what} diverged at {label}: committed {was:?} ({:#018x}), \
                     fresh {now:?} ({:#018x})",
                    was.to_bits(),
                    now.to_bits()
                ));
            }
        }
        if old.iterations != new.iterations
            || old.total_copies != new.total_copies
            || old.total_rounds != new.total_rounds
            || old.warm_epochs != new.warm_epochs
        {
            outcome.hard_failures.push(format!(
                "{label}: virtual counts diverged: committed {} iters {} copies {} rounds \
                 {} warm, fresh {} iters {} copies {} rounds {} warm",
                old.iterations,
                old.total_copies,
                old.total_rounds,
                old.warm_epochs,
                new.iterations,
                new.total_copies,
                new.total_rounds,
                new.warm_epochs
            ));
        }
        if new.scenario == "diurnal" && new.regret_ratio > REGRET_GATE {
            outcome.hard_failures.push(format!(
                "{label}: regret ratio {} exceeds the {REGRET_GATE} gate",
                new.regret_ratio
            ));
        }
        if new.run_ms > old.run_ms * timing_tolerance {
            outcome.advisories.push(format!(
                "{label}: run timing {:.2} ms exceeds {timing_tolerance}× committed {:.2} ms",
                new.run_ms, old.run_ms
            ));
        }
    }
    outcome
}

/// The labels of the committed grid, in run order.
pub fn default_scenarios() -> Vec<String> {
    ["diurnal", "flash-crowd", "step", "node-churn"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> DriftBenchReport {
        bench_drift(&default_scenarios(), 6, 12, 7, &[2, 3])
    }

    #[test]
    fn the_sweep_covers_every_preset_and_gates_diurnal() {
        let report = small_grid();
        assert_eq!(report.points.len(), 4);
        let diurnal = &report.points[0];
        assert_eq!(diurnal.scenario, "diurnal");
        assert!(diurnal.regret_ratio <= REGRET_GATE);
        for p in &report.points {
            assert!(p.checksum.is_finite());
            assert!(p.iterations > 0);
            assert_eq!(p.warm_epochs, report.epochs - 1, "all but epoch 0 run warm");
        }
    }

    #[test]
    fn check_passes_on_a_rerun_and_ignores_timing() {
        let committed = small_grid();
        let mut fresh = small_grid();
        fresh.points[0].run_ms = committed.points[0].run_ms * 100.0 + 1.0;
        let outcome = check_against(&committed, &fresh, 1.5);
        assert!(outcome.is_pass(), "failures: {:?}", outcome.hard_failures);
        assert!(outcome.advisories.iter().any(|a| a.contains("run timing")));
    }

    #[test]
    fn check_hard_gates_regret_bits_counts_and_the_gate() {
        let committed = small_grid();

        let mut fresh = committed.clone();
        fresh.points[1].tracked_regret += 1e-9;
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(!outcome.is_pass());
        assert!(outcome.hard_failures.iter().any(|f| f.contains("tracked regret diverged")));

        let mut fresh = committed.clone();
        fresh.points[2].total_copies += 1;
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(outcome.hard_failures.iter().any(|f| f.contains("virtual counts diverged")));

        let mut fresh = committed.clone();
        fresh.points[0].regret_ratio = REGRET_GATE * 2.0;
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(outcome.hard_failures.iter().any(|f| f.contains("exceeds the")));

        let mut regridded = committed.clone();
        regridded.epochs += 1;
        let outcome = check_against(&committed, &regridded, f64::INFINITY);
        assert!(outcome.hard_failures.iter().any(|f| f.contains("grid mismatch")));
    }
}
