//! Reproduction harness for every figure of the paper's evaluation
//! (§6 Figures 3–6, §7.3 Figures 8–9) and the ablation experiments listed
//! in `DESIGN.md`.
//!
//! Each experiment is a pure function returning structured series so that
//! the `repro` binary, the criterion benches, and the integration tests all
//! share one implementation. Run everything with:
//!
//! ```text
//! cargo run --release -p fap-bench --bin repro
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod experiments;
pub mod scale;
pub mod serve;
pub mod series;

pub use series::Series;

/// The paper's §6 experimental parameters: μ = 1.5, k = 1, λ = 1,
/// ε = 0.001, four-node ring with unit link costs, start
/// `(0.8, 0.1, 0.1, 0.0)`.
pub mod paper {
    use fap_core::SingleFileProblem;
    use fap_net::{topology, AccessPattern};

    /// Service rate μ.
    pub const MU: f64 = 1.5;
    /// Delay weight k.
    pub const K: f64 = 1.0;
    /// Network-wide access rate λ.
    pub const LAMBDA: f64 = 1.0;
    /// Convergence tolerance ε.
    pub const EPSILON: f64 = 1e-3;
    /// The §6 starting allocation.
    pub const START: [f64; 4] = [0.8, 0.1, 0.1, 0.0];
    /// The Figure 3 step sizes with the paper's reported iteration counts.
    pub const FIG3_ALPHAS: [(f64, usize); 4] =
        [(0.67, 4), (0.3, 10), (0.19, 20), (0.08, 51)];

    /// The §6 four-node ring problem.
    ///
    /// # Panics
    ///
    /// Panics only on programming errors (the fixed parameters are valid).
    pub fn ring_problem() -> SingleFileProblem {
        let graph = topology::ring(4, 1.0).expect("valid ring");
        let pattern = AccessPattern::uniform(4, LAMBDA).expect("valid pattern");
        SingleFileProblem::mm1(&graph, &pattern, MU, K).expect("valid problem")
    }

    /// The Figure 6 fully connected problem on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics only on programming errors.
    pub fn full_mesh_problem(n: usize) -> SingleFileProblem {
        let graph = topology::full_mesh(n, 1.0).expect("valid mesh");
        let pattern = AccessPattern::uniform(n, LAMBDA).expect("valid pattern");
        SingleFileProblem::mm1(&graph, &pattern, MU, K).expect("valid problem")
    }

    /// The Figure 6 starting allocation on `n` nodes:
    /// `(0.8, 0.1, 0.1, 0, 0, …)`.
    pub fn spread_start(n: usize) -> Vec<f64> {
        let mut x = vec![0.0; n];
        x[0] = 0.8;
        x[1] = 0.1;
        x[2] = 0.1;
        x
    }
}
