//! The `serve` benchmark: sequential-vs-sharded wall clock for the
//! `fap-serve` batcher over a grid of batch sizes and shard counts, plus
//! the warm-path columns — cost-matrix cache on/off build times and the
//! warm-start iteration savings on a perturbed workload.
//!
//! The sharded (work-stealing) path is bit-identical to the sequential one
//! by construction (self-contained tasks, one deterministic kernel per
//! request), and [`bench_serve`] asserts that on every point before
//! reporting a timing. Likewise the cache section asserts cached matrices
//! are bit-identical to freshly computed ones, and the warm section runs
//! on virtual counts (iterations, not wall clock), so its numbers are
//! machine-independent and hard-gated by `--check`. Results serialize to
//! the `BENCH_serve.json` schema committed at the repo root; regenerate
//! with `fap bench-serve` (prefer `--release`).

use std::time::Instant;

use fap_batch::Parallelism;
use fap_cache::CostMatrixCache;
use fap_core::{MultiFileProblem, SingleFileProblem};
use fap_net::{topology, AccessPattern, Graph};
use fap_ring::VirtualRing;
use fap_serve::{BatchServer, ServeOutput, ServeRequest, ServeResponse};
use serde::{Deserialize, Serialize};

pub use crate::scale::CheckOutcome;

/// One measured grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServePoint {
    /// Batch size (number of requests).
    pub requests: usize,
    /// Shard count of the sharded run.
    pub shards: usize,
    /// Sequential (one-shard) wall clock, milliseconds.
    pub sequential_ms: f64,
    /// Sharded wall clock, milliseconds.
    pub sharded_ms: f64,
    /// `sequential_ms / sharded_ms`.
    pub speedup: f64,
    /// A content checksum over the responses, equal for both paths.
    pub checksum: f64,
    /// Tasks the sharded run's workers stole from each other. Scheduling
    /// is timing-dependent, so this is advisory only — never hard-gated.
    #[serde(default)]
    pub steals: u64,
}

/// Cost-matrix resolution with the cache off vs on, for one batch size.
/// The hit/miss counts are deterministic (hard-gated by `--check`); the
/// timings are machine-dependent advisories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachePoint {
    /// Batch size (number of requests; ring requests need no matrix).
    pub requests: usize,
    /// Wall clock to build every request's cost matrix from scratch, ms.
    pub build_cold_ms: f64,
    /// Wall clock resolving the same matrices through a
    /// [`CostMatrixCache`], ms.
    pub build_cached_ms: f64,
    /// `build_cold_ms / build_cached_ms`.
    pub speedup: f64,
    /// Cache hits over the batch.
    pub hits: u64,
    /// Cache misses (= distinct topologies) over the batch.
    pub misses: u64,
}

/// Warm-start savings on the perturbed workload, for one batch size. All
/// fields are virtual counts or checksums — deterministic on any machine,
/// hard-gated by `--check`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmPoint {
    /// Batch size (number of requests).
    pub requests: usize,
    /// Total optimizer iterations solving the batch cold.
    pub cold_iterations: u64,
    /// Total optimizer iterations with warm-start chaining on.
    pub warm_iterations: u64,
    /// Requests that ran seeded (`serve.warm_starts`).
    pub warm_starts: u64,
    /// Iterations saved versus the chain's cold baseline
    /// (`econ.warm_start_iters_saved`).
    pub iters_saved: u64,
    /// A content checksum over the warm responses.
    pub checksum: f64,
}

/// The full benchmark report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Logical CPUs of the recording host
    /// (`std::thread::available_parallelism()`).
    #[serde(default)]
    pub host_threads: usize,
    /// Worker threads `Parallelism::Auto` would use on the machine that
    /// produced the report (informational; the grid pins explicit counts).
    pub threads: usize,
    /// The batch-size grid.
    pub batch_sizes: Vec<usize>,
    /// The shard-count grid.
    pub shard_counts: Vec<usize>,
    /// All measured points.
    pub points: Vec<ServePoint>,
    /// Cache on/off matrix-build comparison, one per batch size.
    #[serde(default)]
    pub cache_points: Vec<CachePoint>,
    /// Warm-start savings on the perturbed workload, one per batch size.
    #[serde(default)]
    pub warm_points: Vec<WarmPoint>,
}

/// The benchmark workload: a deterministic mixed batch of `count` requests
/// cycling through the three request kinds (§4 single-file, §5.2
/// multi-file, §7 ring), each with an index-seeded random access pattern.
///
/// # Panics
///
/// Panics only on programming errors (the generated parameters are valid).
pub fn serve_workload(count: usize) -> Vec<ServeRequest> {
    (0..count)
        .map(|i| {
            let seed = 7_000 + i as u64;
            match i % 3 {
                0 => {
                    let graph = topology::ring(8, 1.0).expect("valid ring");
                    let pattern =
                        AccessPattern::random(8, 0.1..0.4, seed).expect("valid pattern");
                    let problem = SingleFileProblem::mm1(&graph, &pattern, 6.0, 1.0)
                        .expect("valid problem");
                    ServeRequest::SingleFile {
                        problem,
                        initial: vec![0.125; 8],
                        alpha: 0.05,
                        epsilon: 1e-7,
                        max_iterations: 100_000,
                        topology: None,
                    }
                }
                1 => {
                    let graph = topology::ring(6, 1.0).expect("valid ring");
                    let patterns: Vec<AccessPattern> = (0..4)
                        .map(|j| {
                            AccessPattern::random(6, 0.05..0.3, seed + 31 * j)
                                .expect("valid pattern")
                        })
                        .collect();
                    let problem = MultiFileProblem::mm1(&graph, &patterns, 8.0, 1.0)
                        .expect("valid problem");
                    ServeRequest::MultiFile {
                        problem,
                        initial: vec![vec![1.0 / 6.0; 6]; 4],
                        alpha: 0.05,
                        epsilon: 1e-7,
                        max_iterations: 50_000,
                        topology: None,
                    }
                }
                _ => {
                    let ring = VirtualRing::new(
                        vec![4.0, 1.0, 1.0, 1.0, 2.0],
                        vec![0.2; 5],
                        vec![1.5; 5],
                        2.0,
                        1.0,
                    )
                    .expect("valid ring");
                    ServeRequest::Ring {
                        ring,
                        initial: vec![2.0, 0.0, 0.0, 0.0, 0.0],
                        alpha: 0.1,
                        cost_delta_tolerance: 1e-7,
                        max_iterations: 5_000,
                    }
                }
            }
        })
        .collect()
}

/// The graphs backing [`serve_workload`]'s requests, in request order
/// (ring requests carry no graph). Both graph kinds repeat, so a
/// [`CostMatrixCache`] sees one miss per kind and hits everywhere else.
pub fn workload_graphs(count: usize) -> Vec<Graph> {
    (0..count)
        .filter(|i| i % 3 != 2)
        .map(|i| {
            if i % 3 == 0 {
                topology::ring(8, 1.0).expect("valid ring")
            } else {
                topology::ring(6, 1.0).expect("valid ring")
            }
        })
        .collect()
}

/// The perturbed workload: `count` single-file requests over one topology
/// and solver configuration whose access patterns drift slightly request
/// to request — the stream warm-start chaining exists for.
///
/// # Panics
///
/// Panics only on programming errors (the generated parameters are valid).
pub fn perturbed_workload(count: usize) -> Vec<ServeRequest> {
    let graph = topology::ring(8, 1.0).expect("valid ring");
    (0..count)
        .map(|i| {
            let rates: Vec<f64> = (0..8)
                .map(|n| 0.1 + 0.04 * n as f64 + 0.0005 * i as f64 * (n + 1) as f64)
                .collect();
            let pattern = AccessPattern::new(rates).expect("valid pattern");
            let problem =
                SingleFileProblem::mm1(&graph, &pattern, 6.0, 1.0).expect("valid problem");
            ServeRequest::SingleFile {
                problem,
                initial: vec![0.125; 8],
                alpha: 0.05,
                epsilon: 1e-7,
                max_iterations: 100_000,
                topology: None,
            }
        })
        .collect()
}

/// Times resolving the workload's cost matrices with the cache off vs on
/// and asserts the cached bits match the fresh ones.
fn bench_cache(count: usize) -> CachePoint {
    let graphs = workload_graphs(count);
    let (build_cold_ms, cold) = time_ms(|| {
        graphs
            .iter()
            .map(|g| g.shortest_path_matrix().expect("valid graph"))
            .collect::<Vec<_>>()
    });
    let mut cache = CostMatrixCache::new();
    let (build_cached_ms, ()) = time_ms(|| {
        for (graph, fresh) in graphs.iter().zip(&cold) {
            let cached = cache
                .get_or_compute(graph, Parallelism::Sequential)
                .expect("valid graph");
            assert_eq!(
                cached.as_matrix(),
                fresh.as_matrix(),
                "a cached matrix must be bit-identical to a fresh computation"
            );
        }
    });
    CachePoint {
        requests: count,
        build_cold_ms,
        build_cached_ms,
        speedup: build_cold_ms / build_cached_ms,
        hits: cache.hits(),
        misses: cache.misses(),
    }
}

/// Solves the perturbed workload cold and warm and reports the virtual
/// iteration counts. Asserts the warm run actually saves work and that
/// warm sharding stays bit-identical to warm sequential.
fn bench_warm(count: usize, shard_counts: &[usize]) -> WarmPoint {
    let requests = perturbed_workload(count);
    let cold = BatchServer::new(Parallelism::Sequential).serve(&requests);
    assert_eq!(cold.err_count(), 0, "the perturbed workload must solve cleanly");
    let warm =
        BatchServer::new(Parallelism::Sequential).with_warm_start(true).serve(&requests);
    for &shards in shard_counts {
        let sharded = BatchServer::new(Parallelism::Fixed(shards))
            .with_warm_start(true)
            .serve(&requests);
        assert_eq!(
            warm.responses, sharded.responses,
            "warm sharded serving diverged at requests = {count}, shards = {shards}"
        );
    }
    let point = WarmPoint {
        requests: count,
        cold_iterations: cold.aggregate.counter("econ.iterations"),
        warm_iterations: warm.aggregate.counter("econ.iterations"),
        warm_starts: warm.aggregate.counter("serve.warm_starts"),
        iters_saved: warm.aggregate.counter("econ.warm_start_iters_saved"),
        checksum: checksum_output(&warm),
    };
    assert!(
        point.iters_saved > 0,
        "warm starts must save iterations on the perturbed workload"
    );
    assert!(point.warm_iterations < point.cold_iterations);
    point
}

fn checksum_output(output: &ServeOutput) -> f64 {
    output
        .responses
        .iter()
        .map(|r| match r {
            Ok(ServeResponse::SingleFile(s)) => {
                s.final_utility + s.allocation.iter().sum::<f64>() + s.iterations as f64
            }
            Ok(ServeResponse::MultiFile(s)) => {
                s.final_cost
                    + s.allocations.iter().flat_map(|row| row.iter()).sum::<f64>()
                    + s.iterations as f64
            }
            Ok(ServeResponse::Ring(s)) => {
                s.best_cost + s.final_allocation.iter().sum::<f64>() + s.iterations as f64
            }
            Err(_) => f64::NAN,
        })
        .sum()
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64() * 1e3, value)
}

/// Runs the sweep: for each batch size a sequential baseline, then one
/// sharded run per shard count.
///
/// # Panics
///
/// Panics if any sharded response vector differs bitwise from its
/// sequential counterpart, or if the merged aggregate counters depend on
/// the shard count — the serving determinism contract.
pub fn bench_serve(batch_sizes: &[usize], shard_counts: &[usize]) -> ServeReport {
    let mut points = Vec::new();
    for &count in batch_sizes {
        let requests = serve_workload(count);
        let (sequential_ms, sequential) =
            time_ms(|| BatchServer::new(Parallelism::Sequential).serve(&requests));
        assert_eq!(sequential.err_count(), 0, "the benchmark workload must solve cleanly");
        let checksum = checksum_output(&sequential);
        for &shards in shard_counts {
            let (sharded_ms, sharded) =
                time_ms(|| BatchServer::new(Parallelism::Fixed(shards)).serve(&requests));
            assert_eq!(
                sequential.responses, sharded.responses,
                "sharded serving diverged at requests = {count}, shards = {shards}"
            );
            assert_eq!(
                sequential.aggregate.counter("serve.requests"),
                sharded.aggregate.counter("serve.requests"),
                "aggregate fan-in diverged at requests = {count}, shards = {shards}"
            );
            points.push(ServePoint {
                requests: count,
                shards,
                sequential_ms,
                sharded_ms,
                speedup: sequential_ms / sharded_ms,
                checksum,
                steals: sharded.aggregate.counter("serve.steals"),
            });
        }
    }
    let cache_points = batch_sizes.iter().map(|&count| bench_cache(count)).collect();
    let warm_points =
        batch_sizes.iter().map(|&count| bench_warm(count, shard_counts)).collect();
    ServeReport {
        host_threads: crate::scale::host_threads(),
        threads: Parallelism::Auto.thread_count(),
        batch_sizes: batch_sizes.to_vec(),
        shard_counts: shard_counts.to_vec(),
        points,
        cache_points,
        warm_points,
    }
}

/// Compares a `fresh` run against the `committed` report
/// (`fap bench-serve --check`).
///
/// Grid shape, point identity and response checksums (bit-for-bit via
/// [`f64::to_bits`]) are hard gates. Thread count and wall-clock timings
/// only produce advisories, since the committed numbers came from a
/// different (possibly slower, possibly single-core) machine.
pub fn check_against(
    committed: &ServeReport,
    fresh: &ServeReport,
    timing_tolerance: f64,
) -> CheckOutcome {
    let mut outcome = CheckOutcome::default();
    if committed.batch_sizes != fresh.batch_sizes || committed.shard_counts != fresh.shard_counts
    {
        outcome.hard_failures.push(format!(
            "grid mismatch: committed {:?}×{:?}, fresh {:?}×{:?}",
            committed.batch_sizes, committed.shard_counts, fresh.batch_sizes, fresh.shard_counts
        ));
    }
    if committed.points.len() != fresh.points.len() {
        outcome.hard_failures.push(format!(
            "point count mismatch: committed {}, fresh {}",
            committed.points.len(),
            fresh.points.len()
        ));
        return outcome;
    }
    if committed.threads != fresh.threads {
        outcome.advisories.push(format!(
            "thread count differs: committed {}, fresh {} (machine-dependent)",
            committed.threads, fresh.threads
        ));
    }
    if committed.host_threads != fresh.host_threads {
        outcome.advisories.push(format!(
            "host CPU count differs: committed {}, fresh {} (machine-dependent)",
            committed.host_threads, fresh.host_threads
        ));
    }
    for (old, new) in committed.points.iter().zip(&fresh.points) {
        let label = format!("requests={} shards={}", old.requests, old.shards);
        if old.requests != new.requests || old.shards != new.shards {
            outcome.hard_failures.push(format!(
                "point identity mismatch: committed {label}, fresh requests={} shards={}",
                new.requests, new.shards
            ));
            continue;
        }
        if old.checksum.to_bits() != new.checksum.to_bits() {
            outcome.hard_failures.push(format!(
                "checksum diverged at {label}: committed {:?} ({:#018x}), fresh {:?} ({:#018x})",
                old.checksum,
                old.checksum.to_bits(),
                new.checksum,
                new.checksum.to_bits()
            ));
        }
        for (stage, was, now) in [
            ("sequential", old.sequential_ms, new.sequential_ms),
            ("sharded", old.sharded_ms, new.sharded_ms),
        ] {
            if now > was * timing_tolerance {
                outcome.advisories.push(format!(
                    "{label}: {stage} timing {now:.2} ms exceeds {timing_tolerance}× committed {was:.2} ms"
                ));
            }
        }
        if old.steals != new.steals {
            outcome.advisories.push(format!(
                "{label}: steals differ: committed {}, fresh {} (scheduling-dependent)",
                old.steals, new.steals
            ));
        }
    }
    // Cache section: hit/miss counts are deterministic, timings advisory.
    if committed.cache_points.len() != fresh.cache_points.len() {
        outcome.hard_failures.push(format!(
            "cache point count mismatch: committed {}, fresh {}",
            committed.cache_points.len(),
            fresh.cache_points.len()
        ));
    }
    for (old, new) in committed.cache_points.iter().zip(&fresh.cache_points) {
        let label = format!("cache requests={}", old.requests);
        if old.requests != new.requests || old.hits != new.hits || old.misses != new.misses {
            outcome.hard_failures.push(format!(
                "{label}: hit/miss diverged: committed {}/{} over {} requests, fresh {}/{} over {}",
                old.hits, old.misses, old.requests, new.hits, new.misses, new.requests
            ));
        }
        if new.build_cached_ms > old.build_cached_ms * timing_tolerance {
            outcome.advisories.push(format!(
                "{label}: cached build {:.3} ms exceeds {timing_tolerance}× committed {:.3} ms",
                new.build_cached_ms, old.build_cached_ms
            ));
        }
    }
    // Warm section: everything is a virtual count or checksum — all hard.
    if committed.warm_points.len() != fresh.warm_points.len() {
        outcome.hard_failures.push(format!(
            "warm point count mismatch: committed {}, fresh {}",
            committed.warm_points.len(),
            fresh.warm_points.len()
        ));
    }
    for (old, new) in committed.warm_points.iter().zip(&fresh.warm_points) {
        let label = format!("warm requests={}", old.requests);
        if old.requests != new.requests
            || old.cold_iterations != new.cold_iterations
            || old.warm_iterations != new.warm_iterations
            || old.warm_starts != new.warm_starts
            || old.iters_saved != new.iters_saved
        {
            outcome.hard_failures.push(format!(
                "{label}: iteration counts diverged: committed cold {} warm {} starts {} saved {}, \
                 fresh cold {} warm {} starts {} saved {}",
                old.cold_iterations,
                old.warm_iterations,
                old.warm_starts,
                old.iters_saved,
                new.cold_iterations,
                new.warm_iterations,
                new.warm_starts,
                new.iters_saved
            ));
        }
        if old.checksum.to_bits() != new.checksum.to_bits() {
            outcome.hard_failures.push(format!(
                "{label}: warm checksum diverged: committed {:?} ({:#018x}), fresh {:?} ({:#018x})",
                old.checksum,
                old.checksum.to_bits(),
                new.checksum,
                new.checksum.to_bits()
            ));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_workload_cycles_through_all_three_kinds() {
        let requests = serve_workload(6);
        assert_eq!(requests.len(), 6);
        assert!(matches!(requests[0], ServeRequest::SingleFile { .. }));
        assert!(matches!(requests[1], ServeRequest::MultiFile { .. }));
        assert!(matches!(requests[2], ServeRequest::Ring { .. }));
        assert!(matches!(requests[3], ServeRequest::SingleFile { .. }));
    }

    #[test]
    fn bench_serve_produces_consistent_points() {
        let report = bench_serve(&[6], &[2, 3]);
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!(p.sequential_ms >= 0.0 && p.sharded_ms >= 0.0);
            assert!(p.checksum.is_finite());
        }
        // Same batch, same workload: every shard count sees one checksum.
        assert_eq!(
            report.points[0].checksum.to_bits(),
            report.points[1].checksum.to_bits()
        );
        // And the warm-path sections cover the batch-size grid.
        assert_eq!(report.cache_points.len(), 1);
        assert_eq!(report.warm_points.len(), 1);
    }

    #[test]
    fn the_cache_section_counts_one_miss_per_distinct_topology() {
        let point = bench_cache(9);
        // 9 requests → 6 graph-backed (3 ring-8, 3 ring-6): 2 misses.
        assert_eq!(point.misses, 2);
        assert_eq!(point.hits, 4);
        assert!(point.build_cold_ms >= 0.0 && point.build_cached_ms >= 0.0);
    }

    #[test]
    fn the_warm_section_is_deterministic_and_saves_work() {
        let a = bench_warm(8, &[2, 4]);
        let b = bench_warm(8, &[2, 4]);
        assert_eq!(a, b, "warm-point counts are virtual and must reproduce exactly");
        assert!(a.iters_saved > 0);
        assert!(a.warm_iterations < a.cold_iterations);
        assert_eq!(a.warm_starts, 7, "all but the chain head run seeded");
    }

    #[test]
    fn check_hard_gates_the_warm_and_cache_sections() {
        let committed = bench_serve(&[6], &[2]);
        let mut fresh = committed.clone();
        fresh.warm_points[0].iters_saved += 1;
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(!outcome.is_pass());
        assert!(outcome.hard_failures.iter().any(|f| f.contains("iteration counts diverged")));

        let mut fresh = committed.clone();
        fresh.cache_points[0].hits += 1;
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(!outcome.is_pass());
        assert!(outcome.hard_failures.iter().any(|f| f.contains("hit/miss diverged")));

        // Steals are scheduling-dependent: only ever advisory.
        let mut fresh = committed.clone();
        fresh.points[0].steals += 3;
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(outcome.is_pass(), "steals must not hard-fail: {:?}", outcome.hard_failures);
        assert!(outcome.advisories.iter().any(|a| a.contains("steals differ")));
    }

    #[test]
    fn check_passes_on_a_rerun_of_the_same_grid() {
        let committed = bench_serve(&[5], &[2]);
        let fresh = bench_serve(&[5], &[2]);
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(outcome.is_pass(), "failures: {:?}", outcome.hard_failures);
    }

    #[test]
    fn check_flags_checksum_and_grid_divergence_as_hard() {
        let committed = bench_serve(&[5], &[2]);
        let mut fresh = committed.clone();
        fresh.points[0].checksum += 1.0;
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(!outcome.is_pass());
        assert!(outcome.hard_failures[0].contains("checksum diverged"));

        let mut regridded = committed.clone();
        regridded.shard_counts = vec![7];
        let outcome = check_against(&committed, &regridded, f64::INFINITY);
        assert!(outcome.hard_failures.iter().any(|f| f.contains("grid mismatch")));
    }

    #[test]
    fn check_reports_slow_timings_as_advisory() {
        let committed = bench_serve(&[5], &[2]);
        let mut fresh = committed.clone();
        fresh.points[0].sharded_ms = committed.points[0].sharded_ms * 100.0 + 1.0;
        let outcome = check_against(&committed, &fresh, 1.5);
        assert!(outcome.is_pass(), "slow timing must not fail the check");
        assert!(outcome.advisories.iter().any(|a| a.contains("sharded timing")));
    }
}
