//! The `serve` benchmark: sequential-vs-sharded wall clock for the
//! `fap-serve` batcher over a grid of batch sizes and shard counts.
//!
//! The sharded path is bit-identical to the sequential one by construction
//! (contiguous chunks, one deterministic kernel per request), and
//! [`bench_serve`] asserts that on every point before reporting a timing.
//! Results serialize to the `BENCH_serve.json` schema committed at the repo
//! root; regenerate with `fap bench-serve` (prefer `--release`).

use std::time::Instant;

use fap_batch::Parallelism;
use fap_core::{MultiFileProblem, SingleFileProblem};
use fap_net::{topology, AccessPattern};
use fap_ring::VirtualRing;
use fap_serve::{BatchServer, ServeOutput, ServeRequest, ServeResponse};
use serde::{Deserialize, Serialize};

pub use crate::scale::CheckOutcome;

/// One measured grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServePoint {
    /// Batch size (number of requests).
    pub requests: usize,
    /// Shard count of the sharded run.
    pub shards: usize,
    /// Sequential (one-shard) wall clock, milliseconds.
    pub sequential_ms: f64,
    /// Sharded wall clock, milliseconds.
    pub sharded_ms: f64,
    /// `sequential_ms / sharded_ms`.
    pub speedup: f64,
    /// A content checksum over the responses, equal for both paths.
    pub checksum: f64,
}

/// The full benchmark report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Worker threads `Parallelism::Auto` would use on the machine that
    /// produced the report (informational; the grid pins explicit counts).
    pub threads: usize,
    /// The batch-size grid.
    pub batch_sizes: Vec<usize>,
    /// The shard-count grid.
    pub shard_counts: Vec<usize>,
    /// All measured points.
    pub points: Vec<ServePoint>,
}

/// The benchmark workload: a deterministic mixed batch of `count` requests
/// cycling through the three request kinds (§4 single-file, §5.2
/// multi-file, §7 ring), each with an index-seeded random access pattern.
///
/// # Panics
///
/// Panics only on programming errors (the generated parameters are valid).
pub fn serve_workload(count: usize) -> Vec<ServeRequest> {
    (0..count)
        .map(|i| {
            let seed = 7_000 + i as u64;
            match i % 3 {
                0 => {
                    let graph = topology::ring(8, 1.0).expect("valid ring");
                    let pattern =
                        AccessPattern::random(8, 0.1..0.4, seed).expect("valid pattern");
                    let problem = SingleFileProblem::mm1(&graph, &pattern, 6.0, 1.0)
                        .expect("valid problem");
                    ServeRequest::SingleFile {
                        problem,
                        initial: vec![0.125; 8],
                        alpha: 0.05,
                        epsilon: 1e-7,
                        max_iterations: 100_000,
                    }
                }
                1 => {
                    let graph = topology::ring(6, 1.0).expect("valid ring");
                    let patterns: Vec<AccessPattern> = (0..4)
                        .map(|j| {
                            AccessPattern::random(6, 0.05..0.3, seed + 31 * j)
                                .expect("valid pattern")
                        })
                        .collect();
                    let problem = MultiFileProblem::mm1(&graph, &patterns, 8.0, 1.0)
                        .expect("valid problem");
                    ServeRequest::MultiFile {
                        problem,
                        initial: vec![vec![1.0 / 6.0; 6]; 4],
                        alpha: 0.05,
                        epsilon: 1e-7,
                        max_iterations: 50_000,
                    }
                }
                _ => {
                    let ring = VirtualRing::new(
                        vec![4.0, 1.0, 1.0, 1.0, 2.0],
                        vec![0.2; 5],
                        vec![1.5; 5],
                        2.0,
                        1.0,
                    )
                    .expect("valid ring");
                    ServeRequest::Ring {
                        ring,
                        initial: vec![2.0, 0.0, 0.0, 0.0, 0.0],
                        alpha: 0.1,
                        cost_delta_tolerance: 1e-7,
                        max_iterations: 5_000,
                    }
                }
            }
        })
        .collect()
}

fn checksum_output(output: &ServeOutput) -> f64 {
    output
        .responses
        .iter()
        .map(|r| match r {
            Ok(ServeResponse::SingleFile(s)) => {
                s.final_utility + s.allocation.iter().sum::<f64>() + s.iterations as f64
            }
            Ok(ServeResponse::MultiFile(s)) => {
                s.final_cost
                    + s.allocations.iter().flat_map(|row| row.iter()).sum::<f64>()
                    + s.iterations as f64
            }
            Ok(ServeResponse::Ring(s)) => {
                s.best_cost + s.final_allocation.iter().sum::<f64>() + s.iterations as f64
            }
            Err(_) => f64::NAN,
        })
        .sum()
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64() * 1e3, value)
}

/// Runs the sweep: for each batch size a sequential baseline, then one
/// sharded run per shard count.
///
/// # Panics
///
/// Panics if any sharded response vector differs bitwise from its
/// sequential counterpart, or if the merged aggregate counters depend on
/// the shard count — the serving determinism contract.
pub fn bench_serve(batch_sizes: &[usize], shard_counts: &[usize]) -> ServeReport {
    let mut points = Vec::new();
    for &count in batch_sizes {
        let requests = serve_workload(count);
        let (sequential_ms, sequential) =
            time_ms(|| BatchServer::new(Parallelism::Sequential).serve(&requests));
        assert_eq!(sequential.err_count(), 0, "the benchmark workload must solve cleanly");
        let checksum = checksum_output(&sequential);
        for &shards in shard_counts {
            let (sharded_ms, sharded) =
                time_ms(|| BatchServer::new(Parallelism::Fixed(shards)).serve(&requests));
            assert_eq!(
                sequential.responses, sharded.responses,
                "sharded serving diverged at requests = {count}, shards = {shards}"
            );
            assert_eq!(
                sequential.aggregate.counter("serve.requests"),
                sharded.aggregate.counter("serve.requests"),
                "aggregate fan-in diverged at requests = {count}, shards = {shards}"
            );
            points.push(ServePoint {
                requests: count,
                shards,
                sequential_ms,
                sharded_ms,
                speedup: sequential_ms / sharded_ms,
                checksum,
            });
        }
    }
    ServeReport {
        threads: Parallelism::Auto.thread_count(),
        batch_sizes: batch_sizes.to_vec(),
        shard_counts: shard_counts.to_vec(),
        points,
    }
}

/// Compares a `fresh` run against the `committed` report
/// (`fap bench-serve --check`).
///
/// Grid shape, point identity and response checksums (bit-for-bit via
/// [`f64::to_bits`]) are hard gates. Thread count and wall-clock timings
/// only produce advisories, since the committed numbers came from a
/// different (possibly slower, possibly single-core) machine.
pub fn check_against(
    committed: &ServeReport,
    fresh: &ServeReport,
    timing_tolerance: f64,
) -> CheckOutcome {
    let mut outcome = CheckOutcome::default();
    if committed.batch_sizes != fresh.batch_sizes || committed.shard_counts != fresh.shard_counts
    {
        outcome.hard_failures.push(format!(
            "grid mismatch: committed {:?}×{:?}, fresh {:?}×{:?}",
            committed.batch_sizes, committed.shard_counts, fresh.batch_sizes, fresh.shard_counts
        ));
    }
    if committed.points.len() != fresh.points.len() {
        outcome.hard_failures.push(format!(
            "point count mismatch: committed {}, fresh {}",
            committed.points.len(),
            fresh.points.len()
        ));
        return outcome;
    }
    if committed.threads != fresh.threads {
        outcome.advisories.push(format!(
            "thread count differs: committed {}, fresh {} (machine-dependent)",
            committed.threads, fresh.threads
        ));
    }
    for (old, new) in committed.points.iter().zip(&fresh.points) {
        let label = format!("requests={} shards={}", old.requests, old.shards);
        if old.requests != new.requests || old.shards != new.shards {
            outcome.hard_failures.push(format!(
                "point identity mismatch: committed {label}, fresh requests={} shards={}",
                new.requests, new.shards
            ));
            continue;
        }
        if old.checksum.to_bits() != new.checksum.to_bits() {
            outcome.hard_failures.push(format!(
                "checksum diverged at {label}: committed {:?} ({:#018x}), fresh {:?} ({:#018x})",
                old.checksum,
                old.checksum.to_bits(),
                new.checksum,
                new.checksum.to_bits()
            ));
        }
        for (stage, was, now) in [
            ("sequential", old.sequential_ms, new.sequential_ms),
            ("sharded", old.sharded_ms, new.sharded_ms),
        ] {
            if now > was * timing_tolerance {
                outcome.advisories.push(format!(
                    "{label}: {stage} timing {now:.2} ms exceeds {timing_tolerance}× committed {was:.2} ms"
                ));
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_workload_cycles_through_all_three_kinds() {
        let requests = serve_workload(6);
        assert_eq!(requests.len(), 6);
        assert!(matches!(requests[0], ServeRequest::SingleFile { .. }));
        assert!(matches!(requests[1], ServeRequest::MultiFile { .. }));
        assert!(matches!(requests[2], ServeRequest::Ring { .. }));
        assert!(matches!(requests[3], ServeRequest::SingleFile { .. }));
    }

    #[test]
    fn bench_serve_produces_consistent_points() {
        let report = bench_serve(&[6], &[2, 3]);
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!(p.sequential_ms >= 0.0 && p.sharded_ms >= 0.0);
            assert!(p.checksum.is_finite());
        }
        // Same batch, same workload: every shard count sees one checksum.
        assert_eq!(
            report.points[0].checksum.to_bits(),
            report.points[1].checksum.to_bits()
        );
    }

    #[test]
    fn check_passes_on_a_rerun_of_the_same_grid() {
        let committed = bench_serve(&[5], &[2]);
        let fresh = bench_serve(&[5], &[2]);
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(outcome.is_pass(), "failures: {:?}", outcome.hard_failures);
    }

    #[test]
    fn check_flags_checksum_and_grid_divergence_as_hard() {
        let committed = bench_serve(&[5], &[2]);
        let mut fresh = committed.clone();
        fresh.points[0].checksum += 1.0;
        let outcome = check_against(&committed, &fresh, f64::INFINITY);
        assert!(!outcome.is_pass());
        assert!(outcome.hard_failures[0].contains("checksum diverged"));

        let mut regridded = committed.clone();
        regridded.shard_counts = vec![7];
        let outcome = check_against(&committed, &regridded, f64::INFINITY);
        assert!(outcome.hard_failures.iter().any(|f| f.contains("grid mismatch")));
    }

    #[test]
    fn check_reports_slow_timings_as_advisory() {
        let committed = bench_serve(&[5], &[2]);
        let mut fresh = committed.clone();
        fresh.points[0].sharded_ms = committed.points[0].sharded_ms * 100.0 + 1.0;
        let outcome = check_against(&committed, &fresh, 1.5);
        assert!(outcome.is_pass(), "slow timing must not fail the check");
        assert!(outcome.advisories.iter().any(|a| a.contains("sharded timing")));
    }
}
