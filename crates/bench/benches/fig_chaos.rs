//! Chaos overhead: the §6 ring solved by the simulated protocol under
//! increasingly hostile fault plans, against the fault-free baseline.
//! Measures what the fault machinery itself costs and what drops, delays
//! and a mid-run crash do to time-to-convergence.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fap_bench::paper;
use fap_runtime::{ChaosPlan, ExchangeScheme, SimRun};

const ALPHA: f64 = 0.19;

fn plans() -> Vec<(&'static str, ChaosPlan)> {
    vec![
        ("zero_fault", ChaosPlan::new(42)),
        (
            "lossy_10pct",
            ChaosPlan::new(42).with_drop(0.1).with_staleness_bound(2).with_retries(1),
        ),
        (
            "hostile",
            ChaosPlan::new(42)
                .with_drop(0.25)
                .with_duplication(0.1)
                .with_delay(0.3, 2)
                .with_staleness_bound(2)
                .with_retries(2),
        ),
        (
            "crash_rejoin",
            ChaosPlan::new(42)
                .with_drop(0.1)
                .with_staleness_bound(2)
                .with_retries(1)
                .crash(5, 2)
                .rejoin(15, 2),
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_chaos");
    let problem = paper::ring_problem();

    // The fault-free reference point: the plain round executor.
    group.bench_function("round_executor_baseline", |b| {
        b.iter(|| {
            let r = fap_runtime::DistributedRun::new(&problem, ExchangeScheme::Broadcast, ALPHA)
                .with_epsilon(paper::EPSILON)
                .with_max_rounds(100_000)
                .run(black_box(&paper::START))
                .expect("run succeeds");
            assert!(r.converged);
            r.rounds
        });
    });

    for (label, plan) in plans() {
        group.bench_function(label, |b| {
            b.iter(|| {
                let r = SimRun::new(&problem, ExchangeScheme::Broadcast, ALPHA)
                    .with_epsilon(paper::EPSILON)
                    .with_max_rounds(100_000)
                    .with_chaos(black_box(plan.clone()))
                    .run(black_box(&paper::START))
                    .expect("run succeeds");
                assert!(r.converged);
                (r.rounds, r.faults.dropped)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
