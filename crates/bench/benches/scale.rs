//! Scale sweep: sequential vs parallel batch kernels (all-pairs shortest
//! paths, multi-file solve) over N × M grids. The JSON artifact committed at
//! the repo root (`BENCH_scale.json`) is produced by `fap bench-scale`; this
//! criterion harness measures the same kernels statistically.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fap_batch::Parallelism;
use fap_bench::scale::{scale_graph, scale_problem};
use fap_core::MultiFileScratch;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    for n in [64usize, 256] {
        let graph = scale_graph(n);
        group.bench_function(format!("all_pairs_seq_n{n}"), |b| {
            b.iter(|| black_box(&graph).shortest_path_matrix().expect("connected"));
        });
        group.bench_function(format!("all_pairs_par_n{n}"), |b| {
            b.iter(|| {
                black_box(&graph)
                    .shortest_path_matrix_parallel(Parallelism::Auto)
                    .expect("connected")
            });
        });

        for m in [1usize, 16] {
            let problem = scale_problem(&graph, m);
            let initial = vec![vec![1.0 / n as f64; n]; m];
            let mut seq_scratch = MultiFileScratch::new();
            let mut par_scratch = MultiFileScratch::new();
            group.bench_function(format!("multi_file_seq_n{n}_m{m}"), |b| {
                b.iter(|| {
                    black_box(&problem)
                        .solve_with_scratch(
                            &initial,
                            0.002,
                            1e-300,
                            10,
                            Parallelism::Sequential,
                            &mut seq_scratch,
                        )
                        .expect("stable solve")
                });
            });
            group.bench_function(format!("multi_file_par_n{n}_m{m}"), |b| {
                b.iter(|| {
                    black_box(&problem)
                        .solve_with_scratch(
                            &initial,
                            0.002,
                            1e-300,
                            10,
                            Parallelism::Auto,
                            &mut par_scratch,
                        )
                        .expect("stable solve")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
