//! Figure 5: the α sweep — how long the solver takes across the step-size
//! range, including the slow-convergence regime at tiny α.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fap_bench::experiments;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_stepsize");
    group.sample_size(20);
    for alpha in [0.05, 0.2, 0.5] {
        group.bench_function(format!("single_alpha_{alpha}"), |b| {
            b.iter(|| experiments::fig5(black_box(&[alpha]), 100_000));
        });
    }
    group.bench_function("sweep_coarse_grid", |b| {
        let grid: Vec<f64> = (1..=9).map(|i| i as f64 * 0.1).collect();
        b.iter(|| experiments::fig5(black_box(&grid), 20_000));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
