//! Figure 9: oscillation versus step size on the communication-dominated
//! ring — α = 0.1 against α = 0.05, plus the adaptive-decay solver the
//! paper proposes as the remedy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fap_bench::experiments::fig8_ring;
use fap_ring::RingSolver;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_oscillation");
    group.sample_size(20);
    let ring = fig8_ring(vec![4.0, 1.0, 1.0, 1.0]);
    for alpha in [0.1, 0.05] {
        group.bench_function(format!("fixed_alpha_{alpha}"), |b| {
            b.iter(|| {
                RingSolver::new(alpha)
                    .without_adaptation()
                    .with_max_iterations(160)
                    .solve(black_box(&ring), black_box(&[2.0, 0.0, 0.0, 0.0]))
                    .expect("solve runs")
                    .oscillation_amplitude()
            });
        });
    }
    group.bench_function("adaptive_decay", |b| {
        b.iter(|| {
            RingSolver::new(0.1)
                .with_max_iterations(3_000)
                .solve(black_box(&ring), black_box(&[2.0, 0.0, 0.0, 0.0]))
                .expect("solve runs")
                .converged
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
