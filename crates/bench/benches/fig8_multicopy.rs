//! Figure 8: multi-copy virtual-ring solves — the communication-dominated
//! ring (link costs 4,1,1,1) versus the delay-dominated unit ring, m = 2.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fap_bench::experiments::fig8_ring;
use fap_ring::RingSolver;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_multicopy");
    group.sample_size(20);
    for (label, costs) in [
        ("comm_dominated", vec![4.0, 1.0, 1.0, 1.0]),
        ("delay_dominated", vec![1.0, 1.0, 1.0, 1.0]),
    ] {
        let ring = fig8_ring(costs);
        group.bench_function(label, |b| {
            b.iter(|| {
                RingSolver::new(0.1)
                    .without_adaptation()
                    .with_max_iterations(120)
                    .solve(black_box(&ring), black_box(&[2.0, 0.0, 0.0, 0.0]))
                    .expect("solve runs")
                    .best_cost
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
