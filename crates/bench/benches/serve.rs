//! Serving sweep: sequential vs sharded batch serving over a mixed
//! workload. The JSON artifact committed at the repo root
//! (`BENCH_serve.json`) is produced by `fap bench-serve`; this criterion
//! harness measures the same batcher statistically.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fap_batch::Parallelism;
use fap_bench::serve::serve_workload;
use fap_serve::BatchServer;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    for count in [12usize, 48] {
        let requests = serve_workload(count);
        group.bench_function(format!("sequential_r{count}"), |b| {
            b.iter(|| BatchServer::new(Parallelism::Sequential).serve(black_box(&requests)));
        });
        for shards in [2usize, 4] {
            group.bench_function(format!("sharded_r{count}_s{shards}"), |b| {
                b.iter(|| {
                    BatchServer::new(Parallelism::Fixed(shards)).serve(black_box(&requests))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
