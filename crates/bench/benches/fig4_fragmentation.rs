//! Figure 4: the fragmentation experiment — decentralized solve from the
//! integral placement `(0, 0, 0, 1)`, versus the integral baseline and the
//! closed-form reference solver.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fap_bench::paper;
use fap_core::{baseline, reference};
use fap_econ::{BoundaryRule, ResourceDirectedOptimizer, StepSize};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_fragmentation");
    let problem = paper::ring_problem();

    group.bench_function("decentralized_from_integral", |b| {
        b.iter(|| {
            ResourceDirectedOptimizer::new(StepSize::Fixed(0.3))
                .with_boundary(BoundaryRule::Unconstrained)
                .with_epsilon(paper::EPSILON)
                .run(black_box(&problem), black_box(&[0.0, 0.0, 0.0, 1.0]))
                .expect("run succeeds")
                .final_cost()
        });
    });
    group.bench_function("integral_baseline", |b| {
        b.iter(|| baseline::best_single_node(black_box(&problem)).expect("placement").cost);
    });
    group.bench_function("waterfilling_reference", |b| {
        b.iter(|| reference::solve(black_box(&problem)).expect("solves").cost);
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
