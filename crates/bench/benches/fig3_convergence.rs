//! Figure 3: time to solve the §6 four-node ring at each of the paper's
//! step sizes (α = 0.67, 0.3, 0.19, 0.08), start `(0.8, 0.1, 0.1, 0.0)`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fap_bench::paper;
use fap_econ::{BoundaryRule, ResourceDirectedOptimizer, StepSize};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_convergence");
    for (alpha, _) in paper::FIG3_ALPHAS {
        let problem = paper::ring_problem();
        group.bench_function(format!("alpha_{alpha}"), |b| {
            b.iter(|| {
                let s = ResourceDirectedOptimizer::new(StepSize::Fixed(alpha))
                    .with_boundary(BoundaryRule::Unconstrained)
                    .with_epsilon(paper::EPSILON)
                    .run(black_box(&problem), black_box(&paper::START))
                    .expect("run succeeds");
                assert!(s.converged);
                s.iterations
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
