//! Figure 6: problem-size scaling — solve time on fully connected networks
//! of growing size at a good fixed α (the figure's claim is that iteration
//! counts barely grow with N).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fap_bench::paper;
use fap_econ::{BoundaryRule, ResourceDirectedOptimizer, StepSize};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_scaling");
    for n in [4usize, 8, 12, 16, 20] {
        let problem = paper::full_mesh_problem(n);
        let start = paper::spread_start(n);
        group.bench_function(format!("n_{n}"), |b| {
            b.iter(|| {
                let s = ResourceDirectedOptimizer::new(StepSize::Fixed(0.4))
                    .with_boundary(BoundaryRule::Unconstrained)
                    .with_epsilon(paper::EPSILON)
                    .run(black_box(&problem), black_box(&start))
                    .expect("run succeeds");
                assert!(s.converged);
                s.iterations
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
