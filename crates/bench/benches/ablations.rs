//! Ablation benches A1–A5 (see `DESIGN.md` for the experiment index).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fap_bench::experiments;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("a1_alpha_bound", |b| {
        b.iter(|| experiments::a1_alpha_bound().empirical_max_alpha);
    });
    group.bench_function("a2_second_derivative_x10", |b| {
        b.iter(|| experiments::a2_second_derivative(black_box(10.0)));
    });
    group.bench_function("a3_price_vs_resource", |b| {
        b.iter(|| experiments::a3_price_vs_resource().optimum_gap);
    });
    group.bench_function("a4_messages_ring8", |b| {
        b.iter(|| experiments::a4_messages(black_box(8)));
    });
    group.bench_function("a5_des_validation_short", |b| {
        b.iter(|| experiments::a5_des_validation(black_box(5_000.0), 42));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
