//! Substrate micro-benchmarks: the building blocks whose speed bounds how
//! large a system the reproduction can handle — all-pairs routing, one
//! reallocation step, one gradient evaluation, and discrete-event
//! simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fap_core::SingleFileProblem;
use fap_econ::projection::{compute_step, BoundaryRule};
use fap_econ::AllocationProblem;
use fap_net::{topology, AccessPattern};
use fap_queue::{NetworkSimulation, ServiceDistribution};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");

    for n in [16usize, 64, 256] {
        let graph = topology::random_connected(n, 0.1, 1.0..4.0, 7).expect("valid graph");
        group.bench_function(format!("all_pairs_dijkstra_n{n}"), |b| {
            b.iter(|| black_box(&graph).shortest_path_matrix().expect("connected"));
        });
    }

    for n in [16usize, 256] {
        let graph = topology::random_connected(n, 0.1, 1.0..4.0, 7).expect("valid graph");
        let pattern = AccessPattern::uniform(n, 1.0).expect("valid pattern");
        let problem =
            SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0).expect("valid problem");
        let x = vec![1.0 / n as f64; n];
        let mut g = vec![0.0; n];
        let w = vec![1.0; n];
        group.bench_function(format!("gradient_evaluation_n{n}"), |b| {
            b.iter(|| problem.marginal_utilities(black_box(&x), &mut g));
        });
        problem.marginal_utilities(&x, &mut g).expect("stable point");
        group.bench_function(format!("reallocation_step_n{n}"), |b| {
            b.iter(|| {
                compute_step(black_box(&x), black_box(&g), &w, 0.1, BoundaryRule::ClampToZero)
            });
        });
    }

    {
        let graph = topology::ring(8, 1.0).expect("valid ring");
        let costs = graph.shortest_path_matrix().expect("connected");
        let pattern = AccessPattern::uniform(8, 1.0).expect("valid pattern");
        let service = ServiceDistribution::exponential(1.5).expect("valid service");
        let sim = NetworkSimulation::new(vec![0.125; 8], pattern, costs, service)
            .expect("valid simulation")
            .with_duration(10_000.0);
        group.bench_function("des_10k_time_units_8_nodes", |b| {
            b.iter(|| black_box(&sim).run().expect("simulation runs").accesses_measured);
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
