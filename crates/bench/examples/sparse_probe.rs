//! Per-point probe for the sparse sweep: runs [`fap_bench::scale::bench_sparse`]
//! — the exact gated bench path, including the ≤5% utility-gap and 1 GiB
//! substrate assertions — one `N` at a time, so a slow or failing point can
//! be attributed without waiting for the full `fap bench-scale` grid.
//!
//! ```text
//! cargo run --release -p fap-bench --example sparse_probe -- 16384 65536
//! ```

use fap_bench::scale::bench_sparse;

fn main() {
    let ns: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("usage: sparse_probe <N>..."))
        .collect();
    for &n in if ns.is_empty() { &[4096usize][..] } else { &ns } {
        let p = &bench_sparse(&[n])[0];
        let gap = p.gap.map_or("n/a".into(), |g| format!("{:.4}%", g * 100.0));
        println!(
            "N={:<7} K={:<3} build {:>9.1} ms  solve {:>9.1} ms  refine {}  gap {gap}  {:.1} MiB",
            p.n,
            p.landmarks,
            p.build_ms,
            p.solve_ms,
            p.refine_rounds,
            p.provider_bytes as f64 / (1 << 20) as f64,
        );
    }
}
