//! `fap served`: the persistent serving daemon speaking the CLI's spec
//! format.
//!
//! This module binds the wire-format-agnostic [`Daemon`] from `fap-served`
//! to the same scenario-list syntax `fap serve` reads: each input
//! envelope's `batch` field is a JSON array of [`ServeSpec`]s. The daemon
//! keeps its cost-matrix cache, warm-start seeds and worker pool alive
//! across batches, so a long session amortizes work a one-shot `fap serve`
//! pays per invocation.
//!
//! Two transports are offered: stdin/stdout (the default, scriptable), and
//! on Unix a socket (`--socket <path>`), where sequential client
//! connections share one daemon — state persists across connects until a
//! `shutdown` command arrives.
//!
//! One command is handled at this layer rather than inside the wire
//! daemon: `{"cmd":"drift", ...}` runs the online-reallocation tracking
//! loop (see [`crate::track`]) and answers with a one-line regret
//! summary. Keeping it here preserves `fap-served`'s independence from
//! the runtime crate, the same layering that makes its batch syntax
//! pluggable.

use std::io::{BufRead, Write};

use serde::{Deserialize, Value};

use fap_cache::SubstrateCache;
use fap_obs::Recorder;
use fap_serve::ServeRequest;
use fap_served::{BatchParser, Daemon, DaemonConfig, DaemonStatus};

use crate::serve::ServeSpec;
use crate::track::drift_command_line;

/// The CLI's batch parser: an envelope's `batch` field is a JSON array of
/// [`ServeSpec`]s, resolved through the daemon's persistent substrate
/// cache (hits and misses land in the session's `cache.*` metrics).
pub fn spec_parser() -> impl BatchParser {
    spec_parser_with(false)
}

/// [`spec_parser`] with the incremental oracle path switchable
/// (`--oracle-update`): when on, landmark substrates resolve through
/// [`SubstrateCache::get_or_update_observed`], so a cached oracle
/// survives a small topology edit between batches as a dirty-frontier
/// repair instead of a cold rebuild.
pub fn spec_parser_with(oracle_update: bool) -> impl BatchParser {
    move |batch: &Value, cache: &mut SubstrateCache, recorder: &mut dyn Recorder| {
        let specs = Vec::<ServeSpec>::deserialize_value(batch)
            .map_err(|e| format!("bad batch: {e}"))?;
        if specs.is_empty() {
            return Err("batch is empty".into());
        }
        specs
            .iter()
            .enumerate()
            .map(|(index, spec)| {
                spec.to_request_cached_with(cache, oracle_update, recorder)
                    .map_err(|e| format!("request {index}: {e}"))
            })
            .collect::<Result<Vec<ServeRequest>, String>>()
    }
}

/// Builds a daemon over the CLI spec format.
///
/// # Errors
///
/// Returns a message for an invalid configuration (zero servers).
pub fn spec_daemon(config: &DaemonConfig) -> Result<Daemon<impl BatchParser>, String> {
    Daemon::new(spec_parser_with(config.oracle_update), config).map_err(|e| e.to_string())
}

/// Runs a whole daemon session over any line source and sink (`fap served`
/// with no `--socket`: stdin to stdout). Returns at EOF or after a
/// `shutdown` command, both of which drain in-flight work first.
///
/// # Errors
///
/// Returns a message for configuration or I/O failures.
pub fn run_daemon<R: BufRead>(
    input: R,
    out: &mut dyn Write,
    config: &DaemonConfig,
    recorder: &mut dyn Recorder,
) -> Result<(), String> {
    let mut daemon = spec_daemon(config)?;
    for line in input.lines() {
        let line = line.map_err(|e| e.to_string())?;
        if let Some(response) = drift_command_line(&line, recorder) {
            writeln!(out, "{response}").map_err(|e| e.to_string())?;
            continue;
        }
        match daemon.handle_line(&line, out, recorder) {
            Ok(DaemonStatus::Shutdown) => return Ok(()),
            Ok(DaemonStatus::Continue) => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    daemon.finish(out, recorder).map_err(|e| e.to_string())
}

/// Serves sequential connections on a Unix socket with ONE persistent
/// daemon: a client can connect, submit batches, disconnect, and a later
/// client sees the warmed cache and seeds. A `shutdown` command (or an
/// unusable listener) ends the process; a dropped connection just ends
/// that client's session.
///
/// # Errors
///
/// Returns a message when the socket cannot be bound or the configuration
/// is invalid.
#[cfg(unix)]
pub fn run_socket(
    path: &std::path::Path,
    config: &DaemonConfig,
    recorder: &mut dyn Recorder,
) -> Result<(), String> {
    use std::io::BufReader;
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).map_err(|e| format!("binding {}: {e}", path.display()))?;
    let mut daemon = spec_daemon(config)?;
    'sessions: loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(format!("accepting on {}: {e}", path.display()));
            }
        };
        let reader = match stream.try_clone() {
            Ok(clone) => BufReader::new(clone),
            Err(_) => continue, // the client is already gone
        };
        let mut writer = stream;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if let Some(response) = drift_command_line(&line, recorder) {
                if writeln!(writer, "{response}").is_err() {
                    break; // client hung up mid-write; daemon state survives
                }
                continue;
            }
            match daemon.handle_line(&line, &mut writer, recorder) {
                Ok(DaemonStatus::Shutdown) => break 'sessions,
                Ok(DaemonStatus::Continue) => {}
                Err(_) => break, // client hung up mid-write; daemon state survives
            }
        }
        // Client EOF: drain its in-flight work so it gets every line it
        // paid for, then wait for the next connection (state persists).
        let _ = daemon.finish(&mut writer, recorder);
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_batch::Parallelism;
    use fap_obs::{MetricsRegistry, NoopRecorder};
    use fap_served::WarmMode;
    use serde::Serialize as _;

    fn batch_line(at: usize) -> String {
        let specs = serde_json::to_string(&crate::serve::example_specs())
            .expect("spec serialization cannot fail");
        format!("{{\"at\":{at},\"batch\":{specs}}}")
    }

    fn session(config: &DaemonConfig, lines: &[String]) -> (String, MetricsRegistry) {
        let mut out = Vec::new();
        let mut registry = MetricsRegistry::new();
        let input = lines.join("\n");
        run_daemon(input.as_bytes(), &mut out, config, &mut registry).unwrap();
        (String::from_utf8(out).unwrap(), registry)
    }

    #[test]
    fn a_spec_session_reuses_the_cache_across_batches() {
        let lines =
            vec![batch_line(0), batch_line(100_000), "{\"cmd\":\"shutdown\"}".to_string()];
        let (out, registry) = session(&DaemonConfig::default(), &lines);
        // The example list holds two graph-backed specs on one topology:
        // batch 1 misses once and hits once; batch 2 hits twice.
        assert_eq!(registry.counter("cache.miss"), 1);
        assert_eq!(registry.counter("cache.hit"), 3);
        assert_eq!(registry.counter("served.batches"), 2);
        assert_eq!(out.matches("\"kind\":\"batch\"").count(), 2);
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn daemon_batch_responses_match_one_shot_serve() {
        // `fap served` in the default (batch) warm mode must embed exactly
        // the responses one-shot `fap serve --warm-start` produces.
        let specs = crate::serve::example_specs();
        let oneshot = crate::serve::serve_specs_with(
            &specs,
            Parallelism::Auto,
            true,
            &mut NoopRecorder,
        )
        .unwrap();
        let rendered: Vec<Value> = oneshot
            .responses
            .iter()
            .map(|r| r.as_ref().unwrap().serialize_value())
            .collect();
        let expected = format!(
            "\"responses\":{}",
            serde_json::to_string(&Value::Array(rendered)).unwrap()
        );
        let lines = vec![batch_line(0), "{\"cmd\":\"shutdown\"}".to_string()];
        let (out, _) = session(&DaemonConfig::default(), &lines);
        let batch = out.lines().find(|l| l.contains("\"kind\":\"batch\"")).unwrap();
        assert!(batch.contains(&expected), "daemon must match the one-shot serve path");
    }

    #[test]
    fn session_warm_mode_seeds_across_spec_batches() {
        let lines = vec![
            batch_line(0),
            batch_line(100_000),
            batch_line(200_000),
            "{\"cmd\":\"shutdown\"}".to_string(),
        ];
        let config = DaemonConfig { warm: WarmMode::Session, ..DaemonConfig::default() };
        let (_, registry) = session(&config, &lines);
        assert!(
            registry.counter("serve.warm_starts") > 0,
            "later batch heads must start from the previous batch's tails"
        );
    }

    #[test]
    fn oracle_update_repairs_the_session_cache_across_a_topology_edit() {
        use crate::scenario::Topology;
        use fap_cache::CostBackend;

        // One landmark-backed ring spec per batch; the second batch
        // re-prices a single physical link. With --oracle-update the
        // session cache repairs its oracle in place instead of paying a
        // second cold build — the point of tentpole (3): WarmMode::Session
        // survives small topology edits.
        let ring_batch = |at: usize, bump: f64| {
            let mut links: Vec<(usize, usize, f64)> =
                (0..8).map(|i| (i, (i + 1) % 8, 1.0)).collect();
            links[3].2 += bump;
            let specs = vec![ServeSpec::Ring {
                link_costs: vec![],
                topology: Some(Topology::Links { n: 8, links }),
                cost_backend: CostBackend::Landmark { landmarks: 3, seed: 1 },
                lambdas: vec![0.25; 8],
                mus: vec![1.5; 8],
                copies: 2.0,
                k: 1.0,
                alpha: 0.1,
                cost_delta_tolerance: 1e-7,
                max_iterations: 3_000,
                initial: None,
            }];
            format!(
                "{{\"at\":{at},\"batch\":{}}}",
                serde_json::to_string(&specs).expect("spec serialization cannot fail")
            )
        };
        let lines = vec![
            ring_batch(0, 0.0),
            ring_batch(100_000, 0.5),
            "{\"cmd\":\"shutdown\"}".to_string(),
        ];
        let config = DaemonConfig {
            warm: WarmMode::Session,
            oracle_update: true,
            ..DaemonConfig::default()
        };
        let (out, registry) = session(&config, &lines);
        assert_eq!(out.matches("\"kind\":\"batch\"").count(), 2);
        assert_eq!(registry.counter("cache.landmark_miss"), 1, "one cold build only");
        assert_eq!(registry.counter("cache.landmark_incremental"), 1, "edit repaired");
        // Without the flag the same session pays a second cold build.
        let cold =
            DaemonConfig { warm: WarmMode::Session, ..DaemonConfig::default() };
        let (_, registry) = session(&cold, &lines);
        assert_eq!(registry.counter("cache.landmark_incremental"), 0);
        assert_eq!(registry.counter("cache.landmark_miss"), 2);
    }

    #[test]
    fn drift_commands_run_inside_a_spec_session() {
        let lines = vec![
            batch_line(0),
            "{\"cmd\":\"drift\",\"scenario\":\"diurnal\",\"nodes\":5,\"epochs\":8,\"threads\":1}"
                .to_string(),
            "{\"cmd\":\"drift\",\"scenario\":\"teleport\"}".to_string(),
            "{\"cmd\":\"shutdown\"}".to_string(),
        ];
        let (out, registry) = session(&DaemonConfig::default(), &lines);
        // The drift line answers inline; ordinary batches still serve.
        assert_eq!(out.matches("\"kind\":\"batch\"").count(), 1);
        let drift = out.lines().find(|l| l.contains("\"kind\":\"drift\"")).unwrap();
        assert!(drift.contains("\"regret_ratio\":"), "{drift}");
        assert_eq!(registry.counter("track.epochs"), 8);
        // A bad drift envelope errors inline without killing the session.
        assert!(out.contains("unknown scenario"), "{out}");
        assert_eq!(registry.counter("served.batches"), 1);
    }

    #[test]
    fn bad_batches_report_errors_without_killing_the_session() {
        let lines = vec![
            "{\"at\":0,\"batch\":[{\"type\":\"teleport\"}]}".to_string(),
            "{\"at\":0,\"batch\":[]}".to_string(),
            batch_line(5),
            "{\"cmd\":\"shutdown\"}".to_string(),
        ];
        let (out, registry) = session(&DaemonConfig::default(), &lines);
        assert_eq!(registry.counter("served.errors"), 2);
        assert_eq!(registry.counter("served.batches"), 1);
        assert_eq!(out.matches("\"kind\":\"error\"").count(), 2);
    }

    #[cfg(unix)]
    #[test]
    fn socket_sessions_share_one_daemon() {
        use std::io::{BufRead as _, BufReader, Write as _};
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("fap-served-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("daemon.sock");
        let config = DaemonConfig::default();
        let sock = path.clone();
        let server = std::thread::spawn(move || {
            let mut registry = MetricsRegistry::new();
            run_socket(&sock, &config, &mut registry).unwrap();
            registry
        });
        // Wait for the listener to come up.
        let mut tries = 0;
        while !path.exists() && tries < 500 {
            std::thread::sleep(std::time::Duration::from_millis(2));
            tries += 1;
        }
        let exchange = |lines: &[String]| -> String {
            let mut stream = UnixStream::connect(&path).unwrap();
            for line in lines {
                writeln!(stream, "{line}").unwrap();
            }
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut out = String::new();
            for line in BufReader::new(stream).lines() {
                out.push_str(&line.unwrap());
                out.push('\n');
            }
            out
        };
        // Client 1 submits a batch and hangs up; client 2 asks for status
        // and must see client 1's completed work and warmed cache.
        let first = exchange(&[batch_line(0)]);
        assert!(first.contains("\"kind\":\"batch\""));
        let second = exchange(&[
            "{\"cmd\":\"status\"}".to_string(),
            "{\"cmd\":\"shutdown\"}".to_string(),
        ]);
        let status = second.lines().next().unwrap();
        assert!(
            status.contains("\"completed\":1") && status.contains("\"cache_misses\":1"),
            "{status}"
        );
        let registry = server.join().unwrap();
        assert_eq!(registry.counter("served.batches"), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
