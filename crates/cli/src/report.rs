//! `fap report`: summarizing an exported metrics JSONL file.
//!
//! The input is the stream written by `fap run --metrics-out` or
//! `fap sim --metrics-out` (events first, then the registry snapshot — see
//! `fap_obs::jsonl`). The summary answers the three questions the ISSUE
//! poses of a run: how many iterations/rounds until convergence, how many
//! faults of each type were injected, and what the round-trip report
//! latency distribution looked like (exact p50/p99 over the per-delivery
//! latencies, falling back to the histogram snapshot when the event stream
//! was truncated).

use std::fmt::Write as _;

use fap_obs::jsonl::{parse_line, Scalar};

/// The digested content of one metrics JSONL file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReportSummary {
    /// Iterations (solver) or rounds (simulator) until the run ended, from
    /// the final `run_end` event.
    pub iterations: Option<u64>,
    /// Whether the run converged, from the final `run_end` event.
    pub converged: Option<bool>,
    /// Every `sim.*` counter in file order — the per-fault-type counts plus
    /// the traffic totals.
    pub fault_counts: Vec<(String, u64)>,
    /// Every counter in file order, whatever its namespace (`econ.*`,
    /// `serve.*`, `cache.*`, `sim.*`, …) — the basis of `fap report --diff`.
    pub counters: Vec<(String, u64)>,
    /// Every gauge in file order — the tracking section's regret and
    /// utility readings live here.
    pub gauges: Vec<(String, f64)>,
    /// Exact median report latency in rounds, over `delivery` events.
    pub latency_p50: Option<f64>,
    /// Exact 99th-percentile report latency in rounds.
    pub latency_p99: Option<f64>,
    /// Number of completed deliveries the latency quantiles are over.
    pub deliveries: usize,
    /// Total event lines in the file.
    pub events: usize,
    /// Total lines in the file.
    pub lines: usize,
}

fn field<'a>(fields: &'a [(String, Scalar)], name: &str) -> Option<&'a Scalar> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Nearest-rank quantile over an ascending-sorted slice; `None` when the
/// slice is empty (the previous `sorted.len() - 1` underflowed on `[]`).
fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    let last = sorted.len().checked_sub(1)?;
    let index = (last as f64 * q).round() as usize;
    Some(sorted[index])
}

/// Parses and digests a metrics JSONL stream.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn summarize(text: &str) -> Result<ReportSummary, String> {
    let mut summary = ReportSummary::default();
    let mut latencies: Vec<f64> = Vec::new();
    let mut histogram_fallback: Option<(f64, f64)> = None;
    for (number, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        summary.lines += 1;
        let fields =
            parse_line(line).ok_or_else(|| format!("line {}: malformed JSONL", number + 1))?;
        if let Some(Scalar::Str(event)) = field(&fields, "event") {
            summary.events += 1;
            match event.as_str() {
                "run_end" => {
                    // The simulator reports rounds, the solvers iterations.
                    summary.iterations = field(&fields, "rounds")
                        .or_else(|| field(&fields, "iterations"))
                        .and_then(Scalar::as_i64)
                        .map(|v| v as u64);
                    summary.converged = match field(&fields, "converged") {
                        Some(Scalar::Bool(b)) => Some(*b),
                        _ => None,
                    };
                }
                "delivery" => {
                    if let Some(latency) = field(&fields, "latency").and_then(Scalar::as_f64) {
                        latencies.push(latency);
                    }
                }
                _ => {}
            }
        } else if let Some(Scalar::Str(name)) = field(&fields, "counter") {
            let value =
                field(&fields, "value").and_then(Scalar::as_i64).unwrap_or(0) as u64;
            if name.starts_with("sim.") {
                summary.fault_counts.push((name.clone(), value));
            }
            summary.counters.push((name.clone(), value));
        } else if let Some(Scalar::Str(name)) = field(&fields, "gauge") {
            if let Some(value) = field(&fields, "value").and_then(Scalar::as_f64) {
                summary.gauges.push((name.clone(), value));
            }
        } else if let Some(Scalar::Str(name)) = field(&fields, "hist") {
            if name == "sim.report_latency_rounds" {
                let p50 = field(&fields, "p50").and_then(Scalar::as_f64);
                let p99 = field(&fields, "p99").and_then(Scalar::as_f64);
                if let (Some(p50), Some(p99)) = (p50, p99) {
                    histogram_fallback = Some((p50, p99));
                }
            }
        }
    }
    if latencies.is_empty() {
        if let Some((p50, p99)) = histogram_fallback {
            summary.latency_p50 = Some(p50);
            summary.latency_p99 = Some(p99);
        }
    } else {
        latencies.sort_by(f64::total_cmp);
        summary.deliveries = latencies.len();
        summary.latency_p50 = quantile(&latencies, 0.50);
        summary.latency_p99 = quantile(&latencies, 0.99);
    }
    Ok(summary)
}

/// Renders a summary the way `fap report` prints it.
pub fn render(summary: &ReportSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} lines, {} events", summary.lines, summary.events);
    match (summary.iterations, summary.converged) {
        (Some(n), Some(true)) => {
            let _ = writeln!(out, "run:      converged after {n} iterations");
        }
        (Some(n), Some(false)) => {
            let _ = writeln!(out, "run:      stopped without converging after {n} iterations");
        }
        (Some(n), None) => {
            let _ = writeln!(out, "run:      ended after {n} iterations");
        }
        _ => {
            let _ = writeln!(out, "run:      no run_end event found");
        }
    }
    if summary.fault_counts.is_empty() {
        let _ = writeln!(out, "faults:   no sim.* counters found");
    } else {
        let _ = writeln!(out, "faults:");
        let width =
            summary.fault_counts.iter().map(|(name, _)| name.len()).max().unwrap_or(0);
        for (name, value) in &summary.fault_counts {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }
    // The cost-substrate counters: landmark-oracle row traffic
    // (`net.landmark_*`), hierarchical refinement (`hier.*`) and substrate
    // cache activity (`cache.*`).
    let substrate: Vec<&(String, u64)> = summary
        .counters
        .iter()
        .filter(|(name, _)| {
            name.starts_with("net.landmark_")
                || name.starts_with("hier.")
                || name.starts_with("cache.")
        })
        .collect();
    if !substrate.is_empty() {
        let _ = writeln!(out, "substrate:");
        let width = substrate.iter().map(|(name, _)| name.len()).max().unwrap_or(0);
        for (name, value) in substrate {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }
    // The drift-tracking plane: `track.*` counters (epochs, copies,
    // rounds) and gauges (the final regret and utility readings).
    let track_counters: Vec<(&str, String)> = summary
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("track."))
        .map(|(name, value)| (name.as_str(), value.to_string()))
        .collect();
    let track_gauges: Vec<(&str, String)> = summary
        .gauges
        .iter()
        .filter(|(name, _)| name.starts_with("track."))
        .map(|(name, value)| (name.as_str(), format!("{value}")))
        .collect();
    if !track_counters.is_empty() || !track_gauges.is_empty() {
        let _ = writeln!(out, "tracking:");
        let width = track_counters
            .iter()
            .chain(&track_gauges)
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0);
        for (name, value) in track_counters.iter().chain(&track_gauges) {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }
    match (summary.latency_p50, summary.latency_p99) {
        (Some(p50), Some(p99)) if summary.deliveries > 0 => {
            let _ = writeln!(
                out,
                "latency:  p50 {p50} rounds, p99 {p99} rounds ({} deliveries)",
                summary.deliveries
            );
        }
        (Some(p50), Some(p99)) => {
            let _ = writeln!(
                out,
                "latency:  p50 {p50} rounds, p99 {p99} rounds (histogram buckets)"
            );
        }
        _ => {
            let _ = writeln!(out, "latency:  no delivery data found");
        }
    }
    out
}

/// Renders two summaries side by side (`fap report --diff a b`): every
/// counter appearing in either file, first file's order first, with the
/// signed delta, then the latency quantiles. Useful for before/after
/// comparisons — a cold serve export against a warm one, a faulty sim
/// against a clean one.
pub fn render_diff(label_a: &str, a: &ReportSummary, label_b: &str, b: &ReportSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "A: {label_a}  ({} lines, {} events)", a.lines, a.events);
    let _ = writeln!(out, "B: {label_b}  ({} lines, {} events)", b.lines, b.events);

    let run_of = |s: &ReportSummary| match (s.iterations, s.converged) {
        (Some(n), Some(true)) => format!("converged after {n}"),
        (Some(n), Some(false)) => format!("stopped after {n}"),
        (Some(n), None) => format!("ended after {n}"),
        _ => "no run_end".into(),
    };
    let _ = writeln!(out, "run:      A {}, B {}", run_of(a), run_of(b));

    // The union of counter names, in A's file order with B-only names
    // appended in B's order, each compared by value.
    let mut names: Vec<&str> = a.counters.iter().map(|(n, _)| n.as_str()).collect();
    for (name, _) in &b.counters {
        if !names.contains(&name.as_str()) {
            names.push(name);
        }
    }
    if names.is_empty() {
        let _ = writeln!(out, "counters: none in either file");
    } else {
        let value_of = |s: &ReportSummary, name: &str| {
            s.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
        };
        let width = names.iter().map(|n| n.len()).max().unwrap_or(0);
        let _ = writeln!(out, "counters:");
        let _ = writeln!(out, "  {:<width$}  {:>12}  {:>12}  {:>13}", "name", "A", "B", "delta");
        for name in names {
            let va = value_of(a, name);
            let vb = value_of(b, name);
            let show = |v: Option<u64>| v.map_or("-".to_string(), |v| v.to_string());
            let delta = match (va, vb) {
                (Some(va), Some(vb)) => format!("{:+}", vb as i128 - va as i128),
                _ => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  {name:<width$}  {:>12}  {:>12}  {:>13}",
                show(va),
                show(vb),
                delta
            );
        }
    }

    let quantile_row = |label: &str, qa: Option<f64>, qb: Option<f64>| {
        let show = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v}"));
        let delta = match (qa, qb) {
            (Some(qa), Some(qb)) => format!("{:+}", qb - qa),
            _ => "-".to_string(),
        };
        format!("  {label:<8}  {:>12}  {:>12}  {:>13}", show(qa), show(qb), delta)
    };
    let _ = writeln!(out, "latency (rounds):");
    let _ = writeln!(out, "{}", quantile_row("p50", a.latency_p50, b.latency_p50));
    let _ = writeln!(out, "{}", quantile_row("p99", a.latency_p99, b.latency_p99));
    out
}

/// Renders a summary as one machine-readable JSON object
/// (`fap report --json`): the run outcome, every counter, the `sim.*`
/// fault counts, the substrate section and the latency quantiles. Field
/// order is fixed and numbers use the same formatting as the JSONL
/// writer, so the output is byte-deterministic and scripts can diff it.
pub fn render_json(summary: &ReportSummary) -> String {
    use fap_obs::jsonl::{push_json_f64, push_json_str};

    fn push_counters(out: &mut String, key: &str, entries: &[(&String, &u64)]) {
        use fap_obs::jsonl::push_json_str;
        out.push(',');
        push_json_str(out, key);
        out.push_str(":{");
        for (i, (name, value)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(out, name);
            let _ = write!(out, ":{value}");
        }
        out.push('}');
    }

    let mut out = String::new();
    let _ = write!(out, "{{\"lines\":{},\"events\":{}", summary.lines, summary.events);
    out.push_str(",\"run\":{\"iterations\":");
    match summary.iterations {
        Some(n) => {
            let _ = write!(out, "{n}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"converged\":");
    match summary.converged {
        Some(b) => {
            let _ = write!(out, "{b}");
        }
        None => out.push_str("null"),
    }
    out.push('}');
    push_counters(
        &mut out,
        "counters",
        &summary.counters.iter().map(|(n, v)| (n, v)).collect::<Vec<_>>(),
    );
    push_counters(
        &mut out,
        "faults",
        &summary.fault_counts.iter().map(|(n, v)| (n, v)).collect::<Vec<_>>(),
    );
    // The same substrate slice `render` prints as its own section.
    let substrate: Vec<(&String, &u64)> = summary
        .counters
        .iter()
        .filter(|(name, _)| {
            name.starts_with("net.landmark_")
                || name.starts_with("hier.")
                || name.starts_with("cache.")
        })
        .map(|(n, v)| (n, v))
        .collect();
    push_counters(&mut out, "substrate", &substrate);
    // The tracking section: `track.*` counters as integers, then the
    // `track.*` gauges as floats, both in file order.
    out.push_str(",\"tracking\":{");
    let mut first = true;
    for (name, value) in summary.counters.iter().filter(|(n, _)| n.starts_with("track.")) {
        if !first {
            out.push(',');
        }
        first = false;
        push_json_str(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    for (name, value) in summary.gauges.iter().filter(|(n, _)| n.starts_with("track.")) {
        if !first {
            out.push(',');
        }
        first = false;
        push_json_str(&mut out, name);
        out.push(':');
        push_json_f64(&mut out, *value);
    }
    out.push('}');
    out.push_str(",\"latency\":{");
    for (i, (key, value)) in
        [("p50", summary.latency_p50), ("p99", summary.latency_p99)].iter().enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, key);
        out.push(':');
        match value {
            Some(v) => push_json_f64(&mut out, *v),
            None => out.push_str("null"),
        }
    }
    let _ = write!(out, ",\"deliveries\":{}}}", summary.deliveries);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::chaos_sim_observed;
    use crate::Scenario;
    use fap_obs::Telemetry;
    use fap_runtime::ChaosPlan;

    fn sim_jsonl(seed: u64) -> String {
        let scenario = Scenario::example();
        let plan = ChaosPlan::new(seed)
            .with_drop(0.2)
            .with_delay(0.2, 3)
            .with_staleness_bound(2)
            .with_retries(1);
        let mut telemetry = Telemetry::manual();
        chaos_sim_observed(&scenario, plan, &mut telemetry).unwrap();
        telemetry.to_jsonl()
    }

    #[test]
    fn summarizes_a_recorded_sim_run() {
        let jsonl = sim_jsonl(11);
        let summary = summarize(&jsonl).unwrap();
        assert!(summary.iterations.is_some(), "run_end must be found");
        assert_eq!(summary.converged, Some(true));
        assert!(summary.deliveries > 0);
        let p50 = summary.latency_p50.unwrap();
        let p99 = summary.latency_p99.unwrap();
        assert!(p50 <= p99);
        let dropped = summary
            .fault_counts
            .iter()
            .find(|(name, _)| name == "sim.dropped")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(dropped > 0, "the drop-heavy plan must record drops");

        let rendered = render(&summary);
        assert!(rendered.contains("converged after"));
        assert!(rendered.contains("sim.dropped"));
        assert!(rendered.contains("p99"));
    }

    #[test]
    fn falls_back_to_the_histogram_when_events_are_absent() {
        let jsonl = sim_jsonl(11);
        // Keep only the registry snapshot (counter/gauge/hist lines).
        let registry_only: String = jsonl
            .lines()
            .filter(|l| !l.contains("\"event\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let summary = summarize(&registry_only).unwrap();
        assert_eq!(summary.deliveries, 0);
        assert!(summary.latency_p50.is_some(), "histogram fallback must kick in");
        assert!(summary.iterations.is_none());
    }

    #[test]
    fn rejects_malformed_lines_with_a_line_number() {
        let err = summarize("{\"counter\":\"sim.sent\",\"value\":1}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn empty_quantile_is_none_not_a_panic() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[2.5], 0.99), Some(2.5));
    }

    #[test]
    fn empty_file_reports_no_latencies() {
        let summary = summarize("").unwrap();
        assert_eq!(summary, ReportSummary::default());
        assert_eq!(summary.latency_p50, None);
        assert_eq!(summary.latency_p99, None);
        let rendered = render(&summary);
        assert!(rendered.contains("no run_end event found"));
        assert!(rendered.contains("no delivery data found"));
    }

    #[test]
    fn event_free_file_reports_none_latencies() {
        // A registry-only export with no sim histogram and no deliveries —
        // e.g. a solve run that recorded only counters.
        let text = "{\"counter\":\"econ.iterations\",\"value\":12}\n\
                    {\"gauge\":\"econ.alpha\",\"value\":0.1}\n";
        let summary = summarize(text).unwrap();
        assert_eq!(summary.events, 0);
        assert_eq!(summary.deliveries, 0);
        assert_eq!(summary.latency_p50, None);
        assert_eq!(summary.latency_p99, None);
        assert!(render(&summary).contains("no delivery data found"));
    }

    #[test]
    fn ring_runs_report_real_iteration_counts() {
        // The §7 solver is wired through the recorder now; its exported
        // stream must show the true iteration count, not zero.
        let ring = fap_ring::VirtualRing::new(
            vec![4.0, 1.0, 1.0, 1.0],
            vec![0.25; 4],
            vec![1.5; 4],
            2.0,
            1.0,
        )
        .unwrap();
        let mut telemetry = Telemetry::manual();
        let solution = fap_ring::RingSolver::new(0.1)
            .with_max_iterations(3_000)
            .solve_observed(&ring, &[2.0, 0.0, 0.0, 0.0], &mut telemetry)
            .unwrap();
        assert!(solution.iterations > 0);
        let summary = summarize(&telemetry.to_jsonl()).unwrap();
        assert_eq!(summary.iterations, Some(solution.iterations as u64));
        assert_eq!(summary.converged, Some(solution.converged));
        assert!(render(&summary).contains(&format!("after {} iterations", solution.iterations)));
    }

    #[test]
    fn tracking_runs_render_their_own_section() {
        let graph = fap_net::topology::ring(5, 1.0).unwrap();
        let config = fap_runtime::DriftConfig {
            epochs: 6,
            max_iterations: 60_000,
            ..fap_runtime::DriftConfig::default()
        };
        let run = fap_runtime::DriftRun::new(&graph, config).unwrap();
        let mut telemetry = Telemetry::manual();
        let report =
            run.run_observed(fap_batch::Parallelism::Sequential, &mut telemetry).unwrap();
        let summary = summarize(&telemetry.to_jsonl()).unwrap();
        assert!(summary
            .counters
            .iter()
            .any(|(n, v)| n == "track.epochs" && *v == report.epochs.len() as u64));
        assert!(summary.gauges.iter().any(|(n, _)| n == "track.regret"));

        let rendered = render(&summary);
        assert!(rendered.contains("tracking:"), "{rendered}");
        assert!(rendered.contains("track.epochs"), "{rendered}");
        assert!(rendered.contains("track.regret"), "{rendered}");

        let json = render_json(&summary);
        assert!(json.contains("\"tracking\":{"), "{json}");
        assert!(json.contains("\"track.epochs\":6"), "{json}");
        assert!(json.contains("\"track.regret\":"), "{json}");
        // Non-tracking files keep an empty section, not a missing key.
        let empty = render_json(&ReportSummary::default());
        assert!(empty.contains("\"tracking\":{}"));
    }

    #[test]
    fn every_counter_is_captured_for_diffing() {
        let text = "{\"counter\":\"econ.iterations\",\"value\":12}\n\
                    {\"counter\":\"serve.requests\",\"value\":3}\n\
                    {\"counter\":\"cache.hit\",\"value\":2}\n";
        let summary = summarize(text).unwrap();
        assert_eq!(
            summary.counters,
            vec![
                ("econ.iterations".to_string(), 12),
                ("serve.requests".to_string(), 3),
                ("cache.hit".to_string(), 2),
            ]
        );
        assert!(summary.fault_counts.is_empty(), "non-sim counters are not faults");
    }

    #[test]
    fn diff_shows_deltas_and_one_sided_counters() {
        let a = summarize(
            "{\"counter\":\"econ.iterations\",\"value\":100}\n\
             {\"counter\":\"serve.requests\",\"value\":6}\n",
        )
        .unwrap();
        let b = summarize(
            "{\"counter\":\"econ.iterations\",\"value\":40}\n\
             {\"counter\":\"serve.requests\",\"value\":6}\n\
             {\"counter\":\"serve.warm_starts\",\"value\":5}\n",
        )
        .unwrap();
        let rendered = render_diff("cold.jsonl", &a, "warm.jsonl", &b);
        assert!(rendered.contains("A: cold.jsonl"));
        assert!(rendered.contains("B: warm.jsonl"));
        assert!(rendered.contains("-60"), "econ.iterations delta: {rendered}");
        assert!(rendered.contains("+0"), "unchanged counters show +0: {rendered}");
        // A counter only one side has renders a dash, not a bogus delta.
        let warm_line = rendered
            .lines()
            .find(|l| l.contains("serve.warm_starts"))
            .expect("B-only counter must appear");
        assert!(warm_line.contains('-'), "{warm_line}");
        assert!(warm_line.contains('5'), "{warm_line}");
    }

    #[test]
    fn diffing_real_sim_runs_is_well_formed() {
        let a = summarize(&sim_jsonl(11)).unwrap();
        let b = summarize(&sim_jsonl(12)).unwrap();
        let rendered = render_diff("a", &a, "b", &b);
        assert!(rendered.contains("sim.dropped"));
        assert!(rendered.contains("p99"));
        // Same file diffed against itself: every delta is +0.
        let same = render_diff("a", &a, "a", &a);
        assert!(!same.lines().any(|l| l.contains("+1") || l.contains("-1")), "{same}");
    }

    #[test]
    fn json_output_is_machine_readable_and_deterministic() {
        let jsonl = sim_jsonl(11);
        let summary = summarize(&jsonl).unwrap();
        let json = render_json(&summary);
        // One flat-enough object the JSONL parser itself cannot read (it
        // nests), but whose shape scripts can rely on byte-for-byte.
        assert!(json.starts_with("{\"lines\":"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"run\":{\"iterations\":"));
        assert!(json.contains("\"converged\":true"));
        assert!(json.contains("\"counters\":{"));
        assert!(json.contains("\"sim.dropped\":"));
        assert!(json.contains("\"substrate\":{"));
        assert!(json.contains("\"latency\":{\"p50\":"));
        assert_eq!(json, render_json(&summarize(&jsonl).unwrap()));

        // Absent fields render as null, not as made-up numbers.
        let empty = render_json(&ReportSummary::default());
        assert!(empty.contains("\"iterations\":null"));
        assert!(empty.contains("\"p50\":null"));
        assert!(empty.contains("\"deliveries\":0"));
    }

    #[test]
    fn quantiles_are_exact_over_the_deliveries() {
        let mut jsonl = String::new();
        for latency in [0, 0, 0, 1, 4] {
            jsonl.push_str(&format!(
                "{{\"t\":1,\"event\":\"delivery\",\"round\":1,\"from\":0,\"latency\":{latency}}}\n"
            ));
        }
        let summary = summarize(&jsonl).unwrap();
        assert_eq!(summary.deliveries, 5);
        assert_eq!(summary.latency_p50, Some(0.0));
        assert_eq!(summary.latency_p99, Some(4.0));
    }
}
