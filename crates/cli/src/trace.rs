//! `fap trace`: offline reconstruction of the span streams the tracing
//! plane exports.
//!
//! The daemon (and any solver run with tracing enabled) writes
//! `span_start`/`span_end` events into the same JSONL stream as every
//! other metric. This module parses that stream back with
//! [`fap_obs::jsonl::parse_line`], stitches the spans into one tree per
//! trace, and answers the questions the live gauges cannot:
//!
//! * **self time** — each span's duration minus its direct children's,
//!   so every virtual tick is attributed to the deepest span that spent
//!   it. Within a well-formed trace the self times telescope: they sum
//!   exactly to the root's duration.
//! * **critical path** — the root-to-leaf chain following the longest
//!   child at every level (ties break toward the earlier start, then the
//!   smaller span id, so the path is deterministic).
//! * **slowest traces** — ranked by root duration, ties toward the
//!   smaller trace id, matching the flight recorder's tail sampler.
//! * **folded stacks** ([`render_folded`]) — `a;b;c ticks` lines,
//!   aggregated over all traces, ready for `flamegraph.pl`.
//! * **diffs** ([`render_diff`]) — per-layer self-time deltas between two
//!   exports, for before/after comparisons of the same scripted session.
//!
//! Non-span lines (counters, gauges, faults…) are skipped, so any
//! `--metrics-out` export works as input. Span ends whose start never
//! appeared — and starts that never ended — are counted as orphans rather
//! than guessed at.

use std::fmt::Write as _;

use fap_obs::jsonl::{parse_line, Scalar};
use fap_obs::{SPAN_END, SPAN_START};

/// One reconstructed span inside a [`TraceTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span's name (`layer.operation`).
    pub name: String,
    /// The span's id, unique within the export.
    pub span_id: u64,
    /// The parent span's id (`0` for the root).
    pub parent_id: u64,
    /// Start tick.
    pub start: u64,
    /// Duration in virtual ticks.
    pub dur: u64,
    /// Duration minus the direct children's durations.
    pub self_ticks: u64,
    /// Indices of the direct children in [`TraceTree::spans`], ordered by
    /// start tick then span id.
    pub children: Vec<usize>,
}

/// One request's reconstructed span tree.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id (== the root span's id).
    pub trace_id: u64,
    /// Index of the root span in [`TraceTree::spans`].
    pub root: usize,
    /// Every span reachable from the root.
    pub spans: Vec<SpanNode>,
}

impl TraceTree {
    /// The root span's name.
    pub fn name(&self) -> &str {
        &self.spans[self.root].name
    }

    /// The root span's start tick.
    pub fn start(&self) -> u64 {
        self.spans[self.root].start
    }

    /// The trace's wall duration in virtual ticks (the root span's).
    pub fn dur(&self) -> u64 {
        self.spans[self.root].dur
    }

    /// The sum of every span's self time. In a well-formed trace this
    /// equals [`TraceTree::dur`] — the telescoping identity `fap trace`'s
    /// tests pin.
    pub fn self_total(&self) -> u64 {
        self.spans.iter().map(|s| s.self_ticks).sum()
    }

    /// The critical path: indices from the root down, following the
    /// longest child at each level. Ties break toward the earlier start,
    /// then the smaller span id, so the path is a pure function of the
    /// export.
    pub fn critical_path(&self) -> Vec<usize> {
        let mut path = vec![self.root];
        let mut at = self.root;
        loop {
            let next = self.spans[at].children.iter().copied().max_by(|&a, &b| {
                let (sa, sb) = (&self.spans[a], &self.spans[b]);
                sa.dur
                    .cmp(&sb.dur)
                    .then_with(|| sb.start.cmp(&sa.start))
                    .then_with(|| sb.span_id.cmp(&sa.span_id))
            });
            match next {
                Some(child) => {
                    path.push(child);
                    at = child;
                }
                None => return path,
            }
        }
    }
}

/// Everything [`analyze`] reconstructs from one export.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Completed traces, in the order their roots ended in the file.
    pub traces: Vec<TraceTree>,
    /// Per-layer self time in ticks (layer = span-name prefix before the
    /// first `.`), in first-seen order.
    pub layers: Vec<(String, u64)>,
    /// Total spans attached to completed traces.
    pub spans: usize,
    /// Span events that could not be stitched: ends without a start,
    /// starts without an end, and spans of traces whose root never ended.
    pub orphans: usize,
}

impl TraceReport {
    /// Self time recorded for one layer.
    pub fn layer_self_time(&self, layer: &str) -> u64 {
        self.layers.iter().find(|(l, _)| l == layer).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Trace indices sorted slowest first (ties toward the smaller trace
    /// id, matching the flight recorder's tail sampler).
    pub fn slowest(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.traces.len()).collect();
        order.sort_by(|&a, &b| {
            let (ta, tb) = (&self.traces[a], &self.traces[b]);
            tb.dur().cmp(&ta.dur()).then(ta.trace_id.cmp(&tb.trace_id))
        });
        order
    }
}

/// A finished span waiting to be attached to its trace's tree.
#[derive(Debug)]
struct DoneSpan {
    trace: u64,
    span: u64,
    parent: u64,
    name: String,
    start: u64,
    dur: u64,
}

/// Parses a JSONL export and reconstructs every completed trace.
///
/// # Errors
///
/// Returns `line N: ...` messages for unparseable lines or span events
/// with missing/negative id fields. Unmatched span events are *not*
/// errors — they land in [`TraceReport::orphans`].
pub fn analyze(text: &str) -> Result<TraceReport, String> {
    struct Open {
        trace: u64,
        span: u64,
        parent: u64,
        name: String,
        start: u64,
    }
    let mut open: Vec<Open> = Vec::new();
    let mut done: Vec<DoneSpan> = Vec::new();
    let mut finished_roots: Vec<u64> = Vec::new();
    let mut orphans = 0usize;

    for (number, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let pairs = parse_line(line)
            .ok_or_else(|| format!("line {}: malformed JSONL", number + 1))?;
        let field = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(event) = field("event").and_then(Scalar::as_str) else { continue };
        if event != SPAN_START && event != SPAN_END {
            continue;
        }
        let id = |key: &str| {
            field(key)
                .and_then(Scalar::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("line {}: span event needs '{key}'", number + 1))
        };
        let name = field("name")
            .and_then(Scalar::as_str)
            .ok_or_else(|| format!("line {}: span event needs 'name'", number + 1))?;
        let (trace, span) = (id("trace")?, id("span")?);
        if event == SPAN_START {
            open.push(Open {
                trace,
                span,
                parent: id("parent")?,
                name: name.to_string(),
                start: id("t")?,
            });
        } else {
            // Ends usually match the most recent start — scan from the
            // back, like the flight recorder does.
            let Some(pos) =
                open.iter().rposition(|o| o.trace == trace && o.span == span)
            else {
                orphans += 1;
                continue;
            };
            let opened = open.swap_remove(pos);
            if opened.parent == 0 {
                finished_roots.push(trace);
            }
            done.push(DoneSpan {
                trace,
                span,
                parent: opened.parent,
                name: opened.name,
                start: opened.start,
                dur: id("dur")?,
            });
        }
    }
    orphans += open.len();

    let mut traces = Vec::with_capacity(finished_roots.len());
    let mut spans = 0usize;
    let mut layers: Vec<(String, u64)> = Vec::new();
    for trace_id in finished_roots {
        let tree = build_tree(trace_id, &mut done);
        spans += tree.spans.len();
        for span in &tree.spans {
            let layer = span.name.split('.').next().unwrap_or(&span.name);
            match layers.iter_mut().find(|(l, _)| l == layer) {
                Some((_, v)) => *v += span.self_ticks,
                None => layers.push((layer.to_string(), span.self_ticks)),
            }
        }
        traces.push(tree);
    }
    // Whatever is left belongs to traces whose root never ended.
    orphans += done.len();

    Ok(TraceReport { traces, layers, spans, orphans })
}

/// Extracts `trace_id`'s spans from `done` and links them into a tree.
/// Spans whose ancestry does not reach the root stay in `done` and are
/// counted as orphans by the caller.
fn build_tree(trace_id: u64, done: &mut Vec<DoneSpan>) -> TraceTree {
    let mut mine: Vec<DoneSpan> = Vec::new();
    done.retain_mut(|s| {
        if s.trace == trace_id {
            mine.push(DoneSpan { name: std::mem::take(&mut s.name), ..*s });
            false
        } else {
            true
        }
    });
    let mut nodes: Vec<SpanNode> = mine
        .into_iter()
        .map(|s| SpanNode {
            name: s.name,
            span_id: s.span,
            parent_id: s.parent,
            start: s.start,
            dur: s.dur,
            self_ticks: s.dur,
            children: Vec::new(),
        })
        .collect();
    // Link children to parents by span id, then keep only the spans
    // reachable from the root.
    let find = |nodes: &[SpanNode], id: u64| nodes.iter().position(|n| n.span_id == id);
    let root = find(&nodes, trace_id).expect("the root's end put its trace id here");
    for i in 0..nodes.len() {
        if nodes[i].parent_id == 0 {
            continue;
        }
        if let Some(parent) = find(&nodes, nodes[i].parent_id) {
            nodes[parent].children.push(i);
            nodes[parent].self_ticks = nodes[parent].self_ticks.saturating_sub(nodes[i].dur);
        }
    }
    let mut keep = vec![false; nodes.len()];
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        keep[i] = true;
        stack.extend(nodes[i].children.iter().copied());
    }
    // Compact to the kept set, remapping indices.
    let mut remap = vec![usize::MAX; nodes.len()];
    let mut spans: Vec<SpanNode> = Vec::new();
    for (i, node) in nodes.into_iter().enumerate() {
        if keep[i] {
            remap[i] = spans.len();
            spans.push(node);
        }
    }
    for node in &mut spans {
        for child in &mut node.children {
            *child = remap[*child];
        }
    }
    // Sort children by (start, span id); a separate pass because the
    // comparator has to read sibling nodes while mutating the parent.
    let ordered: Vec<(u64, u64)> = spans.iter().map(|s| (s.start, s.span_id)).collect();
    for node in &mut spans {
        node.children.sort_by_key(|&c| ordered[c]);
    }
    TraceTree { trace_id, root: remap[root], spans }
}

/// Renders the human-readable summary: totals, per-layer self time, and
/// the `top` slowest traces with their critical paths and span trees.
pub fn render(report: &TraceReport, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "traces:");
    let _ = writeln!(out, "  completed {:>10}", report.traces.len());
    let _ = writeln!(out, "  spans     {:>10}", report.spans);
    let _ = writeln!(out, "  orphans   {:>10}", report.orphans);
    let wall: u64 = report.traces.iter().map(TraceTree::dur).sum();
    let _ = writeln!(out, "  wall ticks{:>10}", wall);

    let total: u64 = report.layers.iter().map(|(_, v)| *v).sum();
    if !report.layers.is_empty() {
        out.push_str("\nself ticks by layer:\n");
        for (layer, ticks) in &report.layers {
            let pct =
                if total == 0 { 0.0 } else { 100.0 * *ticks as f64 / total as f64 };
            let _ = writeln!(out, "  {layer:<10} {ticks:>10}  {pct:>5.1}%");
        }
    }

    let order = report.slowest();
    if !order.is_empty() {
        out.push_str("\nslowest traces:\n");
    }
    for (rank, &idx) in order.iter().take(top.max(1)).enumerate() {
        let tree = &report.traces[idx];
        let _ = writeln!(
            out,
            "#{} trace {}  {}  start {}  dur {}",
            rank + 1,
            tree.trace_id,
            tree.name(),
            tree.start(),
            tree.dur()
        );
        let path: Vec<&str> =
            tree.critical_path().iter().map(|&i| tree.spans[i].name.as_str()).collect();
        let _ = writeln!(out, "   critical path: {}", path.join(" > "));
        render_tree(&mut out, tree, tree.root, 3);
    }
    out
}

fn render_tree(out: &mut String, tree: &TraceTree, node: usize, indent: usize) {
    let span = &tree.spans[node];
    let _ = writeln!(
        out,
        "{:indent$}{:<28} dur {:>8}  self {:>8}",
        "",
        span.name,
        span.dur,
        span.self_ticks,
        indent = indent
    );
    for &child in &span.children {
        render_tree(out, tree, child, indent + 2);
    }
}

/// Renders folded stacks — one `root;child;leaf ticks` line per distinct
/// stack with nonzero self time, aggregated over every trace, in
/// first-seen order. The format `flamegraph.pl` (and every compatible
/// renderer) consumes directly.
pub fn render_folded(report: &TraceReport) -> String {
    let mut stacks: Vec<(String, u64)> = Vec::new();
    for tree in &report.traces {
        fold(tree, tree.root, "", &mut stacks);
    }
    let mut out = String::new();
    for (stack, ticks) in stacks {
        let _ = writeln!(out, "{stack} {ticks}");
    }
    out
}

fn fold(tree: &TraceTree, node: usize, prefix: &str, stacks: &mut Vec<(String, u64)>) {
    let span = &tree.spans[node];
    let stack = if prefix.is_empty() {
        span.name.clone()
    } else {
        format!("{prefix};{}", span.name)
    };
    if span.self_ticks > 0 {
        match stacks.iter_mut().find(|(k, _)| *k == stack) {
            Some((_, v)) => *v += span.self_ticks,
            None => stacks.push((stack.clone(), span.self_ticks)),
        }
    }
    for &child in &span.children {
        fold(tree, child, &stack, stacks);
    }
}

/// Renders a per-layer self-time comparison of two exports — the
/// before/after view for "where did the new ticks go".
pub fn render_diff(
    label_a: &str,
    a: &TraceReport,
    label_b: &str,
    b: &TraceReport,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "a: {label_a}");
    let _ = writeln!(out, "b: {label_b}");
    let wall = |r: &TraceReport| r.traces.iter().map(TraceTree::dur).sum::<u64>();
    let _ = writeln!(
        out,
        "traces: {} vs {}   wall ticks: {} vs {}",
        a.traces.len(),
        b.traces.len(),
        wall(a),
        wall(b)
    );
    out.push_str("\nself ticks by layer:\n");
    let _ = writeln!(out, "  {:<10} {:>10} {:>10} {:>10}", "layer", "a", "b", "delta");
    let mut names: Vec<&str> = a.layers.iter().map(|(n, _)| n.as_str()).collect();
    for (name, _) in &b.layers {
        if !names.iter().any(|n| n == name) {
            names.push(name);
        }
    }
    for name in names {
        let (va, vb) = (a.layer_self_time(name), b.layer_self_time(name));
        let delta = vb as i64 - va as i64;
        let _ = writeln!(out, "  {name:<10} {va:>10} {vb:>10} {delta:>+10}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_obs::{Recorder as _, SpanGuard, Telemetry};

    /// A hand-built nested session: root [10,30] wraps solve [12,29]
    /// wraps cache [13,16].
    fn nested_jsonl() -> String {
        let mut tele = Telemetry::manual().with_tracing(true);
        tele.set_time(10);
        let root = SpanGuard::begin("served.request", &mut tele);
        tele.set_time(12);
        let solve = SpanGuard::begin("econ.solve", &mut tele);
        tele.set_time(13);
        let lookup = SpanGuard::begin("cache.lookup", &mut tele);
        tele.set_time(16);
        lookup.end(&mut tele);
        tele.set_time(29);
        solve.end(&mut tele);
        tele.set_time(30);
        root.end(&mut tele);
        tele.to_jsonl()
    }

    #[test]
    fn trees_self_times_and_critical_paths_reconstruct() {
        let report = analyze(&nested_jsonl()).unwrap();
        assert_eq!(report.traces.len(), 1);
        assert_eq!(report.spans, 3);
        assert_eq!(report.orphans, 0);
        let tree = &report.traces[0];
        assert_eq!(tree.name(), "served.request");
        assert_eq!(tree.dur(), 20);
        // Telescoping: self times partition the wall duration.
        assert_eq!(tree.self_total(), tree.dur());
        assert_eq!(report.layer_self_time("served"), 3);
        assert_eq!(report.layer_self_time("econ"), 14);
        assert_eq!(report.layer_self_time("cache"), 3);
        let path: Vec<&str> =
            tree.critical_path().iter().map(|&i| tree.spans[i].name.as_str()).collect();
        assert_eq!(path, vec!["served.request", "econ.solve", "cache.lookup"]);
    }

    #[test]
    fn render_summarizes_and_ranks() {
        let report = analyze(&nested_jsonl()).unwrap();
        let text = render(&report, 3);
        assert!(text.contains("completed          1"));
        assert!(text.contains("critical path: served.request > econ.solve > cache.lookup"));
        assert!(text.contains("econ.solve"));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(text, render(&analyze(&nested_jsonl()).unwrap(), 3));
    }

    #[test]
    fn folded_stacks_sum_to_the_layer_totals() {
        let report = analyze(&nested_jsonl()).unwrap();
        let folded = render_folded(&report);
        assert!(folded.contains("served.request 3\n"));
        assert!(folded.contains("served.request;econ.solve 14\n"));
        assert!(folded.contains("served.request;econ.solve;cache.lookup 3\n"));
        let total: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        let layer_total: u64 = report.layers.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, layer_total);
    }

    #[test]
    fn diff_reports_per_layer_deltas() {
        let a = analyze(&nested_jsonl()).unwrap();
        let b = analyze(&nested_jsonl()).unwrap();
        let text = render_diff("before.jsonl", &a, "after.jsonl", &b);
        assert!(text.contains("traces: 1 vs 1"));
        assert!(text.contains("econ"));
        assert!(text.contains("+0"));
    }

    #[test]
    fn unmatched_span_events_count_as_orphans() {
        let mut text = nested_jsonl();
        // A start that never ends, and an end that never started.
        text.push_str(
            "{\"t\":5,\"event\":\"span_start\",\"name\":\"x.y\",\"trace\":99,\"span\":99,\"parent\":0}\n",
        );
        text.push_str(
            "{\"t\":6,\"event\":\"span_end\",\"name\":\"z.w\",\"trace\":98,\"span\":98,\"parent\":0,\"dur\":1}\n",
        );
        let report = analyze(&text).unwrap();
        assert_eq!(report.traces.len(), 1, "the well-formed trace still reconstructs");
        assert_eq!(report.orphans, 2);
    }

    #[test]
    fn malformed_lines_error_with_a_line_number() {
        let err = analyze("{\"t\":1,\"event\":\"span_start\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = analyze("not json\n").unwrap_err();
        assert!(err.contains("line 1: malformed JSONL"), "{err}");
    }

    /// The acceptance criterion: a real traced daemon session
    /// reconstructs into one tree per request whose self times sum to
    /// the trace's virtual wall duration.
    #[test]
    fn daemon_sessions_reconstruct_with_telescoping_self_time() {
        use fap_batch::Parallelism;
        use fap_served::DaemonConfig;

        let specs = serde_json::to_string(&crate::serve::example_specs())
            .expect("spec serialization cannot fail");
        let mut input = String::new();
        for at in [0u64, 100_000, 200_000] {
            input.push_str(&format!("{{\"at\":{at},\"batch\":{specs}}}\n"));
        }
        input.push_str("{\"at\":300000,\"work\":25}\n{\"cmd\":\"shutdown\"}\n");

        let config =
            DaemonConfig { shards: Parallelism::Sequential, ..DaemonConfig::default() };
        let mut tele = Telemetry::manual();
        let mut out = Vec::new();
        crate::run_daemon(input.as_bytes(), &mut out, &config, &mut tele).unwrap();

        let report = analyze(&tele.to_jsonl()).unwrap();
        assert_eq!(report.traces.len(), 4, "one trace per request");
        assert_eq!(report.orphans, 0);
        for tree in &report.traces {
            assert_eq!(tree.name(), "served.request");
            assert_eq!(
                tree.self_total(),
                tree.dur(),
                "self times must partition trace {}'s wall duration",
                tree.trace_id
            );
        }
        // The solver batches put real ticks under the serve layer.
        assert!(report.layer_self_time("serve") > 0);
        assert!(report.layer_self_time("served") > 0);
    }
}
