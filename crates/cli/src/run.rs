//! Executing scenarios: solve, simulate, sweep.

use serde::{Deserialize, Serialize};

use fap_core::{reference, tuning, SingleFileProblem};
use fap_econ::{ResourceDirectedOptimizer, StepSize};
use fap_obs::{NoopRecorder, Recorder};
use fap_queue::{NetworkSimulation, ServiceDistribution, SimReport};
use fap_runtime::{ChaosPlan, ExchangeScheme, SimReport as ChaosReport, SimRun};

use crate::scenario::{Scenario, ScenarioError};

/// The result of `fap solve`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveOutput {
    /// The allocation the decentralized algorithm found.
    pub allocation: Vec<f64>,
    /// Its cost.
    pub cost: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the ε-criterion fired.
    pub converged: bool,
    /// The closed-form reference cost (sanity check).
    pub reference_cost: f64,
    /// `|cost − reference_cost|`.
    pub reference_gap: f64,
}

/// Maps a net-layer error into a scenario error, pointing oversized dense
/// builds at the sparse backend the CLI offers.
pub(crate) fn net_error(e: fap_net::NetError) -> ScenarioError {
    if matches!(e, fap_net::NetError::TooLarge { .. }) {
        ScenarioError::Invalid(format!("{e} (hint: retry with --cost-backend landmark)"))
    } else {
        ScenarioError::Invalid(e.to_string())
    }
}

/// Builds the single-file problem a scenario describes, through the
/// scenario's configured cost backend (dense matrix or landmark oracle).
pub(crate) fn problem_of(scenario: &Scenario) -> Result<SingleFileProblem, ScenarioError> {
    let graph = scenario.topology.build()?;
    match scenario.cost_backend {
        fap_cache::CostBackend::Dense => {
            let costs = graph.shortest_path_matrix().map_err(net_error)?;
            problem_of_with_costs(scenario, &costs)
        }
        fap_cache::CostBackend::Landmark { landmarks, seed } => {
            let oracle =
                fap_net::LandmarkOracle::build(&graph, landmarks, seed).map_err(net_error)?;
            problem_of_with_costs(scenario, &oracle)
        }
    }
}

/// Builds the single-file problem a scenario describes from an
/// already-built cost provider (the cache-backed serve path).
pub(crate) fn problem_of_with_costs(
    scenario: &Scenario,
    costs: &(impl fap_net::CostProvider + ?Sized),
) -> Result<SingleFileProblem, ScenarioError> {
    let pattern = scenario.pattern()?;
    SingleFileProblem::mm1_heterogeneous_with_provider(
        costs,
        &pattern,
        &scenario.service_rates(),
        scenario.k,
    )
    .map_err(|e| ScenarioError::Invalid(e.to_string()))
}

/// Solves a scenario with the decentralized algorithm and cross-checks the
/// closed-form reference.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] if the scenario cannot be built or
/// the solve fails.
pub fn solve(scenario: &Scenario) -> Result<SolveOutput, ScenarioError> {
    self::solve_observed(scenario, &mut NoopRecorder)
}

/// Like [`solve`], recording the optimizer's per-iteration telemetry
/// (`econ.*` counters, gauges and `iter`/`run_end` events) into `recorder`.
/// Virtual time is the iteration counter, so with a manual-clock
/// [`fap_obs::Telemetry`] the emitted stream is deterministic.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_observed(
    scenario: &Scenario,
    recorder: &mut dyn Recorder,
) -> Result<SolveOutput, ScenarioError> {
    let problem = problem_of(scenario)?;
    let n = scenario.topology.node_count();
    let initial = scenario.initial.clone().unwrap_or_else(|| vec![1.0 / n as f64; n]);
    let solution = ResourceDirectedOptimizer::new(StepSize::Fixed(scenario.alpha))
        .with_epsilon(scenario.epsilon)
        .with_max_iterations(1_000_000)
        .run_observed(&problem, &initial, recorder)
        .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
    let exact = reference::solve(&problem).map_err(|e| ScenarioError::Invalid(e.to_string()))?;
    Ok(SolveOutput {
        cost: solution.final_cost(),
        iterations: solution.iterations,
        converged: solution.converged,
        reference_cost: exact.cost,
        reference_gap: (solution.final_cost() - exact.cost).abs(),
        allocation: solution.allocation,
    })
}

/// Solves a scenario and measures the resulting allocation with the
/// discrete-event simulator.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] if the scenario cannot be built or
/// simulated.
pub fn simulate(scenario: &Scenario) -> Result<(SolveOutput, SimReport), ScenarioError> {
    let output = solve(scenario)?;
    let graph = scenario.topology.build()?;
    let costs = graph.shortest_path_matrix().map_err(net_error)?;
    let services: Vec<ServiceDistribution> = scenario
        .service_rates()
        .iter()
        .map(|&mu| ServiceDistribution::exponential(mu))
        .collect::<Result<_, _>>()
        .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
    let report = NetworkSimulation::with_service_per_node(
        output.allocation.clone(),
        scenario.pattern()?,
        costs,
        services,
    )
    .map_err(|e| ScenarioError::Invalid(e.to_string()))?
    .with_duration(scenario.sim_duration)
    .with_seed(scenario.sim_seed)
    .run()
    .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
    Ok((output, report))
}

/// Runs the decentralized protocol for a scenario under a seeded
/// fault-injection plan (`fap sim`). A default [`ChaosPlan`] is
/// fault-free, in which case the result is bit-identical to the ideal
/// round executor.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] if the scenario or the plan cannot
/// be built, or the run gets stuck.
pub fn chaos_sim(scenario: &Scenario, plan: ChaosPlan) -> Result<ChaosReport, ScenarioError> {
    chaos_sim_observed(scenario, plan, &mut NoopRecorder)
}

/// Like [`chaos_sim`], recording the run's telemetry (`sim.*` fault
/// counters, the round-latency histogram and the per-round event stream)
/// into `recorder`. All measurements are on virtual (round) time, so for a
/// fixed scenario and plan the stream is byte-reproducible: two runs with
/// the same seed serialize to identical JSONL.
///
/// # Errors
///
/// Same conditions as [`chaos_sim`].
pub fn chaos_sim_observed(
    scenario: &Scenario,
    plan: ChaosPlan,
    recorder: &mut dyn Recorder,
) -> Result<ChaosReport, ScenarioError> {
    let problem = problem_of(scenario)?;
    let n = scenario.topology.node_count();
    let initial = scenario.initial.clone().unwrap_or_else(|| vec![1.0 / n as f64; n]);
    SimRun::new(&problem, ExchangeScheme::Broadcast, scenario.alpha)
        .with_epsilon(scenario.epsilon)
        .with_max_rounds(1_000_000)
        .with_chaos(plan)
        .run_observed(&initial, recorder)
        .map_err(|e| ScenarioError::Invalid(e.to_string()))
}

/// Sweeps the delay weight `k` over `candidates` (the §8.2 trade-off),
/// using the scenario's network and workload. Requires a uniform service
/// rate.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] for heterogeneous service rates or a
/// bad candidate list.
pub fn sweep_k(
    scenario: &Scenario,
    candidates: &[f64],
) -> Result<Vec<tuning::KSweepPoint>, ScenarioError> {
    let rates = scenario.service_rates();
    let mu = rates[0];
    if rates.iter().any(|m| (m - mu).abs() > 1e-12) {
        return Err(ScenarioError::Invalid(
            "sweep-k requires a uniform service rate".into(),
        ));
    }
    let graph = scenario.topology.build()?;
    let costs = graph.shortest_path_matrix().map_err(net_error)?;
    tuning::k_sweep(&costs, &scenario.pattern()?, mu, candidates)
        .map_err(|e| ScenarioError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solving_the_example_reproduces_the_paper() {
        let output = solve(&Scenario::example()).unwrap();
        assert!(output.converged);
        assert!((output.cost - 1.8).abs() < 1e-4);
        assert!(output.reference_gap < 1e-4);
        for x in &output.allocation {
            assert!((x - 0.25).abs() < 1e-3);
        }
    }

    #[test]
    fn simulation_tracks_the_model() {
        let mut scenario = Scenario::example();
        scenario.sim_duration = 50_000.0;
        let (output, report) = simulate(&scenario).unwrap();
        let measured = report.mean_total_cost(scenario.k);
        assert!((measured - output.cost).abs() / output.cost < 0.05);
    }

    #[test]
    fn sweep_k_runs_on_uniform_rates_only() {
        let scenario = Scenario::example();
        let sweep = sweep_k(&scenario, &[0.5, 2.0]).unwrap();
        assert_eq!(sweep.len(), 2);
        assert!(sweep[1].mean_delay <= sweep[0].mean_delay + 1e-9);

        let mut het = Scenario::example();
        het.mus = vec![1.5, 1.5, 1.5, 2.0];
        assert!(sweep_k(&het, &[1.0]).is_err());
    }

    #[test]
    fn chaos_sim_without_faults_matches_solve() {
        let scenario = Scenario::example();
        let report = chaos_sim(&scenario, ChaosPlan::new(0)).unwrap();
        assert!(report.converged);
        let ideal = solve(&scenario).unwrap();
        assert!((report.final_cost() - ideal.cost).abs() < 1e-9);
        assert_eq!(report.faults.dropped, 0);
    }

    #[test]
    fn chaos_sim_with_faults_still_converges_on_the_example() {
        let scenario = Scenario::example();
        let plan = ChaosPlan::new(11)
            .with_drop(0.2)
            .with_staleness_bound(2)
            .with_retries(1);
        let report = chaos_sim(&scenario, plan).unwrap();
        assert!(report.converged);
        assert!(report.faults.dropped > 0);
    }

    #[test]
    fn observed_solve_matches_and_records_iterations() {
        let scenario = Scenario::example();
        let plain = solve(&scenario).unwrap();
        let mut telemetry = fap_obs::Telemetry::manual();
        let observed = solve_observed(&scenario, &mut telemetry).unwrap();
        assert_eq!(plain, observed, "recording must not perturb the solve");
        assert_eq!(
            telemetry.registry().counter("econ.iterations"),
            (observed.iterations + 1) as u64
        );
        assert_eq!(telemetry.events().last().unwrap().name(), "run_end");
    }

    #[test]
    fn observed_chaos_sim_exports_reproducible_jsonl() {
        let scenario = Scenario::example();
        let plan = ChaosPlan::new(11).with_drop(0.2).with_staleness_bound(2).with_retries(1);
        let record = |plan: ChaosPlan| {
            let mut telemetry = fap_obs::Telemetry::manual();
            let report = chaos_sim_observed(&scenario, plan, &mut telemetry).unwrap();
            (report, telemetry.to_jsonl())
        };
        let (report_a, jsonl_a) = record(plan.clone());
        let (report_b, jsonl_b) = record(plan);
        assert_eq!(report_a, report_b);
        assert_eq!(jsonl_a, jsonl_b, "seeded sim telemetry must be byte-identical");
        assert!(jsonl_a.contains("\"counter\":\"sim.dropped\""));
        // The plain path is the observed path with a no-op recorder.
        let plain =
            chaos_sim(&scenario, ChaosPlan::new(11).with_drop(0.2).with_staleness_bound(2).with_retries(1))
                .unwrap();
        assert_eq!(plain, report_a);
    }

    #[test]
    fn landmark_backend_allocation_is_near_optimal_on_the_true_costs() {
        // The sparse solve optimizes hub-estimated access costs, so its
        // *reported* cost is not comparable to the dense one; the quality
        // metric is the sparse allocation evaluated on the exact dense
        // objective, which on a symmetric 16-ring lands within a few
        // percent of the dense optimum.
        let n = 16;
        let base = Scenario {
            topology: crate::scenario::Topology::Ring { n, link_cost: 1.0 },
            lambdas: vec![1.0 / n as f64; n],
            mus: vec![1.5],
            k: 1.0,
            alpha: 0.1,
            epsilon: 1e-6,
            initial: None,
            sim_duration: 1.0,
            sim_seed: 0,
            cost_backend: fap_cache::CostBackend::Dense,
        };
        let mut scenario = base.clone();
        scenario.cost_backend =
            fap_cache::CostBackend::Landmark { landmarks: 4, seed: 1 };
        let sparse = solve(&scenario).unwrap();
        assert!(sparse.converged);
        let dense = solve(&base).unwrap();
        let dense_problem = problem_of(&base).unwrap();
        let sparse_on_true = dense_problem.cost_of(&sparse.allocation).unwrap();
        assert!(
            (sparse_on_true - dense.cost) / dense.cost < 0.05,
            "sparse allocation costs {sparse_on_true} on the true objective vs optimal {}",
            dense.cost
        );
    }

    #[test]
    fn oversized_dense_builds_hint_at_the_sparse_backend() {
        // 8200² elements exceed the default dense budget (2²⁶); the guard
        // fires before any allocation, so this is fast, and the CLI error
        // names the escape hatch.
        let n = 8200;
        let scenario = Scenario {
            topology: crate::scenario::Topology::Ring { n, link_cost: 1.0 },
            lambdas: vec![1.0 / n as f64; n],
            mus: vec![1.5],
            k: 1.0,
            alpha: 0.1,
            epsilon: 1e-6,
            initial: None,
            sim_duration: 1.0,
            sim_seed: 0,
            cost_backend: fap_cache::CostBackend::Dense,
        };
        let err = solve(&scenario).unwrap_err().to_string();
        assert!(err.contains("--cost-backend landmark"), "{err}");
    }

    #[test]
    fn heterogeneous_scenarios_solve() {
        let json = r#"{
            "topology": {"type": "star", "n": 4, "link_cost": 1.0},
            "lambdas": [0.4, 0.2, 0.2, 0.2],
            "mus": [3.0, 1.2, 1.2, 1.2],
            "k": 1.0,
            "alpha": 0.05
        }"#;
        let scenario = Scenario::from_json(json).unwrap();
        let output = solve(&scenario).unwrap();
        assert!(output.converged);
        assert!(output.allocation[0] > output.allocation[1], "fast hub should hold more");
    }
}
