//! The `fap` command-line tool.
//!
//! ```text
//! fap solve <scenario.json>              solve and print the allocation
//! fap run <scenario.json>                alias for solve
//! fap simulate <scenario.json>           solve, then measure with the DES
//! fap sim <scenario.json> [chaos.json]   run the protocol under faults
//! fap serve <requests.json> [--shards N] [--warm-start] [--oracle-update]
//!                                        batch-solve a request list, sharded
//! fap served [--servers C] [--warm MODE] [--admission-bound W] ...
//!                                        persistent daemon (JSONL on stdin,
//!                                        or --socket <path> on Unix; a
//!                                        {"cmd":"drift"} line runs the
//!                                        tracking loop in-session)
//! fap track [--drift-scenario S] ...     online reallocation under drift:
//!                                        per-epoch regret vs clairvoyant
//!                                        and static baselines
//! fap serve-example                      print a template request list
//! fap report <metrics.jsonl>             summarize an exported metrics file
//! fap report --json <metrics.jsonl>      the summary as one JSON object
//! fap report --diff <a.jsonl> <b.jsonl>  compare two metrics files
//! fap trace <metrics.jsonl> [--top k]    span trees, critical paths, self time
//! fap trace --folded <metrics.jsonl>     folded stacks for flamegraph.pl
//! fap trace --diff <a.jsonl> <b.jsonl>   per-layer self-time deltas
//! fap sweep-k <scenario.json> <k,k,...>  the §8.2 k trade-off
//! fap bench-scale [out.json]             seq-vs-parallel scaling sweep
//! fap bench-scale --check [committed]    re-run and verify determinism
//! fap bench-serve [out.json]             sequential-vs-sharded serving sweep
//! fap bench-serve --check [committed]    re-run and verify determinism
//! fap bench-drift [out.json]             drift-tracking regret/determinism sweep
//! fap bench-drift --check [committed]    re-run and verify the regret gate
//! fap example                            print a template scenario
//! fap chaos-example                      print a template fault plan
//! ```
//!
//! `solve`, `run`, `sim`, `serve`, `served` and `track` accept
//! `--metrics-out <path.jsonl>`
//! to export the run's telemetry and `--metrics-summary` to print the
//! metrics table. By default the export is buffered in memory and written
//! at the end; `--metrics-flush-every <N>` streams it instead, flushing to
//! the file every `N` events (bounded memory on long runs, byte-identical
//! output). Telemetry runs on virtual time (iterations/rounds), so two
//! runs of the same seeded scenario export byte-identical JSONL.

use std::fs::File;
use std::io::BufWriter;
use std::path::Path;
use std::process::ExitCode;

use fap_cli::{chaos_sim_observed, simulate, solve_observed, summarize, sweep_k, Scenario};
use fap_obs::{JsonlSink, Recorder, Telemetry};
use fap_runtime::ChaosPlan;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fap solve <scenario.json> [--metrics-out <path.jsonl>] [--metrics-summary]
  fap run   <scenario.json> [--metrics-out <path.jsonl>] [--metrics-summary]
  fap simulate <scenario.json>
  fap sim <scenario.json> [chaos.json] [--metrics-out <path.jsonl>] [--metrics-summary]
  fap serve <requests.json> [--shards <n>] [--warm-start] [--oracle-update] [--metrics-out <path.jsonl>] [--metrics-summary]
  fap served [--shards <n>] [--servers <c>] [--warm off|batch|session]
             [--admission-bound <ticks>] [--warmup <n>] [--admission-window <n>]
             [--cache-bytes <n>] [--wall-clock] [--oracle-update]
             [--socket <path>] [metrics flags]
  fap track [--drift-scenario diurnal|flash-crowd|step|node-churn] [--nodes <n>]
            [--epochs <n>] [--seed <s>] [--hysteresis <eta>] [--smoothing <mu>]
            [--migration-bandwidth <b>] [--threads <n>] [--json] [metrics flags]
  fap serve-example
  fap report <metrics.jsonl>
  fap report --json <metrics.jsonl>
  fap report --diff <a.jsonl> <b.jsonl>
  fap trace <metrics.jsonl> [--top <k>]
  fap trace --folded <metrics.jsonl>
  fap trace --diff <a.jsonl> <b.jsonl>
  fap sweep-k <scenario.json> <k1,k2,...>
  fap bench-scale [out.json] [--hier-levels <l>] [--sparse-max-n <n>]
  fap bench-scale --check [committed.json] [--sparse-max-n <n>]
  fap bench-serve [out.json]
  fap bench-serve --check [committed.json]
  fap bench-drift [out.json]
  fap bench-drift --check [committed.json]
  fap example
  fap chaos-example

metrics flags also accept --metrics-flush-every <n> to stream the export
(requires --metrics-out; flushes every n events instead of buffering)

solve, run, sim and serve also accept cost-substrate flags:
  --cost-backend dense|landmark   exact n^2 matrix (default) or the sparse
                                  landmark oracle (scales past the dense
                                  element budget)
  --landmarks <k>                 landmark count K (implies landmark backend)
  --landmark-seed <s>             farthest-point selection seed

serve and served also accept --oracle-update: repair cached landmark
oracles across small topology edits (edge re-price, node join/leave)
instead of rebuilding them";

/// Telemetry flags shared by `solve`/`run`/`sim`/`serve`.
#[derive(Debug, Default)]
struct MetricsOptions {
    out: Option<String>,
    summary: bool,
    flush_every: Option<usize>,
}

/// The recorder a command writes into: buffered [`Telemetry`] by default,
/// or a streaming [`JsonlSink`] under `--metrics-flush-every`.
enum MetricsSink {
    Buffered(Telemetry),
    Streaming(JsonlSink<BufWriter<File>>),
}

impl MetricsSink {
    fn recorder(&mut self) -> &mut dyn Recorder {
        match self {
            MetricsSink::Buffered(telemetry) => telemetry,
            MetricsSink::Streaming(sink) => sink,
        }
    }
}

impl MetricsOptions {
    fn requested(&self) -> bool {
        self.out.is_some() || self.summary || self.flush_every.is_some()
    }

    /// Opens the recorder the flags ask for. The streaming sink opens its
    /// output file up front, so a bad path fails before the run starts.
    fn sink(&self) -> Result<MetricsSink, String> {
        match self.flush_every {
            Some(n) => {
                let path = self
                    .out
                    .as_ref()
                    .ok_or("--metrics-flush-every requires --metrics-out")?;
                let file =
                    File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
                Ok(MetricsSink::Streaming(JsonlSink::new(BufWriter::new(file), n)))
            }
            None => Ok(MetricsSink::Buffered(Telemetry::manual())),
        }
    }

    /// Exports and/or prints the recorded telemetry as the flags
    /// requested. Both paths produce byte-identical JSONL; the streaming
    /// one has already written its event lines and only appends the
    /// registry trailer here.
    fn finish(&self, sink: MetricsSink) -> Result<(), String> {
        match sink {
            MetricsSink::Buffered(telemetry) => {
                if let Some(path) = &self.out {
                    std::fs::write(path, telemetry.to_jsonl())
                        .map_err(|e| format!("writing {path}: {e}"))?;
                }
                if self.summary {
                    print!("{}", telemetry.summary());
                }
            }
            MetricsSink::Streaming(streaming) => {
                if self.summary {
                    print!("{}", streaming.summary());
                }
                let path = self.out.as_deref().unwrap_or_default();
                streaming.finish().map_err(|e| format!("writing {path}: {e}"))?;
            }
        }
        Ok(())
    }
}

/// Splits `--cost-backend` / `--landmarks` / `--landmark-seed` out of the
/// raw argument list. `--landmarks`/`--landmark-seed` imply the landmark
/// backend; combining them with an explicit `--cost-backend dense` is an
/// error.
fn extract_backend_flags(
    args: &[String],
) -> Result<(Vec<String>, Option<fap_cache::CostBackend>), String> {
    let mut positional = Vec::new();
    let mut kind: Option<String> = None;
    let mut landmarks: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--cost-backend" => {
                let k = iter.next().ok_or("--cost-backend requires dense|landmark")?;
                kind = Some(k.clone());
            }
            "--landmarks" => {
                let k = iter.next().ok_or("--landmarks requires a count")?;
                let k: usize =
                    k.parse().map_err(|e| format!("bad landmark count '{k}': {e}"))?;
                if k == 0 {
                    return Err("--landmarks must be at least 1".into());
                }
                landmarks = Some(k);
            }
            "--landmark-seed" => {
                let s = iter.next().ok_or("--landmark-seed requires a seed")?;
                seed = Some(s.parse().map_err(|e| format!("bad landmark seed '{s}': {e}"))?);
            }
            _ => positional.push(arg.clone()),
        }
    }
    let sparse = || fap_cache::CostBackend::Landmark {
        landmarks: landmarks.unwrap_or(fap_cache::DEFAULT_LANDMARKS),
        seed: seed.unwrap_or(fap_cache::DEFAULT_LANDMARK_SEED),
    };
    let backend = match kind.as_deref() {
        None if landmarks.is_some() || seed.is_some() => Some(sparse()),
        None => None,
        Some("landmark") => Some(sparse()),
        Some("dense") => {
            if landmarks.is_some() || seed.is_some() {
                return Err("--landmarks/--landmark-seed require the landmark backend".into());
            }
            Some(fap_cache::CostBackend::Dense)
        }
        Some(other) => {
            return Err(format!("unknown cost backend '{other}' (expected dense|landmark)"))
        }
    };
    Ok((positional, backend))
}

/// Splits `--metrics-out <path>` / `--metrics-summary` /
/// `--metrics-flush-every <n>` out of the raw argument list, leaving the
/// positional arguments.
fn extract_metrics_flags(args: &[String]) -> Result<(Vec<String>, MetricsOptions), String> {
    let mut positional = Vec::new();
    let mut options = MetricsOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--metrics-out" => {
                let path = iter.next().ok_or("--metrics-out requires a path")?;
                options.out = Some(path.clone());
            }
            "--metrics-summary" => options.summary = true,
            "--metrics-flush-every" => {
                let n = iter.next().ok_or("--metrics-flush-every requires a count")?;
                let n: usize = n
                    .parse()
                    .map_err(|e| format!("bad flush interval '{n}': {e}"))?;
                options.flush_every = Some(n);
            }
            _ => positional.push(arg.clone()),
        }
    }
    Ok((positional, options))
}

fn run(args: &[String]) -> Result<(), String> {
    let (args, metrics) = extract_metrics_flags(args)?;
    if metrics.requested()
        && !matches!(
            args.first().map(String::as_str),
            Some("solve" | "run" | "sim" | "serve" | "served" | "track")
        )
    {
        return Err(
            "--metrics-out/--metrics-summary/--metrics-flush-every only apply to solve, run, sim, serve, served and track"
                .into(),
        );
    }
    let (args, backend) = extract_backend_flags(&args)?;
    if backend.is_some()
        && !matches!(
            args.first().map(String::as_str),
            Some("solve" | "run" | "sim" | "serve")
        )
    {
        return Err(
            "--cost-backend/--landmarks/--landmark-seed only apply to solve, run, sim and serve"
                .into(),
        );
    }
    match &args[..] {
        [] => Err("no command given".into()),
        [cmd, rest @ ..] => match (cmd.as_str(), rest) {
            ("example", []) => {
                println!("{}", Scenario::example().to_json());
                Ok(())
            }
            ("solve" | "run", [path]) => {
                let mut scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                if let Some(backend) = backend {
                    scenario.cost_backend = backend;
                }
                let mut sink = metrics.sink()?;
                let output =
                    solve_observed(&scenario, sink.recorder()).map_err(|e| e.to_string())?;
                metrics.finish(sink)?;
                println!("converged:  {} ({} iterations)", output.converged, output.iterations);
                println!("cost:       {:.6}", output.cost);
                println!("reference:  {:.6} (gap {:.2e})", output.reference_cost, output.reference_gap);
                println!("allocation:");
                for (i, x) in output.allocation.iter().enumerate() {
                    println!("  node {i:>3}: {x:.6}");
                }
                Ok(())
            }
            ("simulate", [path]) => {
                let scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                let (output, report) = simulate(&scenario).map_err(|e| e.to_string())?;
                println!("model cost:     {:.6}", output.cost);
                println!(
                    "measured cost:  {:.6} over {} accesses",
                    report.mean_total_cost(scenario.k),
                    report.accesses_measured
                );
                println!(
                    "mean response:  {:.6} ± {:.6}",
                    report.response.mean(),
                    report.response.ci95_half_width()
                );
                println!("mean comm cost: {:.6}", report.comm_cost.mean());
                println!("utilization per node:");
                for (i, rho) in report.per_node_utilization.iter().enumerate() {
                    println!("  node {i:>3}: {rho:.4}");
                }
                Ok(())
            }
            ("chaos-example", []) => {
                let plan = ChaosPlan::new(42)
                    .with_drop(0.1)
                    .with_delay(0.2, 2)
                    .with_staleness_bound(2)
                    .with_retries(1);
                let json = serde_json::to_string_pretty(&plan)
                    .map_err(|e| e.to_string())?;
                println!("{json}");
                Ok(())
            }
            ("sim", [path, rest @ ..]) if rest.len() <= 1 => {
                let mut scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                if let Some(backend) = backend {
                    scenario.cost_backend = backend;
                }
                let plan = match rest {
                    [chaos_path] => {
                        let text = std::fs::read_to_string(chaos_path)
                            .map_err(|e| format!("reading {chaos_path}: {e}"))?;
                        serde_json::from_str::<ChaosPlan>(&text)
                            .map_err(|e| format!("parsing {chaos_path}: {e}"))?
                    }
                    _ => ChaosPlan::new(0),
                };
                let mut sink = metrics.sink()?;
                let report = chaos_sim_observed(&scenario, plan, sink.recorder())
                    .map_err(|e| e.to_string())?;
                metrics.finish(sink)?;
                let json = serde_json::to_string_pretty(&report)
                    .map_err(|e| e.to_string())?;
                println!("{json}");
                Ok(())
            }
            ("serve", rest) => {
                let mut path: Option<&String> = None;
                let mut shards = fap_batch::Parallelism::Auto;
                let mut warm_start = false;
                let mut oracle_update = false;
                let mut iter = rest.iter();
                while let Some(arg) = iter.next() {
                    match arg.as_str() {
                        "--shards" => {
                            let n = iter.next().ok_or("--shards requires a count")?;
                            let n: usize = n
                                .parse()
                                .map_err(|e| format!("bad shard count '{n}': {e}"))?;
                            if n == 0 {
                                return Err("--shards must be at least 1".into());
                            }
                            shards = fap_batch::Parallelism::Fixed(n);
                        }
                        "--warm-start" => warm_start = true,
                        "--oracle-update" => oracle_update = true,
                        _ if path.is_none() => path = Some(arg),
                        other => return Err(format!("unexpected argument '{other}'")),
                    }
                }
                let path = path.ok_or("serve requires a request-list file")?;
                let mut specs =
                    fap_cli::load_specs(Path::new(path)).map_err(|e| e.to_string())?;
                if let Some(backend) = backend {
                    for spec in &mut specs {
                        spec.set_cost_backend(backend);
                    }
                }
                let mut sink = metrics.sink()?;
                let output = fap_cli::serve::serve_specs_configured(
                    &specs,
                    shards,
                    warm_start,
                    oracle_update,
                    sink.recorder(),
                )
                .map_err(|e| e.to_string())?;
                print!("{}", fap_cli::serve::render_output(&specs, &output));
                metrics.finish(sink)?;
                Ok(())
            }
            ("served", rest) => {
                let mut config = fap_served::DaemonConfig::default();
                let mut socket: Option<String> = None;
                let mut iter = rest.iter();
                while let Some(arg) = iter.next() {
                    match arg.as_str() {
                        "--shards" => {
                            let n = iter.next().ok_or("--shards requires a count")?;
                            let n: usize = n
                                .parse()
                                .map_err(|e| format!("bad shard count '{n}': {e}"))?;
                            if n == 0 {
                                return Err("--shards must be at least 1".into());
                            }
                            config.shards = fap_batch::Parallelism::Fixed(n);
                        }
                        "--servers" => {
                            let c = iter.next().ok_or("--servers requires a count")?;
                            let c: u32 = c
                                .parse()
                                .map_err(|e| format!("bad server count '{c}': {e}"))?;
                            config.servers = c;
                        }
                        "--warm" => {
                            let mode = iter.next().ok_or("--warm requires off|batch|session")?;
                            config.warm = fap_served::WarmMode::parse(mode)?;
                        }
                        "--admission-bound" => {
                            let w = iter.next().ok_or("--admission-bound requires a tick count")?;
                            let w: f64 = w
                                .parse()
                                .map_err(|e| format!("bad admission bound '{w}': {e}"))?;
                            if w.is_nan() || w < 0.0 {
                                return Err("--admission-bound must be non-negative".into());
                            }
                            config.admission_bound = Some(w);
                        }
                        "--warmup" => {
                            let n = iter.next().ok_or("--warmup requires a sample count")?;
                            config.admission_warmup = n
                                .parse()
                                .map_err(|e| format!("bad warmup '{n}': {e}"))?;
                        }
                        "--admission-window" => {
                            let n =
                                iter.next().ok_or("--admission-window requires a sample count")?;
                            let n: usize = n
                                .parse()
                                .map_err(|e| format!("bad admission window '{n}': {e}"))?;
                            if n == 0 {
                                return Err("--admission-window must be at least 1".into());
                            }
                            config.admission_window = n;
                        }
                        "--cache-bytes" => {
                            let n = iter.next().ok_or("--cache-bytes requires a byte count")?;
                            let n: u64 = n
                                .parse()
                                .map_err(|e| format!("bad cache budget '{n}': {e}"))?;
                            config.cache_bytes = Some(n);
                        }
                        "--wall-clock" => config.wall_clock = true,
                        "--oracle-update" => config.oracle_update = true,
                        "--socket" => {
                            let path = iter.next().ok_or("--socket requires a path")?;
                            socket = Some(path.clone());
                        }
                        other => return Err(format!("unexpected argument '{other}'")),
                    }
                }
                let mut sink = metrics.sink()?;
                match socket {
                    Some(path) => {
                        #[cfg(unix)]
                        {
                            fap_cli::served::run_socket(
                                Path::new(&path),
                                &config,
                                sink.recorder(),
                            )?;
                        }
                        #[cfg(not(unix))]
                        {
                            let _ = path;
                            return Err("--socket requires a Unix platform".into());
                        }
                    }
                    None => {
                        let stdin = std::io::stdin();
                        let stdout = std::io::stdout();
                        let mut out = BufWriter::new(stdout.lock());
                        fap_cli::run_daemon(
                            stdin.lock(),
                            &mut out,
                            &config,
                            sink.recorder(),
                        )?;
                        use std::io::Write as _;
                        out.flush().map_err(|e| e.to_string())?;
                    }
                }
                metrics.finish(sink)?;
                Ok(())
            }
            ("track", rest) => {
                let options = fap_cli::parse_track_args(rest)?;
                let mut sink = metrics.sink()?;
                let report = fap_cli::run_track(&options, sink.recorder())?;
                if options.json {
                    let json =
                        serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                    println!("{json}");
                } else {
                    print!("{}", fap_cli::render_track(&options, &report));
                }
                metrics.finish(sink)?;
                Ok(())
            }
            ("serve-example", []) => {
                println!("{}", fap_cli::serve::example_specs_json());
                Ok(())
            }
            ("report", [path]) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {path}: {e}"))?;
                let summary = summarize(&text).map_err(|e| format!("{path}: {e}"))?;
                print!("{}", fap_cli::render(&summary));
                Ok(())
            }
            ("report", [flag, path]) if flag == "--json" => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {path}: {e}"))?;
                let summary = summarize(&text).map_err(|e| format!("{path}: {e}"))?;
                print!("{}", fap_cli::render_json(&summary));
                Ok(())
            }
            ("report", [flag, path_a, path_b]) if flag == "--diff" => {
                let load = |path: &String| -> Result<fap_cli::ReportSummary, String> {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("reading {path}: {e}"))?;
                    summarize(&text).map_err(|e| format!("{path}: {e}"))
                };
                let (a, b) = (load(path_a)?, load(path_b)?);
                print!("{}", fap_cli::render_diff(path_a, &a, path_b, &b));
                Ok(())
            }
            ("trace", rest) if !rest.is_empty() => {
                let mut paths: Vec<&String> = Vec::new();
                let mut folded = false;
                let mut diff = false;
                let mut top = 3usize;
                let mut iter = rest.iter();
                while let Some(arg) = iter.next() {
                    match arg.as_str() {
                        "--folded" => folded = true,
                        "--diff" => diff = true,
                        "--top" => {
                            let n = iter.next().ok_or("--top requires a count")?;
                            top = n.parse().map_err(|e| format!("bad top count '{n}': {e}"))?;
                            if top == 0 {
                                return Err("--top must be at least 1".into());
                            }
                        }
                        other if other.starts_with("--") => {
                            return Err(format!("unexpected argument '{other}'"))
                        }
                        _ => paths.push(arg),
                    }
                }
                let load = |path: &String| -> Result<fap_cli::TraceReport, String> {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("reading {path}: {e}"))?;
                    fap_cli::trace::analyze(&text).map_err(|e| format!("{path}: {e}"))
                };
                match (diff, folded, &paths[..]) {
                    (true, false, [a, b]) => {
                        print!("{}", fap_cli::trace::render_diff(a, &load(a)?, b, &load(b)?));
                    }
                    (true, _, _) => {
                        return Err("trace --diff takes exactly two metrics files".into())
                    }
                    (false, true, [path]) => {
                        print!("{}", fap_cli::trace::render_folded(&load(path)?));
                    }
                    (false, false, [path]) => {
                        print!("{}", fap_cli::trace::render(&load(path)?, top));
                    }
                    _ => return Err("trace takes exactly one metrics file".into()),
                }
                Ok(())
            }
            ("bench-scale", rest) => {
                let mut check = false;
                let mut hier_levels: Option<usize> = None;
                let mut sparse_max_n: Option<usize> = None;
                let mut path: Option<&String> = None;
                let mut iter = rest.iter();
                while let Some(arg) = iter.next() {
                    match arg.as_str() {
                        "--check" => check = true,
                        "--hier-levels" => {
                            let l = iter.next().ok_or("--hier-levels requires a depth")?;
                            let l: usize =
                                l.parse().map_err(|e| format!("bad depth '{l}': {e}"))?;
                            if l == 0 {
                                return Err("--hier-levels must be at least 1".into());
                            }
                            hier_levels = Some(l);
                        }
                        "--sparse-max-n" => {
                            let n =
                                iter.next().ok_or("--sparse-max-n requires a node count")?;
                            sparse_max_n = Some(
                                n.parse().map_err(|e| format!("bad node count '{n}': {e}"))?,
                            );
                        }
                        _ if path.is_none() && !arg.starts_with("--") => path = Some(arg),
                        other => return Err(format!("unexpected argument '{other}'")),
                    }
                }
                if check {
                    let path = path.map_or("BENCH_scale.json", String::as_str);
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("reading {path}: {e}"))?;
                    let mut committed: fap_bench::scale::ScaleReport = serde_json::from_str(
                        &text,
                    )
                    .map_err(|e| format!("parsing {path}: {e}"))?;
                    // A smoke check bounds the rerun's wall clock by
                    // truncating the sparse sweep; the compared prefix
                    // keeps its full hard gates.
                    if let Some(cap) = sparse_max_n {
                        committed.sparse_ns.retain(|&n| n <= cap);
                        committed.sparse_points.retain(|p| p.n <= cap);
                    }
                    let fresh = fap_bench::scale::bench_scale_configured(
                        &committed.ns,
                        &committed.ms,
                        &committed.sparse_ns,
                        committed.iterations,
                        fap_batch::Parallelism::Auto,
                        hier_levels,
                    );
                    let outcome = fap_bench::scale::check_against(&committed, &fresh, 1.5);
                    for advisory in &outcome.advisories {
                        println!("advisory: {advisory}");
                    }
                    return if outcome.is_pass() {
                        println!(
                            "bench-scale check passed: {} dense + {} sparse points verified against {path}",
                            committed.points.len(),
                            committed.sparse_points.len()
                        );
                        Ok(())
                    } else {
                        Err(format!(
                            "bench-scale check failed:\n  {}",
                            outcome.hard_failures.join("\n  ")
                        ))
                    };
                }
                let out = path.map_or("BENCH_scale.json", String::as_str);
                let mut sparse_ns: Vec<usize> =
                    vec![64, 256, 1024, 4096, 16384, 65536, 131072, 262144, 524288, 1048576];
                if let Some(cap) = sparse_max_n {
                    sparse_ns.retain(|&n| n <= cap);
                }
                let report = fap_bench::scale::bench_scale_configured(
                    &[64, 256, 1024],
                    &[1, 16, 128],
                    &sparse_ns,
                    25,
                    fap_batch::Parallelism::Auto,
                    hier_levels,
                );
                let json =
                    serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                std::fs::write(out, format!("{json}\n"))
                    .map_err(|e| format!("writing {out}: {e}"))?;
                println!(
                    "{} host CPUs, {} workers; wrote {} dense + {} sparse points to {out}",
                    report.host_threads,
                    report.threads,
                    report.points.len(),
                    report.sparse_points.len()
                );
                for p in &report.points {
                    println!(
                        "  {:<10} N={:<5} M={:<4} seq {:>9.2} ms  par {:>9.2} ms  speedup {:>5.2}x",
                        p.kind, p.n, p.m, p.sequential_ms, p.parallel_ms, p.speedup
                    );
                }
                for p in &report.sparse_points {
                    let gap = p.gap.map_or("      n/a".into(), |g| format!("{:>8.4}%", g * 100.0));
                    let update = 100.0 * p.update_work as f64 / p.rebuild_work.max(1) as f64;
                    println!(
                        "  sparse     N={:<7} K={:<3} L={} build {:>9.2} ms  solve {:>9.2} ms  gap {gap}  {:>6.1} MiB  upd {:>6.3}% of rebuild",
                        p.n, p.landmarks, p.levels, p.build_ms, p.solve_ms,
                        p.provider_bytes as f64 / (1 << 20) as f64, update
                    );
                }
                Ok(())
            }
            ("bench-serve", [first, rest @ ..]) if first == "--check" && rest.len() <= 1 => {
                let path = rest.first().map_or("BENCH_serve.json", String::as_str);
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {path}: {e}"))?;
                let committed: fap_bench::serve::ServeReport =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                let fresh = fap_bench::serve::bench_serve(
                    &committed.batch_sizes,
                    &committed.shard_counts,
                );
                let outcome = fap_bench::serve::check_against(&committed, &fresh, 1.5);
                for advisory in &outcome.advisories {
                    println!("advisory: {advisory}");
                }
                if outcome.is_pass() {
                    println!(
                        "bench-serve check passed: {} points bit-identical to {path}",
                        committed.points.len()
                    );
                    Ok(())
                } else {
                    Err(format!(
                        "bench-serve check failed:\n  {}",
                        outcome.hard_failures.join("\n  ")
                    ))
                }
            }
            ("bench-serve", rest) if rest.len() <= 1 => {
                let out = rest.first().map_or("BENCH_serve.json", String::as_str);
                let report = fap_bench::serve::bench_serve(&[12, 48, 192], &[1, 2, 4, 8]);
                let json =
                    serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                std::fs::write(out, format!("{json}\n"))
                    .map_err(|e| format!("writing {out}: {e}"))?;
                println!(
                    "{} threads; wrote {} points to {out}",
                    report.threads,
                    report.points.len()
                );
                for p in &report.points {
                    println!(
                        "  requests={:<5} shards={:<3} seq {:>9.2} ms  sharded {:>9.2} ms  speedup {:>5.2}x  steals {:>4}",
                        p.requests, p.shards, p.sequential_ms, p.sharded_ms, p.speedup, p.steals
                    );
                }
                println!("cost-matrix cache (off vs on):");
                for c in &report.cache_points {
                    println!(
                        "  requests={:<5} cold {:>8.3} ms  cached {:>8.3} ms  speedup {:>5.2}x  {} hits / {} misses",
                        c.requests, c.build_cold_ms, c.build_cached_ms, c.speedup, c.hits, c.misses
                    );
                }
                println!("warm starts (perturbed workload):");
                for w in &report.warm_points {
                    println!(
                        "  requests={:<5} cold {:>8} iters  warm {:>8} iters  {} seeded, {} iters saved",
                        w.requests, w.cold_iterations, w.warm_iterations, w.warm_starts, w.iters_saved
                    );
                }
                Ok(())
            }
            ("bench-drift", [first, rest @ ..]) if first == "--check" && rest.len() <= 1 => {
                let path = rest.first().map_or("BENCH_drift.json", String::as_str);
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {path}: {e}"))?;
                let committed: fap_bench::drift::DriftBenchReport =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                let fresh = fap_bench::drift::bench_drift(
                    &committed.scenarios,
                    committed.nodes,
                    committed.epochs,
                    committed.seed,
                    &committed.thread_grid,
                );
                let outcome = fap_bench::drift::check_against(&committed, &fresh, 1.5);
                for advisory in &outcome.advisories {
                    println!("advisory: {advisory}");
                }
                if outcome.is_pass() {
                    println!(
                        "bench-drift check passed: {} scenarios bit-identical to {path}, \
                         diurnal regret gate held",
                        committed.points.len()
                    );
                    Ok(())
                } else {
                    Err(format!(
                        "bench-drift check failed:\n  {}",
                        outcome.hard_failures.join("\n  ")
                    ))
                }
            }
            ("bench-drift", rest) if rest.len() <= 1 => {
                let out = rest.first().map_or("BENCH_drift.json", String::as_str);
                let report = fap_bench::drift::bench_drift(
                    &fap_bench::drift::default_scenarios(),
                    8,
                    24,
                    7,
                    &[2, 4],
                );
                let json =
                    serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                std::fs::write(out, format!("{json}\n"))
                    .map_err(|e| format!("writing {out}: {e}"))?;
                println!(
                    "{} host CPUs; wrote {} scenario points ({} nodes, {} epochs) to {out}",
                    report.host_threads,
                    report.points.len(),
                    report.nodes,
                    report.epochs
                );
                for p in &report.points {
                    println!(
                        "  {:<12} regret {:>10.6} vs static {:>10.6} (ratio {:>7.4})  \
                         moved {:>7.4} in {:>3} copies / {:>3} rounds  {:>8.2} ms",
                        p.scenario,
                        p.tracked_regret,
                        p.static_regret,
                        p.regret_ratio,
                        p.total_movement,
                        p.total_copies,
                        p.total_rounds,
                        p.run_ms
                    );
                }
                Ok(())
            }
            ("sweep-k", [path, list]) => {
                let scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                let candidates: Vec<f64> = list
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().map_err(|e| format!("bad k '{s}': {e}")))
                    .collect::<Result<_, _>>()?;
                let sweep = sweep_k(&scenario, &candidates).map_err(|e| e.to_string())?;
                println!("{:>10} {:>14} {:>12} {:>10}", "k", "communication", "mean delay", "spread");
                for point in sweep {
                    println!(
                        "{:>10.4} {:>14.6} {:>12.6} {:>10.6}",
                        point.k, point.communication, point.mean_delay, point.allocation_spread
                    );
                }
                Ok(())
            }
            (cmd, _) => Err(format!("unknown or malformed command '{cmd}'")),
        },
    }
}
