//! The `fap` command-line tool.
//!
//! ```text
//! fap solve <scenario.json>              solve and print the allocation
//! fap run <scenario.json>                alias for solve
//! fap simulate <scenario.json>           solve, then measure with the DES
//! fap sim <scenario.json> [chaos.json]   run the protocol under faults
//! fap report <metrics.jsonl>             summarize an exported metrics file
//! fap sweep-k <scenario.json> <k,k,...>  the §8.2 k trade-off
//! fap bench-scale [out.json]             seq-vs-parallel scaling sweep
//! fap bench-scale --check [committed]    re-run and verify determinism
//! fap example                            print a template scenario
//! fap chaos-example                      print a template fault plan
//! ```
//!
//! `solve`, `run` and `sim` accept `--metrics-out <path.jsonl>` to export
//! the run's telemetry and `--metrics-summary` to print the metrics table.
//! Telemetry runs on virtual time (iterations/rounds), so two runs of the
//! same seeded scenario export byte-identical JSONL.

use std::path::Path;
use std::process::ExitCode;

use fap_cli::{chaos_sim_observed, simulate, solve_observed, summarize, sweep_k, Scenario};
use fap_obs::Telemetry;
use fap_runtime::ChaosPlan;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fap solve <scenario.json> [--metrics-out <path.jsonl>] [--metrics-summary]
  fap run   <scenario.json> [--metrics-out <path.jsonl>] [--metrics-summary]
  fap simulate <scenario.json>
  fap sim <scenario.json> [chaos.json] [--metrics-out <path.jsonl>] [--metrics-summary]
  fap report <metrics.jsonl>
  fap sweep-k <scenario.json> <k1,k2,...>
  fap bench-scale [out.json]
  fap bench-scale --check [committed.json]
  fap example
  fap chaos-example";

/// Telemetry flags shared by `solve`/`run`/`sim`.
#[derive(Debug, Default)]
struct MetricsOptions {
    out: Option<String>,
    summary: bool,
}

impl MetricsOptions {
    fn requested(&self) -> bool {
        self.out.is_some() || self.summary
    }

    /// Exports and/or prints `telemetry` as the flags requested.
    fn finish(&self, telemetry: &Telemetry) -> Result<(), String> {
        if let Some(path) = &self.out {
            std::fs::write(path, telemetry.to_jsonl())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
        if self.summary {
            print!("{}", telemetry.summary());
        }
        Ok(())
    }
}

/// Splits `--metrics-out <path>` / `--metrics-summary` out of the raw
/// argument list, leaving the positional arguments.
fn extract_metrics_flags(args: &[String]) -> Result<(Vec<String>, MetricsOptions), String> {
    let mut positional = Vec::new();
    let mut options = MetricsOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--metrics-out" => {
                let path = iter.next().ok_or("--metrics-out requires a path")?;
                options.out = Some(path.clone());
            }
            "--metrics-summary" => options.summary = true,
            _ => positional.push(arg.clone()),
        }
    }
    Ok((positional, options))
}

fn run(args: &[String]) -> Result<(), String> {
    let (args, metrics) = extract_metrics_flags(args)?;
    if metrics.requested()
        && !matches!(args.first().map(String::as_str), Some("solve" | "run" | "sim"))
    {
        return Err("--metrics-out/--metrics-summary only apply to solve, run and sim".into());
    }
    match &args[..] {
        [] => Err("no command given".into()),
        [cmd, rest @ ..] => match (cmd.as_str(), rest) {
            ("example", []) => {
                println!("{}", Scenario::example().to_json());
                Ok(())
            }
            ("solve" | "run", [path]) => {
                let scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                let mut telemetry = Telemetry::manual();
                let output =
                    solve_observed(&scenario, &mut telemetry).map_err(|e| e.to_string())?;
                metrics.finish(&telemetry)?;
                println!("converged:  {} ({} iterations)", output.converged, output.iterations);
                println!("cost:       {:.6}", output.cost);
                println!("reference:  {:.6} (gap {:.2e})", output.reference_cost, output.reference_gap);
                println!("allocation:");
                for (i, x) in output.allocation.iter().enumerate() {
                    println!("  node {i:>3}: {x:.6}");
                }
                Ok(())
            }
            ("simulate", [path]) => {
                let scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                let (output, report) = simulate(&scenario).map_err(|e| e.to_string())?;
                println!("model cost:     {:.6}", output.cost);
                println!(
                    "measured cost:  {:.6} over {} accesses",
                    report.mean_total_cost(scenario.k),
                    report.accesses_measured
                );
                println!(
                    "mean response:  {:.6} ± {:.6}",
                    report.response.mean(),
                    report.response.ci95_half_width()
                );
                println!("mean comm cost: {:.6}", report.comm_cost.mean());
                println!("utilization per node:");
                for (i, rho) in report.per_node_utilization.iter().enumerate() {
                    println!("  node {i:>3}: {rho:.4}");
                }
                Ok(())
            }
            ("chaos-example", []) => {
                let plan = ChaosPlan::new(42)
                    .with_drop(0.1)
                    .with_delay(0.2, 2)
                    .with_staleness_bound(2)
                    .with_retries(1);
                let json = serde_json::to_string_pretty(&plan)
                    .map_err(|e| e.to_string())?;
                println!("{json}");
                Ok(())
            }
            ("sim", [path, rest @ ..]) if rest.len() <= 1 => {
                let scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                let plan = match rest {
                    [chaos_path] => {
                        let text = std::fs::read_to_string(chaos_path)
                            .map_err(|e| format!("reading {chaos_path}: {e}"))?;
                        serde_json::from_str::<ChaosPlan>(&text)
                            .map_err(|e| format!("parsing {chaos_path}: {e}"))?
                    }
                    _ => ChaosPlan::new(0),
                };
                let mut telemetry = Telemetry::manual();
                let report = chaos_sim_observed(&scenario, plan, &mut telemetry)
                    .map_err(|e| e.to_string())?;
                metrics.finish(&telemetry)?;
                let json = serde_json::to_string_pretty(&report)
                    .map_err(|e| e.to_string())?;
                println!("{json}");
                Ok(())
            }
            ("report", [path]) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {path}: {e}"))?;
                let summary = summarize(&text).map_err(|e| format!("{path}: {e}"))?;
                print!("{}", fap_cli::render(&summary));
                Ok(())
            }
            ("bench-scale", [first, rest @ ..]) if first == "--check" && rest.len() <= 1 => {
                let path = rest.first().map_or("BENCH_scale.json", String::as_str);
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {path}: {e}"))?;
                let committed: fap_bench::scale::ScaleReport =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                let fresh = fap_bench::scale::bench_scale(
                    &committed.ns,
                    &committed.ms,
                    committed.iterations,
                    fap_batch::Parallelism::Auto,
                );
                let outcome = fap_bench::scale::check_against(&committed, &fresh, 1.5);
                for advisory in &outcome.advisories {
                    println!("advisory: {advisory}");
                }
                if outcome.is_pass() {
                    println!(
                        "bench-scale check passed: {} points bit-identical to {path}",
                        committed.points.len()
                    );
                    Ok(())
                } else {
                    Err(format!(
                        "bench-scale check failed:\n  {}",
                        outcome.hard_failures.join("\n  ")
                    ))
                }
            }
            ("bench-scale", rest) if rest.len() <= 1 => {
                let out = rest.first().map_or("BENCH_scale.json", String::as_str);
                let report = fap_bench::scale::bench_scale(
                    &[64, 256, 1024],
                    &[1, 16, 128],
                    25,
                    fap_batch::Parallelism::Auto,
                );
                let json =
                    serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                std::fs::write(out, format!("{json}\n"))
                    .map_err(|e| format!("writing {out}: {e}"))?;
                println!("{} threads; wrote {} points to {out}", report.threads, report.points.len());
                for p in &report.points {
                    println!(
                        "  {:<10} N={:<5} M={:<4} seq {:>9.2} ms  par {:>9.2} ms  speedup {:>5.2}x",
                        p.kind, p.n, p.m, p.sequential_ms, p.parallel_ms, p.speedup
                    );
                }
                Ok(())
            }
            ("sweep-k", [path, list]) => {
                let scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                let candidates: Vec<f64> = list
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().map_err(|e| format!("bad k '{s}': {e}")))
                    .collect::<Result<_, _>>()?;
                let sweep = sweep_k(&scenario, &candidates).map_err(|e| e.to_string())?;
                println!("{:>10} {:>14} {:>12} {:>10}", "k", "communication", "mean delay", "spread");
                for point in sweep {
                    println!(
                        "{:>10.4} {:>14.6} {:>12.6} {:>10.6}",
                        point.k, point.communication, point.mean_delay, point.allocation_spread
                    );
                }
                Ok(())
            }
            (cmd, _) => Err(format!("unknown or malformed command '{cmd}'")),
        },
    }
}
