//! The `fap` command-line tool.
//!
//! ```text
//! fap solve <scenario.json>              solve and print the allocation
//! fap simulate <scenario.json>           solve, then measure with the DES
//! fap sim <scenario.json> [chaos.json]   run the protocol under faults
//! fap sweep-k <scenario.json> <k,k,...>  the §8.2 k trade-off
//! fap bench-scale [out.json]             seq-vs-parallel scaling sweep
//! fap example                            print a template scenario
//! fap chaos-example                      print a template fault plan
//! ```

use std::path::Path;
use std::process::ExitCode;

use fap_cli::{chaos_sim, simulate, solve, sweep_k, Scenario};
use fap_runtime::ChaosPlan;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fap solve <scenario.json>
  fap simulate <scenario.json>
  fap sim <scenario.json> [chaos.json]
  fap sweep-k <scenario.json> <k1,k2,...>
  fap bench-scale [out.json]
  fap example
  fap chaos-example";

fn run(args: &[String]) -> Result<(), String> {
    match args {
        [] => Err("no command given".into()),
        [cmd, rest @ ..] => match (cmd.as_str(), rest) {
            ("example", []) => {
                println!("{}", Scenario::example().to_json());
                Ok(())
            }
            ("solve", [path]) => {
                let scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                let output = solve(&scenario).map_err(|e| e.to_string())?;
                println!("converged:  {} ({} iterations)", output.converged, output.iterations);
                println!("cost:       {:.6}", output.cost);
                println!("reference:  {:.6} (gap {:.2e})", output.reference_cost, output.reference_gap);
                println!("allocation:");
                for (i, x) in output.allocation.iter().enumerate() {
                    println!("  node {i:>3}: {x:.6}");
                }
                Ok(())
            }
            ("simulate", [path]) => {
                let scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                let (output, report) = simulate(&scenario).map_err(|e| e.to_string())?;
                println!("model cost:     {:.6}", output.cost);
                println!(
                    "measured cost:  {:.6} over {} accesses",
                    report.mean_total_cost(scenario.k),
                    report.accesses_measured
                );
                println!(
                    "mean response:  {:.6} ± {:.6}",
                    report.response.mean(),
                    report.response.ci95_half_width()
                );
                println!("mean comm cost: {:.6}", report.comm_cost.mean());
                println!("utilization per node:");
                for (i, rho) in report.per_node_utilization.iter().enumerate() {
                    println!("  node {i:>3}: {rho:.4}");
                }
                Ok(())
            }
            ("chaos-example", []) => {
                let plan = ChaosPlan::new(42)
                    .with_drop(0.1)
                    .with_delay(0.2, 2)
                    .with_staleness_bound(2)
                    .with_retries(1);
                let json = serde_json::to_string_pretty(&plan)
                    .map_err(|e| e.to_string())?;
                println!("{json}");
                Ok(())
            }
            ("sim", [path, rest @ ..]) if rest.len() <= 1 => {
                let scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                let plan = match rest {
                    [chaos_path] => {
                        let text = std::fs::read_to_string(chaos_path)
                            .map_err(|e| format!("reading {chaos_path}: {e}"))?;
                        serde_json::from_str::<ChaosPlan>(&text)
                            .map_err(|e| format!("parsing {chaos_path}: {e}"))?
                    }
                    _ => ChaosPlan::new(0),
                };
                let report = chaos_sim(&scenario, plan).map_err(|e| e.to_string())?;
                let json = serde_json::to_string_pretty(&report)
                    .map_err(|e| e.to_string())?;
                println!("{json}");
                Ok(())
            }
            ("bench-scale", rest) if rest.len() <= 1 => {
                let out = rest.first().map_or("BENCH_scale.json", String::as_str);
                let report = fap_bench::scale::bench_scale(
                    &[64, 256, 1024],
                    &[1, 16, 128],
                    25,
                    fap_batch::Parallelism::Auto,
                );
                let json =
                    serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                std::fs::write(out, format!("{json}\n"))
                    .map_err(|e| format!("writing {out}: {e}"))?;
                println!("{} threads; wrote {} points to {out}", report.threads, report.points.len());
                for p in &report.points {
                    println!(
                        "  {:<10} N={:<5} M={:<4} seq {:>9.2} ms  par {:>9.2} ms  speedup {:>5.2}x",
                        p.kind, p.n, p.m, p.sequential_ms, p.parallel_ms, p.speedup
                    );
                }
                Ok(())
            }
            ("sweep-k", [path, list]) => {
                let scenario = Scenario::load(Path::new(path)).map_err(|e| e.to_string())?;
                let candidates: Vec<f64> = list
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().map_err(|e| format!("bad k '{s}': {e}")))
                    .collect::<Result<_, _>>()?;
                let sweep = sweep_k(&scenario, &candidates).map_err(|e| e.to_string())?;
                println!("{:>10} {:>14} {:>12} {:>10}", "k", "communication", "mean delay", "spread");
                for point in sweep {
                    println!(
                        "{:>10.4} {:>14.6} {:>12.6} {:>10.6}",
                        point.k, point.communication, point.mean_delay, point.allocation_spread
                    );
                }
                Ok(())
            }
            (cmd, _) => Err(format!("unknown or malformed command '{cmd}'")),
        },
    }
}
