//! Scenario files: the JSON surface of the system.

use std::fmt;

use serde::{Deserialize, Serialize};

use fap_cache::CostBackend;
use fap_net::{topology, AccessPattern, Graph, NodeId};

/// Errors while loading or validating a scenario.
#[derive(Debug)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The JSON did not parse.
    Parse(serde_json::Error),
    /// The scenario parsed but is not a valid system.
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io(e) => write!(f, "cannot read scenario: {e}"),
            ScenarioError::Parse(e) => write!(f, "cannot parse scenario: {e}"),
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Io(e) => Some(e),
            ScenarioError::Parse(e) => Some(e),
            ScenarioError::Invalid(_) => None,
        }
    }
}

impl From<std::io::Error> for ScenarioError {
    fn from(e: std::io::Error) -> Self {
        ScenarioError::Io(e)
    }
}

impl From<serde_json::Error> for ScenarioError {
    fn from(e: serde_json::Error) -> Self {
        ScenarioError::Parse(e)
    }
}

/// The network shape of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
#[non_exhaustive]
pub enum Topology {
    /// A ring of `n` nodes with uniform link cost.
    Ring {
        /// Node count (≥ 3).
        n: usize,
        /// Cost of each link.
        link_cost: f64,
    },
    /// A complete graph of `n` nodes with uniform link cost.
    FullMesh {
        /// Node count (≥ 2).
        n: usize,
        /// Cost of each link.
        link_cost: f64,
    },
    /// A star: node 0 the hub, `n − 1` leaves.
    Star {
        /// Node count (≥ 2).
        n: usize,
        /// Cost of each spoke.
        link_cost: f64,
    },
    /// An explicit undirected link list.
    Links {
        /// Node count.
        n: usize,
        /// `(from, to, cost)` triples.
        links: Vec<(usize, usize, f64)>,
    },
}

impl Topology {
    /// Builds the graph this topology describes.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] for malformed shapes.
    pub fn build(&self) -> Result<Graph, ScenarioError> {
        let graph = match self {
            Topology::Ring { n, link_cost } => topology::ring(*n, *link_cost),
            Topology::FullMesh { n, link_cost } => topology::full_mesh(*n, *link_cost),
            Topology::Star { n, link_cost } => topology::star(*n, *link_cost),
            Topology::Links { n, links } => {
                let mut g = Graph::new(*n);
                for &(a, b, cost) in links {
                    g.add_link(NodeId::new(a), NodeId::new(b), cost)
                        .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
                }
                return Ok(g);
            }
        };
        graph.map_err(|e| ScenarioError::Invalid(e.to_string()))
    }

    /// Number of nodes this topology describes.
    pub fn node_count(&self) -> usize {
        match self {
            Topology::Ring { n, .. }
            | Topology::FullMesh { n, .. }
            | Topology::Star { n, .. }
            | Topology::Links { n, .. } => *n,
        }
    }
}

/// A complete scenario: network + workload + model parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The network.
    pub topology: Topology,
    /// Per-node access rates `λ_i`.
    pub lambdas: Vec<f64>,
    /// Per-node service rates `μ_i` (a single entry is broadcast to all).
    pub mus: Vec<f64>,
    /// The delay weight `k`.
    pub k: f64,
    /// Step size for the decentralized solve (default 0.1).
    #[serde(default = "default_alpha")]
    pub alpha: f64,
    /// Convergence tolerance (default 1e-6).
    #[serde(default = "default_epsilon")]
    pub epsilon: f64,
    /// Starting allocation (default: even split).
    #[serde(default)]
    pub initial: Option<Vec<f64>>,
    /// Simulation horizon for `fap simulate` (default 100 000 time units).
    #[serde(default = "default_duration")]
    pub sim_duration: f64,
    /// Simulation seed (default 0).
    #[serde(default)]
    pub sim_seed: u64,
    /// Cost substrate: the exact dense matrix (default) or the sparse
    /// landmark oracle (`{"kind": "landmark", "landmarks": K, "seed": S}`).
    /// The default is not serialized, so pre-PR-7 scenario files stay
    /// byte-identical through a parse/serialize round trip (the daemon's
    /// golden sessions pin this).
    #[serde(default, skip_serializing_if = "CostBackend::is_exact")]
    pub cost_backend: CostBackend,
}

fn default_alpha() -> f64 {
    0.1
}

fn default_epsilon() -> f64 {
    1e-6
}

fn default_duration() -> f64 {
    100_000.0
}

impl Scenario {
    /// Parses a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] for bad JSON and
    /// [`ScenarioError::Invalid`] for a scenario that fails validation.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        let scenario: Scenario = serde_json::from_str(text)?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Loads a scenario from a file.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] when the file cannot be read, plus the
    /// conditions of [`Scenario::from_json`].
    pub fn load(path: &std::path::Path) -> Result<Self, ScenarioError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// The scenario rendered back to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialization cannot fail")
    }

    /// A ready-to-edit template: the paper's §6 system.
    pub fn example() -> Self {
        Scenario {
            topology: Topology::Ring { n: 4, link_cost: 1.0 },
            lambdas: vec![0.25; 4],
            mus: vec![1.5],
            k: 1.0,
            alpha: 0.19,
            epsilon: 1e-6,
            initial: Some(vec![0.8, 0.1, 0.1, 0.0]),
            sim_duration: 100_000.0,
            sim_seed: 0,
            cost_backend: CostBackend::Dense,
        }
    }

    /// The per-node service rates, broadcasting a single entry.
    pub fn service_rates(&self) -> Vec<f64> {
        let n = self.topology.node_count();
        if self.mus.len() == 1 {
            vec![self.mus[0]; n]
        } else {
            self.mus.clone()
        }
    }

    /// The workload this scenario describes.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] for invalid rates.
    pub fn pattern(&self) -> Result<AccessPattern, ScenarioError> {
        AccessPattern::new(self.lambdas.clone())
            .map_err(|e| ScenarioError::Invalid(e.to_string()))
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        let n = self.topology.node_count();
        if self.lambdas.len() != n {
            return Err(ScenarioError::Invalid(format!(
                "{} lambdas for {n} nodes",
                self.lambdas.len()
            )));
        }
        if self.mus.len() != 1 && self.mus.len() != n {
            return Err(ScenarioError::Invalid(format!(
                "mus must have 1 or {n} entries, got {}",
                self.mus.len()
            )));
        }
        if let Some(initial) = &self.initial {
            if initial.len() != n {
                return Err(ScenarioError::Invalid(format!(
                    "initial allocation has {} entries for {n} nodes",
                    initial.len()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_round_trips() {
        let example = Scenario::example();
        let parsed = Scenario::from_json(&example.to_json()).unwrap();
        assert_eq!(example, parsed);
    }

    #[test]
    fn topology_tags_parse() {
        let json = r#"{
            "topology": {"type": "full_mesh", "n": 5, "link_cost": 2.0},
            "lambdas": [0.2, 0.2, 0.2, 0.2, 0.2],
            "mus": [1.5],
            "k": 1.0
        }"#;
        let s = Scenario::from_json(json).unwrap();
        assert_eq!(s.topology.node_count(), 5);
        assert_eq!(s.alpha, 0.1, "default alpha");
        assert_eq!(s.service_rates(), vec![1.5; 5]);
        assert!(s.topology.build().is_ok());
    }

    #[test]
    fn explicit_link_lists_build() {
        let json = r#"{
            "topology": {"type": "links", "n": 3,
                         "links": [[0, 1, 1.0], [1, 2, 2.0], [0, 2, 2.5]]},
            "lambdas": [0.3, 0.3, 0.4],
            "mus": [2.0, 2.0, 2.0],
            "k": 0.5
        }"#;
        let s = Scenario::from_json(json).unwrap();
        let g = s.topology.build().unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.direct_cost(NodeId::new(1), NodeId::new(2)), Some(2.0));
    }

    #[test]
    fn validation_catches_shape_mismatches() {
        let json = r#"{
            "topology": {"type": "ring", "n": 4, "link_cost": 1.0},
            "lambdas": [0.25, 0.25],
            "mus": [1.5],
            "k": 1.0
        }"#;
        assert!(matches!(Scenario::from_json(json), Err(ScenarioError::Invalid(_))));

        let json = r#"{
            "topology": {"type": "ring", "n": 4, "link_cost": 1.0},
            "lambdas": [0.25, 0.25, 0.25, 0.25],
            "mus": [1.5, 1.5],
            "k": 1.0
        }"#;
        assert!(matches!(Scenario::from_json(json), Err(ScenarioError::Invalid(_))));

        let json = r#"{
            "topology": {"type": "ring", "n": 4, "link_cost": 1.0},
            "lambdas": [0.25, 0.25, 0.25, 0.25],
            "mus": [1.5],
            "k": 1.0,
            "initial": [1.0]
        }"#;
        assert!(matches!(Scenario::from_json(json), Err(ScenarioError::Invalid(_))));
    }

    #[test]
    fn bad_json_is_a_parse_error() {
        assert!(matches!(Scenario::from_json("{nope"), Err(ScenarioError::Parse(_))));
    }

    #[test]
    fn errors_display_their_cause() {
        let e = Scenario::from_json("{").unwrap_err();
        assert!(e.to_string().contains("cannot parse"));
        let e = ScenarioError::Invalid("x".into());
        assert!(e.to_string().contains("invalid scenario"));
    }
}
