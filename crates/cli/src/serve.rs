//! `fap serve`: batch-serving many scenarios through `fap-serve`.
//!
//! The input is a *scenario list*: a JSON array of tagged specs, one per
//! request. Three kinds are supported — `single_file` (wrapping the same
//! scenario format `fap solve` takes), `multi_file`, and `ring`. The specs
//! are converted to [`ServeRequest`]s and handed to a [`BatchServer`];
//! responses come back in submission order, bit-identical to solving the
//! list sequentially for every `--shards` value.

use serde::{Deserialize, Serialize};

use fap_batch::Parallelism;
use fap_cache::{CostBackend, SubstrateCache};
use fap_core::MultiFileProblem;
use fap_net::AccessPattern;
use fap_obs::Recorder;
use fap_ring::VirtualRing;
use fap_serve::{BatchServer, ServeOutput, ServeRequest};

use crate::run::{problem_of, problem_of_with_costs};
use crate::scenario::{Scenario, ScenarioError, Topology};

fn default_alpha() -> f64 {
    0.1
}

fn default_epsilon() -> f64 {
    1e-6
}

fn default_ring_tolerance() -> f64 {
    1e-7
}

fn default_max_iterations() -> usize {
    1_000_000
}

/// The canonical fingerprint of a spec topology, computed off the built
/// graph so structurally identical topologies written differently (e.g. a
/// `ring` shape vs the same ring as an explicit link list) still share
/// warm-start chains — and a changed topology rotates the requests' warm
/// keys, invalidating session seeds from the old network.
fn fingerprint_of(topology: &Topology) -> Result<u64, ScenarioError> {
    Ok(fap_cache::topology_fingerprint(&topology.build()?))
}

/// One request in a `fap serve` scenario list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
#[non_exhaustive]
pub enum ServeSpec {
    /// A §4 single-file problem, in the same format `fap solve` reads.
    SingleFile {
        /// The scenario (topology, workload, model parameters).
        scenario: Scenario,
    },
    /// A §5.2 multi-file problem: one access-rate vector per file.
    MultiFile {
        /// The network.
        topology: Topology,
        /// Cost substrate (default: exact dense matrix, not serialized
        /// at its default so pre-PR-7 spec files round-trip bytewise).
        #[serde(default, skip_serializing_if = "CostBackend::is_exact")]
        cost_backend: CostBackend,
        /// `lambdas[j][i]` = file `j`'s access rate at node `i`.
        lambdas: Vec<Vec<f64>>,
        /// Per-node service rates (a single entry is broadcast to all).
        mus: Vec<f64>,
        /// The delay weight `k`.
        k: f64,
        /// Step size (default 0.1).
        #[serde(default = "default_alpha")]
        alpha: f64,
        /// Convergence tolerance (default 1e-6).
        #[serde(default = "default_epsilon")]
        epsilon: f64,
        /// Iteration cap (default 1 000 000).
        #[serde(default = "default_max_iterations")]
        max_iterations: usize,
    },
    /// A §7 multi-copy virtual-ring problem.
    Ring {
        /// Per-link communication costs (ring order, ≥ 3 links). Leave
        /// empty when `topology` is set.
        #[serde(default)]
        link_costs: Vec<f64>,
        /// Derive the ring from a network's cost substrate instead of
        /// explicit link costs — §7.2's imposed-ordering construction:
        /// virtual link `i → i+1 (mod N)` is priced at the substrate's
        /// cheapest-path cost between those nodes. Lets ring specs run
        /// on the sparse landmark backend at node counts where listing
        /// links (or the dense matrix) is impractical.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        topology: Option<Topology>,
        /// Cost substrate for a `topology`-derived ring (ignored for
        /// explicit link costs; default: exact dense matrix).
        #[serde(default, skip_serializing_if = "CostBackend::is_exact")]
        cost_backend: CostBackend,
        /// Per-node access rates.
        lambdas: Vec<f64>,
        /// Per-node service rates.
        mus: Vec<f64>,
        /// Number of copies `m` spread over the ring.
        copies: f64,
        /// The delay weight `k`.
        k: f64,
        /// Initial step size (default 0.1, decays on oscillation).
        #[serde(default = "default_alpha")]
        alpha: f64,
        /// Cost-delta halting tolerance (default 1e-7).
        #[serde(default = "default_ring_tolerance")]
        cost_delta_tolerance: f64,
        /// Iteration cap (default 1 000 000).
        #[serde(default = "default_max_iterations")]
        max_iterations: usize,
        /// Starting allocation (default: copies split evenly).
        #[serde(default)]
        initial: Option<Vec<f64>>,
    },
}

impl ServeSpec {
    /// A short label for rendering (`single_file` / `multi_file` / `ring`).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeSpec::SingleFile { .. } => "single_file",
            ServeSpec::MultiFile { .. } => "multi_file",
            ServeSpec::Ring { .. } => "ring",
        }
    }

    /// The spec's cost backend (`None` for specs that need no substrate —
    /// explicit-link ring specs; topology-derived rings report theirs).
    pub fn cost_backend(&self) -> Option<CostBackend> {
        match self {
            ServeSpec::SingleFile { scenario } => Some(scenario.cost_backend),
            ServeSpec::MultiFile { cost_backend, .. } => Some(*cost_backend),
            ServeSpec::Ring { topology: Some(_), cost_backend, .. } => Some(*cost_backend),
            ServeSpec::Ring { .. } => None,
        }
    }

    /// Overrides the spec's cost backend (`fap serve --cost-backend`); a
    /// no-op for specs that need no substrate.
    pub fn set_cost_backend(&mut self, backend: CostBackend) {
        match self {
            ServeSpec::SingleFile { scenario } => scenario.cost_backend = backend,
            ServeSpec::MultiFile { cost_backend, .. } => *cost_backend = backend,
            ServeSpec::Ring { topology: Some(_), cost_backend, .. } => *cost_backend = backend,
            ServeSpec::Ring { .. } => {}
        }
    }

    /// Builds the solver-level request this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] when the spec is not a valid
    /// system.
    pub fn to_request(&self) -> Result<ServeRequest, ScenarioError> {
        match self {
            ServeSpec::SingleFile { scenario } => {
                let problem = problem_of(scenario)?;
                let n = scenario.topology.node_count();
                let initial =
                    scenario.initial.clone().unwrap_or_else(|| vec![1.0 / n as f64; n]);
                Ok(ServeRequest::SingleFile {
                    problem,
                    initial,
                    alpha: scenario.alpha,
                    epsilon: scenario.epsilon,
                    max_iterations: 1_000_000,
                    topology: Some(fingerprint_of(&scenario.topology)?),
                })
            }
            ServeSpec::MultiFile { topology, cost_backend, .. } => {
                let graph = topology.build()?;
                match cost_backend {
                    CostBackend::Dense => {
                        let costs =
                            graph.shortest_path_matrix().map_err(crate::run::net_error)?;
                        self.multi_file_request(&costs)
                    }
                    CostBackend::Landmark { landmarks, seed } => {
                        let oracle = fap_net::LandmarkOracle::build(&graph, *landmarks, *seed)
                            .map_err(crate::run::net_error)?;
                        self.multi_file_request(&oracle)
                    }
                }
            }
            ServeSpec::Ring { topology: Some(topology), cost_backend, .. } => {
                let graph = topology.build()?;
                match cost_backend {
                    CostBackend::Dense => {
                        let costs =
                            graph.shortest_path_matrix().map_err(crate::run::net_error)?;
                        self.ring_request_from(&costs)
                    }
                    CostBackend::Landmark { landmarks, seed } => {
                        let oracle = fap_net::LandmarkOracle::build(&graph, *landmarks, *seed)
                            .map_err(crate::run::net_error)?;
                        self.ring_request_from(&oracle)
                    }
                }
            }
            ServeSpec::Ring { .. } => self.ring_request(),
        }
    }

    /// Like [`to_request`](Self::to_request), but resolving each spec's
    /// cost substrate through `cache`: specs sharing a topology fingerprint
    /// (and, for landmark backends, a `(K, seed)` pair) build their
    /// substrate once per distinct key per batch (hits and misses are
    /// recorded as `cache.*` metrics in `recorder`). The requests — and
    /// therefore the responses — are bit-identical to the uncached path,
    /// because a cached substrate is the same bits a rebuild would produce.
    ///
    /// # Errors
    ///
    /// Same conditions as [`to_request`](Self::to_request).
    pub fn to_request_cached(
        &self,
        cache: &mut SubstrateCache,
        recorder: &mut dyn Recorder,
    ) -> Result<ServeRequest, ScenarioError> {
        self.to_request_cached_with(cache, false, recorder)
    }

    /// [`to_request_cached`](Self::to_request_cached) with the cache's
    /// incremental oracle path switchable (`--oracle-update`): when on,
    /// landmark substrates go through
    /// [`SubstrateCache::get_or_update_observed`], so a cached oracle
    /// survives a small topology edit (edge re-price, node join/leave)
    /// as a dirty-frontier repair instead of a cold rebuild — which is
    /// what keeps a `WarmMode::Session` daemon warm across drift.
    ///
    /// # Errors
    ///
    /// Same conditions as [`to_request`](Self::to_request).
    pub fn to_request_cached_with(
        &self,
        cache: &mut SubstrateCache,
        oracle_update: bool,
        recorder: &mut dyn Recorder,
    ) -> Result<ServeRequest, ScenarioError> {
        let (topology, backend) = match self {
            ServeSpec::SingleFile { scenario } => (&scenario.topology, scenario.cost_backend),
            ServeSpec::MultiFile { topology, cost_backend, .. } => (topology, *cost_backend),
            ServeSpec::Ring { topology: Some(topology), cost_backend, .. } => {
                (topology, *cost_backend)
            }
            ServeSpec::Ring { .. } => return self.ring_request(),
        };
        let graph = topology.build()?;
        let costs = if oracle_update {
            cache.get_or_update_observed(&graph, backend, Parallelism::Sequential, recorder)
        } else {
            cache.get_or_build_observed(&graph, backend, Parallelism::Sequential, recorder)
        }
        .map_err(crate::run::net_error)?;
        match self {
            ServeSpec::SingleFile { scenario } => {
                let problem = problem_of_with_costs(scenario, costs)?;
                let n = scenario.topology.node_count();
                let initial =
                    scenario.initial.clone().unwrap_or_else(|| vec![1.0 / n as f64; n]);
                Ok(ServeRequest::SingleFile {
                    problem,
                    initial,
                    alpha: scenario.alpha,
                    epsilon: scenario.epsilon,
                    max_iterations: 1_000_000,
                    topology: Some(fap_cache::topology_fingerprint(&graph)),
                })
            }
            ServeSpec::MultiFile { .. } => self.multi_file_request(costs),
            ServeSpec::Ring { .. } => self.ring_request_from(costs),
        }
    }

    fn multi_file_request(
        &self,
        costs: &(impl fap_net::CostProvider + ?Sized),
    ) -> Result<ServeRequest, ScenarioError> {
        let ServeSpec::MultiFile {
            topology, lambdas, mus, k, alpha, epsilon, max_iterations, ..
        } = self
        else {
            unreachable!("multi_file_request called on a non-multi-file spec");
        };
        let n = topology.node_count();
        let patterns: Vec<AccessPattern> = lambdas
            .iter()
            .map(|rates| AccessPattern::new(rates.clone()))
            .collect::<Result<_, _>>()
            .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
        let rates = if mus.len() == 1 { vec![mus[0]; n] } else { mus.clone() };
        let problem =
            MultiFileProblem::mm1_heterogeneous_with_provider(costs, &patterns, &rates, *k)
                .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
        let initial = vec![vec![1.0 / n as f64; n]; lambdas.len()];
        Ok(ServeRequest::MultiFile {
            problem,
            initial,
            alpha: *alpha,
            epsilon: *epsilon,
            max_iterations: *max_iterations,
            topology: Some(fingerprint_of(topology)?),
        })
    }

    fn ring_request(&self) -> Result<ServeRequest, ScenarioError> {
        let ServeSpec::Ring { link_costs, lambdas, mus, copies, k, .. } = self else {
            unreachable!("ring_request called on a non-ring spec");
        };
        let ring =
            VirtualRing::new(link_costs.clone(), lambdas.clone(), mus.clone(), *copies, *k)
                .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
        self.ring_request_of(ring)
    }

    /// A topology-derived ring: virtual link costs come from the cost
    /// substrate (`VirtualRing::from_provider`), so the spec runs on
    /// whichever backend — dense or landmark — resolved `costs`.
    fn ring_request_from(
        &self,
        costs: &(impl fap_net::CostProvider + ?Sized),
    ) -> Result<ServeRequest, ScenarioError> {
        let ServeSpec::Ring { link_costs, lambdas, mus, copies, k, .. } = self else {
            unreachable!("ring_request_from called on a non-ring spec");
        };
        if !link_costs.is_empty() {
            return Err(ScenarioError::Invalid(
                "ring spec sets both explicit link_costs and a topology; pick one".into(),
            ));
        }
        let ring =
            VirtualRing::from_provider(costs, lambdas.clone(), mus.clone(), *copies, *k)
                .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
        self.ring_request_of(ring)
    }

    fn ring_request_of(&self, ring: VirtualRing) -> Result<ServeRequest, ScenarioError> {
        let ServeSpec::Ring {
            lambdas, copies, alpha, cost_delta_tolerance, max_iterations, initial, ..
        } = self
        else {
            unreachable!("ring_request_of called on a non-ring spec");
        };
        let n = lambdas.len();
        let initial = initial.clone().unwrap_or_else(|| vec![copies / n as f64; n]);
        Ok(ServeRequest::Ring {
            ring,
            initial,
            alpha: *alpha,
            cost_delta_tolerance: *cost_delta_tolerance,
            max_iterations: *max_iterations,
        })
    }
}

/// Parses a scenario list (a JSON array of [`ServeSpec`]s).
///
/// # Errors
///
/// Returns [`ScenarioError::Parse`] for bad JSON and
/// [`ScenarioError::Invalid`] for an empty list.
pub fn specs_from_json(text: &str) -> Result<Vec<ServeSpec>, ScenarioError> {
    let specs: Vec<ServeSpec> = serde_json::from_str(text)?;
    if specs.is_empty() {
        return Err(ScenarioError::Invalid("scenario list is empty".into()));
    }
    Ok(specs)
}

/// Loads a scenario list from a file.
///
/// # Errors
///
/// Returns [`ScenarioError::Io`] when the file cannot be read, plus the
/// conditions of [`specs_from_json`].
pub fn load_specs(path: &std::path::Path) -> Result<Vec<ServeSpec>, ScenarioError> {
    specs_from_json(&std::fs::read_to_string(path)?)
}

/// A ready-to-edit template scenario list: one request of each kind.
pub fn example_specs() -> Vec<ServeSpec> {
    vec![
        ServeSpec::SingleFile { scenario: Scenario::example() },
        ServeSpec::MultiFile {
            topology: Topology::Ring { n: 4, link_cost: 1.0 },
            cost_backend: CostBackend::Dense,
            lambdas: vec![vec![0.25; 4], vec![0.1, 0.2, 0.3, 0.4]],
            mus: vec![2.5],
            k: 1.0,
            alpha: 0.1,
            epsilon: 1e-6,
            max_iterations: 1_000_000,
        },
        ServeSpec::Ring {
            link_costs: vec![4.0, 1.0, 1.0, 1.0],
            topology: None,
            cost_backend: CostBackend::Dense,
            lambdas: vec![0.25; 4],
            mus: vec![1.5; 4],
            copies: 2.0,
            k: 1.0,
            alpha: 0.1,
            cost_delta_tolerance: 1e-7,
            max_iterations: 3_000,
            initial: Some(vec![2.0, 0.0, 0.0, 0.0]),
        },
    ]
}

/// The template list rendered to pretty JSON (`fap serve-example`).
pub fn example_specs_json() -> String {
    serde_json::to_string_pretty(&example_specs()).expect("spec serialization cannot fail")
}

/// Converts every spec and serves the batch across `shards` workers,
/// fanning per-shard metrics into the output's aggregate registry and
/// `recorder`. Cost substrates are resolved through a per-batch
/// [`SubstrateCache`], so specs sharing a topology (and backend key) build
/// their substrate once (visible as `cache.hit`/`cache.miss`/`cache.bytes`
/// — or `cache.landmark_*` for sparse backends — in `recorder`); the
/// responses are bit-identical to building every substrate from scratch.
///
/// # Errors
///
/// Returns [`ScenarioError::Invalid`] if any spec cannot be built (solver
/// failures on well-formed specs are reported per-request in the output
/// instead).
pub fn serve_specs(
    specs: &[ServeSpec],
    shards: Parallelism,
    recorder: &mut dyn Recorder,
) -> Result<ServeOutput, ScenarioError> {
    serve_specs_with(specs, shards, false, recorder)
}

/// [`serve_specs`] with the server's warm-start chaining switchable
/// (`fap serve --warm-start`): requests of the same family, shape and
/// solver parameters seed each other's solves. Warm responses can differ
/// in their iteration counts (that is the point) but reach the same
/// optima; cold mode is bit-identical to [`serve_specs`].
///
/// # Errors
///
/// Same conditions as [`serve_specs`].
pub fn serve_specs_with(
    specs: &[ServeSpec],
    shards: Parallelism,
    warm_start: bool,
    recorder: &mut dyn Recorder,
) -> Result<ServeOutput, ScenarioError> {
    serve_specs_configured(specs, shards, warm_start, false, recorder)
}

/// [`serve_specs_with`] plus the cache's incremental oracle path
/// (`fap serve --oracle-update`): successive specs whose topologies
/// differ by a small edit (edge re-price, node join/leave) repair the
/// cached landmark oracle in place instead of rebuilding it, visible as
/// `cache.landmark_incremental` in `recorder`.
///
/// # Errors
///
/// Same conditions as [`serve_specs`].
pub fn serve_specs_configured(
    specs: &[ServeSpec],
    shards: Parallelism,
    warm_start: bool,
    oracle_update: bool,
    recorder: &mut dyn Recorder,
) -> Result<ServeOutput, ScenarioError> {
    let mut cache = SubstrateCache::new();
    let requests: Vec<ServeRequest> = specs
        .iter()
        .enumerate()
        .map(|(index, spec)| {
            spec.to_request_cached_with(&mut cache, oracle_update, recorder)
                .map_err(|e| ScenarioError::Invalid(format!("request {index}: {e}")))
        })
        .collect::<Result<_, _>>()?;
    Ok(BatchServer::new(shards)
        .with_warm_start(warm_start)
        .serve_observed(&requests, recorder))
}

/// Renders a serve output the way `fap serve` prints it.
pub fn render_output(specs: &[ServeSpec], output: &ServeOutput) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (index, (spec, response)) in specs.iter().zip(&output.responses).enumerate() {
        match response {
            Ok(r) => {
                let _ = writeln!(
                    out,
                    "request {index:>3}  {:<11}  {}  {} iterations",
                    spec.kind(),
                    if r.converged() { "converged" } else { "stopped  " },
                    r.iterations(),
                );
            }
            Err(e) => {
                let _ = writeln!(out, "request {index:>3}  {:<11}  error: {e}", spec.kind());
            }
        }
    }
    let shards = output.shard_metrics.len();
    let _ = writeln!(
        out,
        "served {} requests ({} ok, {} failed) across {shards} shard{}",
        output.responses.len(),
        output.ok_count(),
        output.err_count(),
        if shards == 1 { "" } else { "s" },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_list_round_trips_and_serves() {
        let json = example_specs_json();
        let specs = specs_from_json(&json).unwrap();
        assert_eq!(specs, example_specs());
        let output =
            serve_specs(&specs, Parallelism::Fixed(2), &mut fap_obs::NoopRecorder).unwrap();
        assert_eq!(output.ok_count(), 3);
        assert_eq!(output.aggregate.counter("serve.requests"), 3);
        let rendered = render_output(&specs, &output);
        assert!(rendered.contains("single_file"));
        assert!(rendered.contains("ring"));
        assert!(rendered.contains("3 ok, 0 failed"));
    }

    #[test]
    fn sharded_serving_matches_sequential_through_the_spec_layer() {
        let mut specs = example_specs();
        specs.extend(example_specs());
        let sequential =
            serve_specs(&specs, Parallelism::Sequential, &mut fap_obs::NoopRecorder).unwrap();
        for shards in [2, 8] {
            let sharded =
                serve_specs(&specs, Parallelism::Fixed(shards), &mut fap_obs::NoopRecorder)
                    .unwrap();
            assert_eq!(sequential.responses, sharded.responses);
        }
    }

    #[test]
    fn single_file_spec_matches_fap_solve() {
        let scenario = Scenario::example();
        let solve = crate::run::solve(&scenario).unwrap();
        let specs = [ServeSpec::SingleFile { scenario }];
        let output =
            serve_specs(&specs, Parallelism::Sequential, &mut fap_obs::NoopRecorder).unwrap();
        match output.responses[0].as_ref().unwrap() {
            fap_serve::ServeResponse::SingleFile(s) => {
                assert_eq!(s.allocation, solve.allocation);
                assert_eq!(s.iterations, solve.iterations);
            }
            other => panic!("expected a single-file response, got {other:?}"),
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_their_index() {
        let mut specs = example_specs();
        if let ServeSpec::Ring { link_costs, .. } = &mut specs[2] {
            link_costs.truncate(2); // a ring needs ≥ 3 links
        }
        let err = serve_specs(&specs, Parallelism::Sequential, &mut fap_obs::NoopRecorder)
            .unwrap_err();
        assert!(err.to_string().contains("request 2"), "{err}");
    }

    #[test]
    fn empty_lists_are_invalid() {
        assert!(matches!(specs_from_json("[]"), Err(ScenarioError::Invalid(_))));
    }

    #[test]
    fn repeated_topologies_hit_the_cost_matrix_cache() {
        // Three copies of the example list: 6 graph-backed specs (the ring
        // spec needs no matrix), but the single- and multi-file examples
        // share one topology — Dijkstra runs once for the whole batch.
        let mut specs = example_specs();
        specs.extend(example_specs());
        specs.extend(example_specs());
        let mut telemetry = fap_obs::Telemetry::manual();
        let output = serve_specs(&specs, Parallelism::Sequential, &mut telemetry).unwrap();
        assert_eq!(output.err_count(), 0);
        let registry = telemetry.registry();
        assert_eq!(registry.counter("cache.miss"), 1, "one distinct topology");
        assert_eq!(registry.counter("cache.hit"), 5, "repeats are hits");
        assert!(registry.gauge_value("cache.bytes").unwrap() > 0.0);
    }

    #[test]
    fn cached_serving_is_bit_identical_to_uncached_requests() {
        let mut specs = example_specs();
        specs.extend(example_specs());
        let direct: Vec<ServeRequest> =
            specs.iter().map(|s| s.to_request().unwrap()).collect();
        let uncached = BatchServer::new(Parallelism::Sequential).serve(&direct);
        let cached =
            serve_specs(&specs, Parallelism::Sequential, &mut fap_obs::NoopRecorder).unwrap();
        assert_eq!(uncached.responses, cached.responses);
    }

    #[test]
    fn landmark_specs_serve_through_the_oracle_cache() {
        let mut sparse_scenario = Scenario::example();
        sparse_scenario.cost_backend = CostBackend::Landmark { landmarks: 2, seed: 1 };
        let specs = vec![
            ServeSpec::SingleFile { scenario: sparse_scenario.clone() },
            ServeSpec::SingleFile { scenario: sparse_scenario },
            ServeSpec::SingleFile { scenario: Scenario::example() },
        ];
        let mut telemetry = fap_obs::Telemetry::manual();
        let output = serve_specs(&specs, Parallelism::Sequential, &mut telemetry).unwrap();
        assert_eq!(output.err_count(), 0);
        let registry = telemetry.registry();
        assert_eq!(registry.counter("cache.landmark_miss"), 1, "one oracle build");
        assert_eq!(registry.counter("cache.landmark_hit"), 1, "repeat spec hits");
        assert_eq!(registry.counter("cache.miss"), 1, "dense spec uses the dense side");
        // A round-trip through JSON preserves the backend choice.
        let json = serde_json::to_string(&specs).unwrap();
        assert_eq!(specs_from_json(&json).unwrap(), specs);
    }

    #[test]
    fn topology_derived_ring_specs_run_on_either_backend() {
        let base = ServeSpec::Ring {
            link_costs: vec![],
            topology: Some(Topology::Ring { n: 6, link_cost: 2.0 }),
            cost_backend: CostBackend::Dense,
            lambdas: vec![0.25; 6],
            mus: vec![1.5; 6],
            copies: 2.0,
            k: 1.0,
            alpha: 0.1,
            cost_delta_tolerance: 1e-7,
            max_iterations: 3_000,
            initial: None,
        };
        let mut sparse = base.clone();
        sparse.set_cost_backend(CostBackend::Landmark { landmarks: 3, seed: 1 });
        assert_eq!(
            sparse.cost_backend(),
            Some(CostBackend::Landmark { landmarks: 3, seed: 1 }),
            "topology-derived rings expose and accept a backend"
        );
        let specs = vec![base.clone(), sparse];
        let mut telemetry = fap_obs::Telemetry::manual();
        let output = serve_specs(&specs, Parallelism::Sequential, &mut telemetry).unwrap();
        assert_eq!(output.err_count(), 0);
        assert_eq!(telemetry.registry().counter("cache.miss"), 1, "dense ring substrate");
        assert_eq!(telemetry.registry().counter("cache.landmark_miss"), 1, "sparse one");
        // The cached path and the direct path agree bit for bit.
        let direct = base.to_request().unwrap();
        let mut cache = SubstrateCache::new();
        let cached =
            base.to_request_cached(&mut cache, &mut fap_obs::NoopRecorder).unwrap();
        match (&direct, &cached) {
            (ServeRequest::Ring { ring: a, .. }, ServeRequest::Ring { ring: b, .. }) => {
                assert_eq!(a, b);
                // A physical 6-ring with cost-2 links prices every
                // virtual forward link at exactly one hop.
                assert_eq!(a.link_costs(), &[2.0; 6]);
            }
            other => panic!("expected ring requests, got {other:?}"),
        }
        // JSON round-trip keeps the topology form; explicit specs that
        // also name a topology are rejected.
        let json = serde_json::to_string(&specs).unwrap();
        assert_eq!(specs_from_json(&json).unwrap(), specs);
        let mut both = base;
        if let ServeSpec::Ring { link_costs, .. } = &mut both {
            *link_costs = vec![1.0; 6];
        }
        assert!(both.to_request().unwrap_err().to_string().contains("pick one"));
    }

    #[test]
    fn backend_override_rewrites_every_spec() {
        let mut specs = example_specs();
        let backend = CostBackend::Landmark { landmarks: 3, seed: 9 };
        for spec in &mut specs {
            spec.set_cost_backend(backend);
        }
        assert_eq!(specs[0].cost_backend(), Some(backend));
        assert_eq!(specs[1].cost_backend(), Some(backend));
        assert_eq!(specs[2].cost_backend(), None, "ring specs need no substrate");
    }

    #[test]
    fn warm_serving_reaches_the_same_optima_with_fewer_iterations() {
        // Identical single-file scenarios: the warm chain re-solves a
        // converged problem, so every seeded run is nearly free.
        let specs: Vec<ServeSpec> = (0..4)
            .map(|_| ServeSpec::SingleFile { scenario: Scenario::example() })
            .collect();
        let cold =
            serve_specs(&specs, Parallelism::Sequential, &mut fap_obs::NoopRecorder).unwrap();
        let warm = serve_specs_with(
            &specs,
            Parallelism::Sequential,
            true,
            &mut fap_obs::NoopRecorder,
        )
        .unwrap();
        assert_eq!(warm.err_count(), 0);
        assert_eq!(warm.aggregate.counter("serve.warm_starts"), 3);
        assert!(
            warm.aggregate.counter("econ.iterations") < cold.aggregate.counter("econ.iterations")
        );
        for (w, c) in warm.responses.iter().zip(&cold.responses) {
            let (w, c) = (w.as_ref().unwrap(), c.as_ref().unwrap());
            assert!(w.converged());
            assert!(w.iterations() <= c.iterations());
        }
        // And warm sharded serving still matches warm sequential.
        let warm_sharded = serve_specs_with(
            &specs,
            Parallelism::Fixed(4),
            true,
            &mut fap_obs::NoopRecorder,
        )
        .unwrap();
        assert_eq!(warm.responses, warm_sharded.responses);
    }
}
