//! Scenario-driven command-line interface for the file-allocation system.
//!
//! A *scenario* is a JSON description of a network, a workload and the
//! model parameters; this crate loads scenarios, solves them with the
//! decentralized algorithm, cross-checks against the closed-form reference,
//! measures them with the discrete-event simulator, and sweeps the delay
//! weight `k`. The `fap` binary is a thin shell over these functions:
//!
//! ```text
//! fap solve scenario.json            # optimal allocation + cost
//! fap simulate scenario.json        # measure the optimum empirically
//! fap sim scenario.json chaos.json  # run the protocol under injected faults
//! fap serve requests.json --shards 4 # batch-solve a scenario list, sharded
//! fap served                         # persistent daemon (JSONL on stdin)
//! fap track --drift-scenario diurnal # online reallocation under drift
//! fap bench-drift                    # the regret/determinism benchmark
//! fap serve-example                  # print a template scenario list
//! fap report metrics.jsonl          # summarize an exported telemetry file
//! fap trace metrics.jsonl           # reconstruct span trees + self time
//! fap sweep-k scenario.json 0.1,1,10  # the §8.2 k trade-off
//! fap example                        # print a template scenario
//! fap chaos-example                  # print a template fault plan
//! ```
//!
//! `solve`/`run` and `sim` take `--metrics-out <path.jsonl>` and
//! `--metrics-summary` to export structured telemetry (see `fap-obs`); the
//! export runs on virtual time, so seeded runs reproduce byte-for-byte.
//!
//! `serde_json` is a dependency of this crate only (justification in
//! DESIGN.md: the CLI needs a concrete config format; the libraries stay
//! format-agnostic behind serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod run;
pub mod scenario;
pub mod serve;
pub mod served;
pub mod trace;
pub mod track;

pub use report::{render, render_diff, render_json, summarize, ReportSummary};
pub use run::{chaos_sim, chaos_sim_observed, simulate, solve, solve_observed, sweep_k, SolveOutput};
pub use scenario::{Scenario, ScenarioError, Topology};
pub use serve::{load_specs, serve_specs, serve_specs_with, ServeSpec};
pub use served::{run_daemon, spec_daemon, spec_parser};
pub use trace::{analyze as analyze_trace, TraceReport, TraceTree};
pub use track::{parse_track_args, render_track, run_track, TrackOptions};
