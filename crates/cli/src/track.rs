//! `fap track`: the workload-drift control loop at the command line, plus
//! the daemon's `{"cmd":"drift", ...}` handler.
//!
//! `fap track` builds a ring topology, generates a seeded λ-trajectory
//! from a scenario preset, and drives the `fap-runtime` tracking loop
//! along it, printing a per-epoch table and the regret summary (tracked
//! vs clairvoyant vs static). The daemon handler exposes the same loop
//! over the JSONL session protocol — it lives here rather than in
//! `fap-served` so the wire daemon stays independent of the runtime
//! crate, the same layering that keeps its batch syntax pluggable.

use std::fmt::Write as _;

use fap_batch::Parallelism;
use fap_net::topology;
use fap_obs::jsonl::{push_json_f64, push_json_str};
use fap_obs::Recorder;
use fap_runtime::{DriftConfig, DriftReport, DriftRun, DriftScenario};
use serde::Value;

/// Epochs a daemon drift command runs when the envelope names none —
/// smaller than the CLI default so an interactive session answers fast.
pub const DAEMON_DRIFT_EPOCHS: usize = 24;

/// Parsed `fap track` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackOptions {
    /// Ring size the trajectory runs over.
    pub nodes: usize,
    /// The full control-loop configuration.
    pub config: DriftConfig,
    /// Thread fan-out for the clairvoyant solves.
    pub parallelism: Parallelism,
    /// Print the raw [`DriftReport`] as JSON instead of the table.
    pub json: bool,
}

impl Default for TrackOptions {
    fn default() -> Self {
        TrackOptions {
            nodes: 8,
            config: DriftConfig::default(),
            parallelism: Parallelism::Auto,
            json: false,
        }
    }
}

/// Reads a non-negative finite float flag value.
fn numeric_flag(
    iter: &mut std::slice::Iter<'_, String>,
    name: &str,
) -> Result<f64, String> {
    let v = iter.next().ok_or_else(|| format!("{name} requires a value"))?;
    let v: f64 = v.parse().map_err(|e| format!("bad {name} '{v}': {e}"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("{name} must be non-negative and finite"));
    }
    Ok(v)
}

/// Parses the arguments after `fap track`.
///
/// # Errors
///
/// Returns a message naming the first bad flag or value.
pub fn parse_track_args(rest: &[String]) -> Result<TrackOptions, String> {
    let mut options = TrackOptions::default();
    let mut label = "diurnal".to_string();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--drift-scenario" => {
                let l = iter
                    .next()
                    .ok_or("--drift-scenario requires diurnal|flash-crowd|step|node-churn")?;
                label = l.clone();
            }
            "--nodes" => {
                let n = iter.next().ok_or("--nodes requires a count")?;
                let n: usize = n.parse().map_err(|e| format!("bad node count '{n}': {e}"))?;
                if n < 2 {
                    return Err("--nodes must be at least 2".into());
                }
                options.nodes = n;
            }
            "--epochs" => {
                let n = iter.next().ok_or("--epochs requires a count")?;
                let n: usize = n.parse().map_err(|e| format!("bad epoch count '{n}': {e}"))?;
                if n == 0 {
                    return Err("--epochs must be at least 1".into());
                }
                options.config.epochs = n;
            }
            "--seed" => {
                let s = iter.next().ok_or("--seed requires a value")?;
                options.config.seed =
                    s.parse().map_err(|e| format!("bad seed '{s}': {e}"))?;
            }
            "--hysteresis" => {
                options.config.hysteresis = numeric_flag(&mut iter, "--hysteresis")?;
            }
            "--smoothing" => {
                options.config.smoothing = numeric_flag(&mut iter, "--smoothing")?;
            }
            "--migration-bandwidth" => {
                options.config.migration_bandwidth =
                    numeric_flag(&mut iter, "--migration-bandwidth")?;
            }
            "--threads" => {
                let n = iter.next().ok_or("--threads requires a count")?;
                let n: usize = n.parse().map_err(|e| format!("bad thread count '{n}': {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                options.parallelism = Parallelism::Fixed(n);
            }
            "--json" => options.json = true,
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    options.config.scenario = DriftScenario::preset(&label, options.config.epochs)
        .ok_or_else(|| {
            format!("unknown drift scenario '{label}' (expected diurnal|flash-crowd|step|node-churn)")
        })?;
    Ok(options)
}

/// Runs the tracking loop the options describe, recording `track.*`
/// telemetry into `recorder`.
///
/// # Errors
///
/// Returns a message for an invalid configuration or a failed epoch.
pub fn run_track(
    options: &TrackOptions,
    recorder: &mut dyn Recorder,
) -> Result<DriftReport, String> {
    let graph = topology::ring(options.nodes, 1.0).map_err(|e| e.to_string())?;
    let run = DriftRun::new(&graph, options.config.clone()).map_err(|e| e.to_string())?;
    run.run_observed(options.parallelism, recorder).map_err(|e| e.to_string())
}

/// Renders the per-epoch table and regret summary `fap track` prints.
pub fn render_track(options: &TrackOptions, report: &DriftReport) -> String {
    let mut out = String::new();
    let c = &options.config;
    let _ = writeln!(
        out,
        "scenario {} on a {}-node ring: {} epochs, seed {}, eta {}, bandwidth {}",
        report.scenario, options.nodes, c.epochs, c.seed, c.hysteresis, c.migration_bandwidth
    );
    let _ = writeln!(
        out,
        "{:>5} {:>10} {:>12} {:>12} {:>12} {:>9} {:>7} {:>6}",
        "epoch", "rate", "tracked", "clairvoyant", "static", "movement", "iters", "rounds"
    );
    for e in &report.epochs {
        let _ = writeln!(
            out,
            "{:>5} {:>10.4} {:>12.6} {:>12.6} {:>12.6} {:>9.4} {:>7} {:>6}",
            e.epoch,
            e.total_rate,
            e.tracked_utility,
            e.clairvoyant_utility,
            e.static_utility,
            e.movement,
            e.iterations,
            e.migration_rounds
        );
    }
    let _ = writeln!(
        out,
        "regret:    tracked {:.6}, static {:.6} (ratio {:.4})",
        report.tracked_regret,
        report.static_regret,
        report.regret_ratio()
    );
    let _ = writeln!(
        out,
        "migration: {:.4} mass moved in {} copies over {} rounds",
        report.total_movement, report.total_copies, report.total_rounds
    );
    out
}

fn field_f64(value: &Value, name: &str) -> Option<f64> {
    match value.get(name)? {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

fn field_usize(value: &Value, name: &str) -> Option<usize> {
    match value.get(name)? {
        Value::Int(i) if *i >= 0 => Some(*i as usize),
        Value::UInt(u) => Some(*u as usize),
        _ => None,
    }
}

/// Handles a daemon input line when it is a `{"cmd":"drift", ...}`
/// envelope: runs the tracking loop and returns the response line to
/// write. Returns `None` for every other line (including malformed JSON
/// — the daemon owns those errors).
///
/// Optional envelope fields: `scenario` (label, default `diurnal`),
/// `nodes`, `epochs` (default [`DAEMON_DRIFT_EPOCHS`]), `seed`,
/// `hysteresis`, `smoothing`, `migration_bandwidth`, `threads`.
pub fn drift_command_line(line: &str, recorder: &mut dyn Recorder) -> Option<String> {
    let value = serde_json::parse_value(line.trim()).ok()?;
    match value.get("cmd") {
        Some(Value::Str(cmd)) if cmd == "drift" => {}
        _ => return None,
    }
    Some(match drift_response(&value, recorder) {
        Ok(line) => line,
        Err(message) => {
            let mut out = String::from("{\"kind\":\"error\",\"message\":");
            push_json_str(&mut out, &format!("drift: {message}"));
            out.push('}');
            out
        }
    })
}

fn drift_response(value: &Value, recorder: &mut dyn Recorder) -> Result<String, String> {
    let mut options = TrackOptions {
        config: DriftConfig { epochs: DAEMON_DRIFT_EPOCHS, ..DriftConfig::default() },
        ..TrackOptions::default()
    };
    let label = match value.get("scenario") {
        Some(Value::Str(label)) => label.clone(),
        None => "diurnal".to_string(),
        Some(_) => return Err("scenario must be a string label".into()),
    };
    if let Some(nodes) = field_usize(value, "nodes") {
        if nodes < 2 {
            return Err("nodes must be at least 2".into());
        }
        options.nodes = nodes;
    }
    if let Some(epochs) = field_usize(value, "epochs") {
        options.config.epochs = epochs;
    }
    if let Some(seed) = field_usize(value, "seed") {
        options.config.seed = seed as u64;
    }
    if let Some(eta) = field_f64(value, "hysteresis") {
        options.config.hysteresis = eta;
    }
    if let Some(mu) = field_f64(value, "smoothing") {
        options.config.smoothing = mu;
    }
    if let Some(b) = field_f64(value, "migration_bandwidth") {
        options.config.migration_bandwidth = b;
    }
    if let Some(threads) = field_usize(value, "threads") {
        if threads == 0 {
            return Err("threads must be at least 1".into());
        }
        options.parallelism = Parallelism::Fixed(threads);
    }
    options.config.scenario = DriftScenario::preset(&label, options.config.epochs)
        .ok_or_else(|| format!("unknown scenario '{label}'"))?;
    let report = run_track(&options, recorder)?;
    Ok(drift_line(&options, &report))
}

/// The deterministic one-line JSON summary of a daemon drift run.
fn drift_line(options: &TrackOptions, report: &DriftReport) -> String {
    let mut out = String::from("{\"kind\":\"drift\",\"scenario\":");
    push_json_str(&mut out, &report.scenario);
    let _ = write!(
        out,
        ",\"nodes\":{},\"epochs\":{}",
        options.nodes,
        report.epochs.len()
    );
    for (key, value) in [
        ("tracked_regret", report.tracked_regret),
        ("static_regret", report.static_regret),
        ("regret_ratio", report.regret_ratio()),
        ("total_movement", report.total_movement),
    ] {
        out.push(',');
        push_json_str(&mut out, key);
        out.push(':');
        push_json_f64(&mut out, value);
    }
    let _ = write!(
        out,
        ",\"total_copies\":{},\"total_rounds\":{}}}",
        report.total_copies, report.total_rounds
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fap_obs::{MetricsRegistry, NoopRecorder};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parsing_covers_every_flag() {
        let options = parse_track_args(&args(&[
            "--drift-scenario",
            "step",
            "--nodes",
            "6",
            "--epochs",
            "18",
            "--seed",
            "11",
            "--hysteresis",
            "0.01",
            "--smoothing",
            "0.005",
            "--migration-bandwidth",
            "0.5",
            "--threads",
            "3",
            "--json",
        ]))
        .unwrap();
        assert_eq!(options.nodes, 6);
        assert_eq!(options.config.epochs, 18);
        assert_eq!(options.config.seed, 11);
        assert_eq!(options.config.hysteresis, 0.01);
        assert_eq!(options.config.smoothing, 0.005);
        assert_eq!(options.config.migration_bandwidth, 0.5);
        assert_eq!(options.parallelism, Parallelism::Fixed(3));
        assert!(options.json);
        assert_eq!(options.config.scenario.label(), "step");
    }

    #[test]
    fn bad_flags_are_rejected_with_messages() {
        assert!(parse_track_args(&args(&["--drift-scenario", "teleport"]))
            .unwrap_err()
            .contains("unknown drift scenario"));
        assert!(parse_track_args(&args(&["--nodes", "1"])).unwrap_err().contains("at least 2"));
        assert!(parse_track_args(&args(&["--epochs", "0"])).unwrap_err().contains("at least 1"));
        assert!(parse_track_args(&args(&["--hysteresis", "-1"]))
            .unwrap_err()
            .contains("non-negative"));
        assert!(parse_track_args(&args(&["--frobnicate"])).unwrap_err().contains("unexpected"));
    }

    #[test]
    fn the_default_run_tracks_and_renders() {
        let mut options = parse_track_args(&args(&["--epochs", "10", "--nodes", "5"])).unwrap();
        options.parallelism = Parallelism::Sequential;
        let report = run_track(&options, &mut NoopRecorder).unwrap();
        assert_eq!(report.epochs.len(), 10);
        let rendered = render_track(&options, &report);
        assert!(rendered.contains("scenario diurnal on a 5-node ring"));
        assert!(rendered.contains("regret:"), "{rendered}");
        assert!(rendered.contains("migration:"), "{rendered}");
        assert_eq!(rendered.lines().count(), 2 + 10 + 2, "header, table, summary");
    }

    #[test]
    fn drift_commands_answer_with_a_summary_line_and_metrics() {
        let mut registry = MetricsRegistry::new();
        let line = drift_command_line(
            "{\"cmd\":\"drift\",\"scenario\":\"diurnal\",\"nodes\":5,\"epochs\":8,\"threads\":1}",
            &mut registry,
        )
        .expect("drift command must be handled");
        assert!(line.starts_with("{\"kind\":\"drift\",\"scenario\":\"diurnal\""), "{line}");
        assert!(line.contains("\"epochs\":8"), "{line}");
        assert!(line.contains("\"regret_ratio\":"), "{line}");
        assert!(!line.contains('\n'));
        assert_eq!(registry.counter("track.epochs"), 8);

        // Identical envelopes must answer byte-identically.
        let again = drift_command_line(
            "{\"cmd\":\"drift\",\"scenario\":\"diurnal\",\"nodes\":5,\"epochs\":8,\"threads\":1}",
            &mut NoopRecorder,
        )
        .unwrap();
        assert_eq!(line, again);
    }

    #[test]
    fn non_drift_lines_pass_through_and_bad_fields_error_inline() {
        assert!(drift_command_line("{\"cmd\":\"status\"}", &mut NoopRecorder).is_none());
        assert!(drift_command_line("{\"at\":0,\"batch\":[]}", &mut NoopRecorder).is_none());
        assert!(drift_command_line("not json", &mut NoopRecorder).is_none());
        let err = drift_command_line(
            "{\"cmd\":\"drift\",\"scenario\":\"teleport\"}",
            &mut NoopRecorder,
        )
        .unwrap();
        assert!(err.starts_with("{\"kind\":\"error\""), "{err}");
        assert!(err.contains("unknown scenario"), "{err}");
    }
}
