//! Pluggable time sources and span timing.
//!
//! Two clocks matter in this system. Benchmarks and the parallel kernels
//! time real work with the [`WallClock`]; the deterministic simulator runs
//! on *virtual* time (its round counter), so everything it records —
//! event timestamps, latency histograms — is reproducible bit-for-bit
//! under a fixed seed. Both implement [`Clock`], and [`Timer`]/[`Span`]
//! work over either.

use std::cell::Cell;
use std::time::Instant;

use crate::recorder::Recorder;

/// A monotonic time source measured in ticks.
///
/// For the [`WallClock`] a tick is a nanosecond since clock creation; for
/// the [`VirtualClock`] it is whatever unit the driver advances it in
/// (the chaos simulator uses protocol rounds).
pub trait Clock {
    /// The current time in ticks.
    fn now(&self) -> u64;
}

/// Wall time: nanoseconds elapsed since the clock was created.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Deterministic time advanced explicitly by its driver.
///
/// The chaos simulator sets this to its round counter, so every timestamp
/// and latency it records is a pure function of the seed.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Cell<u64>,
}

impl VirtualClock {
    /// A virtual clock starting at tick 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves the clock to `tick` (never backwards).
    pub fn set(&self, tick: u64) {
        if tick > self.now.get() {
            self.now.set(tick);
        }
    }

    /// Advances the clock by `ticks`.
    pub fn advance(&self, ticks: u64) {
        self.now.set(self.now.get().saturating_add(ticks));
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> u64 {
        self.now.get()
    }
}

/// A stopwatch over any [`Clock`].
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: u64,
}

impl Timer {
    /// Starts timing at `clock`'s current tick.
    pub fn start(clock: &dyn Clock) -> Self {
        Timer { start: clock.now() }
    }

    /// Ticks elapsed since the timer started.
    pub fn elapsed(&self, clock: &dyn Clock) -> u64 {
        clock.now().saturating_sub(self.start)
    }
}

/// A named timed region: started against a clock, finished into a
/// [`Recorder`] histogram of the same name.
///
/// ```
/// use fap_obs::{Clock, MetricsRegistry, Recorder, Span, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let mut registry = MetricsRegistry::new();
/// let span = Span::begin("demo.phase", &clock);
/// clock.advance(3);
/// assert_eq!(span.end(&clock, &mut registry), 3);
/// assert_eq!(registry.histogram("demo.phase").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Span {
    name: &'static str,
    timer: Timer,
}

impl Span {
    /// Opens a span named `name` at `clock`'s current tick.
    pub fn begin(name: &'static str, clock: &dyn Clock) -> Self {
        Span { name, timer: Timer::start(clock) }
    }

    /// Closes the span, recording its duration into the recorder's
    /// histogram `name` and returning the elapsed ticks.
    pub fn end(self, clock: &dyn Clock, recorder: &mut dyn Recorder) -> u64 {
        let elapsed = self.timer.elapsed(clock);
        recorder.observe(self.name, elapsed as f64);
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn virtual_clock_is_driver_controlled_and_monotone() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), 0);
        clock.set(5);
        assert_eq!(clock.now(), 5);
        clock.set(2); // never backwards
        assert_eq!(clock.now(), 5);
        clock.advance(3);
        assert_eq!(clock.now(), 8);
    }

    #[test]
    fn wall_clock_is_monotone_nondecreasing() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn timer_measures_virtual_ticks_exactly() {
        let clock = VirtualClock::new();
        clock.set(10);
        let timer = Timer::start(&clock);
        clock.set(17);
        assert_eq!(timer.elapsed(&clock), 7);
    }

    #[test]
    fn span_records_into_named_histogram() {
        let clock = VirtualClock::new();
        let mut registry = MetricsRegistry::new();
        let span = Span::begin("phase", &clock);
        clock.advance(4);
        let elapsed = span.end(&clock, &mut registry);
        assert_eq!(elapsed, 4);
        let hist = registry.histogram("phase").unwrap();
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), 4.0);
    }
}
