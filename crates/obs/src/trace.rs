//! Causal tracing: deterministic span contexts, RAII-style span guards,
//! and a bounded flight recorder with slowest-k tail sampling.
//!
//! The metric stream answers "how much"; it cannot answer "where did THIS
//! request's time go" once work flows through the work-stealing scheduler
//! and the hierarchical solver. This module adds the causal layer:
//!
//! * [`TraceContext`] — `trace_id` / `span_id` / `parent_id` triples.
//!   Ids come from a per-sink counter
//!   ([`Recorder::reserve_span_ids`]), never from entropy, so a seeded
//!   run produces byte-identical span events. A root span's `trace_id`
//!   **is** its `span_id`; `parent_id == 0` marks a root.
//! * [`SpanGuard`] — begins a span (emitting a `span_start` event carrying
//!   the causal ids), installs itself as the recorder's current context so
//!   nested guards become children, and on [`SpanGuard::end`] emits
//!   `span_end` with the span's tick duration and restores the previous
//!   context. When [`Recorder::trace_enabled`] is `false` the guard is
//!   disarmed: no ids are reserved, no events are emitted, and nothing is
//!   allocated — the zero-allocation steady-state contract holds with a
//!   [`NoopRecorder`](crate::NoopRecorder).
//! * [`FlightRecorder`] — an always-on, bounded sink for a long-lived
//!   daemon: it watches the `span_start`/`span_end` stream, keeps a ring
//!   buffer of recently completed traces, *pins the slowest-k traces of
//!   every window of `window` completions* (deterministic tail sampling —
//!   ties break toward the earlier trace id), and accumulates per-layer
//!   **self time** (a span's duration minus its direct children's), keyed
//!   by the span-name prefix before the first `.`.
//!
//! Span events are ordinary [`EventRecord`](crate::EventRecord)s, so they
//! flow through every existing sink — `Telemetry`, `JsonlSink`, `Tee` —
//! and land in the same JSONL exports `fap trace` parses back.

use std::collections::VecDeque;

use crate::event::Value;
use crate::recorder::Recorder;

/// The causal identity of one span: which trace it belongs to, its own id,
/// and its parent's id (`0` for a root span).
///
/// Ids are allocated deterministically from a per-sink counter starting at
/// 1, so `0` is never a real span id and can serve as the "no parent"
/// sentinel. A root's `trace_id` equals its `span_id`, which keeps trace
/// ids unique without a second counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The id of the trace this span belongs to (== the root's span id).
    pub trace_id: u64,
    /// This span's own id, unique within the sink's lifetime.
    pub span_id: u64,
    /// The direct parent's span id, or `0` for a root span.
    pub parent_id: u64,
}

impl TraceContext {
    /// A root context: starts a new trace whose id is the span's own id.
    pub fn root(span_id: u64) -> Self {
        TraceContext { trace_id: span_id, span_id, parent_id: 0 }
    }

    /// A child context under `self`, in the same trace.
    pub fn child(&self, span_id: u64) -> Self {
        TraceContext { trace_id: self.trace_id, span_id, parent_id: self.span_id }
    }
}

/// The span-start event name carried on the wire.
pub const SPAN_START: &str = "span_start";
/// The span-end event name carried on the wire.
pub const SPAN_END: &str = "span_end";

/// An explicit-scope span: [`SpanGuard::begin`] emits `span_start` and
/// installs the context; [`SpanGuard::end`] emits `span_end` with the
/// elapsed ticks and restores the previous context.
///
/// The end is explicit (not `Drop`) because the guard does not hold the
/// `&mut dyn Recorder` — instrumented code keeps using the recorder
/// between begin and end.
#[derive(Debug)]
#[must_use = "a span must be ended to emit its span_end event"]
pub struct SpanGuard {
    ctx: Option<TraceContext>,
    prev: Option<TraceContext>,
    name: &'static str,
    start: u64,
}

impl SpanGuard {
    /// Starts a span named `name`. With tracing disabled on `recorder`
    /// this is a no-op returning a disarmed guard (no reservation, no
    /// event, no allocation).
    pub fn begin(name: &'static str, recorder: &mut dyn Recorder) -> SpanGuard {
        if !recorder.trace_enabled() {
            return SpanGuard { ctx: None, prev: None, name, start: 0 };
        }
        let prev = recorder.current_trace();
        let span_id = recorder.reserve_span_ids(1);
        let ctx = match prev {
            Some(parent) => parent.child(span_id),
            None => TraceContext::root(span_id),
        };
        let start = recorder.now();
        recorder.emit(
            SPAN_START,
            &[
                ("name", Value::Str(name)),
                ("trace", Value::U64(ctx.trace_id)),
                ("span", Value::U64(ctx.span_id)),
                ("parent", Value::U64(ctx.parent_id)),
            ],
        );
        recorder.set_current_trace(Some(ctx));
        SpanGuard { ctx: Some(ctx), prev, name, start }
    }

    /// The context this guard installed, if armed.
    pub fn context(&self) -> Option<TraceContext> {
        self.ctx
    }

    /// Ends the span: emits `span_end` with the tick duration and restores
    /// the context that was current before [`SpanGuard::begin`].
    pub fn end(self, recorder: &mut dyn Recorder) {
        let Some(ctx) = self.ctx else { return };
        let dur = recorder.now().saturating_sub(self.start);
        recorder.emit(
            SPAN_END,
            &[
                ("name", Value::Str(self.name)),
                ("trace", Value::U64(ctx.trace_id)),
                ("span", Value::U64(ctx.span_id)),
                ("parent", Value::U64(ctx.parent_id)),
                ("dur", Value::U64(dur)),
            ],
        );
        recorder.set_current_trace(self.prev);
    }
}

/// Emits just the `span_start` half of a synthesized span at tick `t` —
/// for spans whose children are emitted between the start and the end.
pub fn emit_span_start(
    recorder: &mut dyn Recorder,
    name: &'static str,
    ctx: TraceContext,
    t: u64,
) {
    recorder.emit_at(
        t,
        SPAN_START,
        &[
            ("name", Value::Str(name)),
            ("trace", Value::U64(ctx.trace_id)),
            ("span", Value::U64(ctx.span_id)),
            ("parent", Value::U64(ctx.parent_id)),
        ],
    );
}

/// Emits just the `span_end` half of a synthesized span at tick `t` with
/// an explicit duration. Every child's end must be emitted before its
/// parent's — the order the flight recorder's self-time bookkeeping (and
/// every producer in this workspace) maintains.
pub fn emit_span_end(
    recorder: &mut dyn Recorder,
    name: &'static str,
    ctx: TraceContext,
    t: u64,
    dur: u64,
) {
    recorder.emit_at(
        t,
        SPAN_END,
        &[
            ("name", Value::Str(name)),
            ("trace", Value::U64(ctx.trace_id)),
            ("span", Value::U64(ctx.span_id)),
            ("parent", Value::U64(ctx.parent_id)),
            ("dur", Value::U64(dur)),
        ],
    );
}

/// Emits a fully-formed span (start + end) at explicit ticks — the
/// synthesis primitive for layers that reconstruct a deterministic span
/// timeline after the fact (the serve scheduler emits its task spans
/// post-join so the event stream is shard-count independent).
pub fn emit_span(
    recorder: &mut dyn Recorder,
    name: &'static str,
    ctx: TraceContext,
    start: u64,
    end: u64,
) {
    emit_span_start(recorder, name, ctx, start);
    emit_span_end(recorder, name, ctx, end, end.saturating_sub(start));
}

/// Emits a zero-width span at the recorder's current tick, parented under
/// the installed current trace (a new root when none is installed). This
/// is the cheap "something happened here" marker the substrate layers use
/// for cache hits and misses: zero duration means zero self time, so
/// markers annotate a trace without distorting its time attribution.
///
/// Returns the minted context, or `None` (and does nothing) when tracing
/// is disabled.
pub fn emit_marker_span(
    recorder: &mut dyn Recorder,
    name: &'static str,
) -> Option<TraceContext> {
    if !recorder.trace_enabled() {
        return None;
    }
    let span_id = recorder.reserve_span_ids(1);
    let ctx = match recorder.current_trace() {
        Some(parent) => parent.child(span_id),
        None => TraceContext::root(span_id),
    };
    let t = recorder.now();
    emit_span(recorder, name, ctx, t, t);
    Some(ctx)
}

/// A completed root span, as retained by the [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// The trace id (== the root span's id).
    pub trace_id: u64,
    /// The root span's name.
    pub name: &'static str,
    /// The root span's start tick.
    pub start: u64,
    /// The root span's duration in ticks.
    pub dur: u64,
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    trace: u64,
    span: u64,
    parent: u64,
    name: &'static str,
    start: u64,
}

/// The layer prefix of a span name: everything before the first `.`
/// (`"serve.task"` → `"serve"`). Subslicing a `&'static str` keeps the
/// `'static` lifetime, so layers never allocate.
pub fn layer_of(name: &'static str) -> &'static str {
    match name.find('.') {
        Some(dot) => &name[..dot],
        None => name,
    }
}

/// How many tail-sampling windows of slowest-k traces the recorder pins
/// before the oldest window's picks are evicted.
pub const KEPT_WINDOWS: usize = 8;

/// An always-on, bounded tracing sink for long-lived processes.
///
/// It is a full [`Recorder`] (tracing enabled, its own deterministic span
/// id counter) that interprets the `span_start`/`span_end` stream:
///
/// * a **ring buffer** of the most recently completed traces (bounded);
/// * deterministic **tail sampling**: for every window of `window`
///   completed traces, the slowest `keep` are pinned (ties break toward
///   the smaller trace id); pins from the oldest windows are evicted once
///   [`KEPT_WINDOWS`] windows accumulate, so memory stays bounded forever;
/// * per-layer **self time**: each ended span adds its duration to its
///   layer and subtracts it from its parent's layer, so the totals
///   attribute every tick to the deepest span that actually spent it.
///
/// Metric calls (counters, gauges, histograms, sketches) are ignored —
/// pair it with a [`MetricsRegistry`](crate::MetricsRegistry) through a
/// [`Tee`](crate::Tee) when both are wanted.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    tick: u64,
    next_span_id: u64,
    current: Option<TraceContext>,
    inflight: Vec<Inflight>,
    recent: VecDeque<TraceSummary>,
    recent_cap: usize,
    window: usize,
    keep: usize,
    window_buf: Vec<TraceSummary>,
    kept: VecDeque<TraceSummary>,
    // Signed: a child's end subtracts from its parent's layer, which may
    // go transiently negative until the parent's own end lands.
    layers: Vec<(&'static str, i64)>,
    completed: u64,
    dropped: u64,
}

/// The most in-flight (started, unended) spans the recorder tracks; spans
/// started past the cap are counted in [`FlightRecorder::dropped_spans`].
const MAX_INFLIGHT: usize = 4096;

impl FlightRecorder {
    /// A recorder keeping a ring of the last `recent` completed traces and
    /// pinning the slowest `keep` per window of `window` completions.
    /// Zeros are clamped to 1.
    pub fn new(recent: usize, window: usize, keep: usize) -> Self {
        FlightRecorder {
            tick: 0,
            next_span_id: 1,
            current: None,
            inflight: Vec::new(),
            recent: VecDeque::new(),
            recent_cap: recent.max(1),
            window: window.max(1),
            keep: keep.max(1),
            window_buf: Vec::new(),
            kept: VecDeque::new(),
            layers: Vec::new(),
            completed: 0,
            dropped: 0,
        }
    }

    /// The most recently completed traces, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &TraceSummary> {
        self.recent.iter()
    }

    /// The tail-sampled slowest traces, oldest window first; within a
    /// window, slowest first.
    pub fn slowest(&self) -> impl Iterator<Item = &TraceSummary> {
        self.kept.iter()
    }

    /// Accumulated per-layer self time in ticks, in first-seen order.
    /// Layers whose spans are still in flight may read transiently low.
    pub fn layer_self_times(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.layers.iter().map(|(l, v)| (*l, (*v).max(0) as u64))
    }

    /// Self time accumulated for one layer.
    pub fn layer_self_time(&self, layer: &str) -> u64 {
        self.layers
            .iter()
            .find(|(l, _)| *l == layer)
            .map(|(_, v)| (*v).max(0) as u64)
            .unwrap_or(0)
    }

    /// Total root spans completed over the recorder's lifetime.
    pub fn completed_traces(&self) -> u64 {
        self.completed
    }

    /// Spans dropped because the in-flight table was full.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped
    }

    fn layer_add(&mut self, layer: &'static str, delta: i64) {
        match self.layers.iter_mut().find(|(l, _)| *l == layer) {
            Some((_, v)) => *v += delta,
            None => self.layers.push((layer, delta)),
        }
    }

    fn span_started(&mut self, span: Inflight) {
        if self.inflight.len() >= MAX_INFLIGHT {
            self.dropped += 1;
            return;
        }
        self.inflight.push(span);
    }

    fn span_ended(&mut self, trace: u64, span: u64, dur: u64) {
        // Ends usually match the most recent start — scan from the back.
        let Some(pos) =
            self.inflight.iter().rposition(|s| s.trace == trace && s.span == span)
        else {
            return;
        };
        let ended = self.inflight.swap_remove(pos);
        // Self-time bookkeeping: this span owns its ticks until a deeper
        // span claims them; its parent gives the same ticks up. Children
        // end before their parents, so the parent is still in flight here.
        self.layer_add(layer_of(ended.name), dur as i64);
        if ended.parent != 0 {
            if let Some(parent) =
                self.inflight.iter().find(|s| s.trace == trace && s.span == ended.parent)
            {
                let parent_layer = layer_of(parent.name);
                self.layer_add(parent_layer, -(dur as i64));
            }
        }
        if ended.parent == 0 {
            self.trace_completed(TraceSummary {
                trace_id: trace,
                name: ended.name,
                start: ended.start,
                dur,
            });
        }
    }

    fn trace_completed(&mut self, summary: TraceSummary) {
        self.completed += 1;
        if self.recent.len() == self.recent_cap {
            self.recent.pop_front();
        }
        self.recent.push_back(summary);
        self.window_buf.push(summary);
        if self.window_buf.len() >= self.window {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        // Slowest first; ties break toward the earlier (smaller) trace id,
        // so sampling is a pure function of the recorded stream.
        self.window_buf
            .sort_by(|a, b| b.dur.cmp(&a.dur).then(a.trace_id.cmp(&b.trace_id)));
        self.window_buf.truncate(self.keep);
        while self.kept.len() + self.window_buf.len() > self.keep * KEPT_WINDOWS {
            self.kept.pop_front();
        }
        for s in self.window_buf.drain(..) {
            self.kept.push_back(s);
        }
    }

    fn field_u64(fields: &[(&'static str, Value)], key: &str) -> Option<u64> {
        fields.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
            Value::U64(n) => Some(*n),
            _ => None,
        })
    }

    fn field_str(fields: &[(&'static str, Value)], key: &str) -> Option<&'static str> {
        fields.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
            Value::Str(s) => Some(*s),
            _ => None,
        })
    }
}

impl Default for FlightRecorder {
    /// The daemon's defaults: a 64-trace ring, slowest-4 per 32-trace
    /// window.
    fn default() -> Self {
        FlightRecorder::new(64, 32, 4)
    }
}

impl Recorder for FlightRecorder {
    fn set_time(&mut self, tick: u64) {
        if tick > self.tick {
            self.tick = tick;
        }
    }

    fn trace_enabled(&self) -> bool {
        true
    }

    fn reserve_span_ids(&mut self, count: u64) -> u64 {
        let first = self.next_span_id;
        self.next_span_id += count;
        first
    }

    fn now(&self) -> u64 {
        self.tick
    }

    fn current_trace(&self) -> Option<TraceContext> {
        self.current
    }

    fn set_current_trace(&mut self, ctx: Option<TraceContext>) {
        self.current = ctx;
    }

    fn emit(&mut self, name: &'static str, fields: &[(&'static str, Value)]) {
        let t = self.tick;
        self.emit_at(t, name, fields);
    }

    fn emit_at(&mut self, t: u64, name: &'static str, fields: &[(&'static str, Value)]) {
        self.set_time(t);
        let (Some(trace), Some(span), Some(span_name)) = (
            Self::field_u64(fields, "trace"),
            Self::field_u64(fields, "span"),
            Self::field_str(fields, "name"),
        ) else {
            return;
        };
        match name {
            SPAN_START => {
                let parent = Self::field_u64(fields, "parent").unwrap_or(0);
                self.span_started(Inflight {
                    trace,
                    span,
                    parent,
                    name: span_name,
                    start: t,
                });
            }
            SPAN_END => {
                let dur = Self::field_u64(fields, "dur").unwrap_or(0);
                self.span_ended(trace, span, dur);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::NoopRecorder;
    use crate::telemetry::Telemetry;

    #[test]
    fn guards_nest_and_carry_causal_ids() {
        let mut tele = Telemetry::manual().with_tracing(true);
        tele.set_time(10);
        let root = SpanGuard::begin("served.request", &mut tele);
        tele.set_time(12);
        let inner = SpanGuard::begin("econ.solve", &mut tele);
        tele.set_time(19);
        inner.end(&mut tele);
        tele.set_time(20);
        root.end(&mut tele);

        let events = tele.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].name(), SPAN_START);
        assert_eq!(events[0].field("trace"), Some(Value::U64(1)));
        assert_eq!(events[0].field("span"), Some(Value::U64(1)));
        assert_eq!(events[0].field("parent"), Some(Value::U64(0)));
        // The inner span is a child of the root, in the same trace.
        assert_eq!(events[1].field("trace"), Some(Value::U64(1)));
        assert_eq!(events[1].field("span"), Some(Value::U64(2)));
        assert_eq!(events[1].field("parent"), Some(Value::U64(1)));
        // Durations are virtual-tick differences.
        assert_eq!(events[2].name(), SPAN_END);
        assert_eq!(events[2].field("dur"), Some(Value::U64(7)));
        assert_eq!(events[3].field("dur"), Some(Value::U64(10)));
        // The context stack unwound completely.
        assert_eq!(tele.current_trace(), None);
    }

    #[test]
    fn sibling_spans_share_the_parent_not_each_other() {
        let mut tele = Telemetry::manual().with_tracing(true);
        let root = SpanGuard::begin("a", &mut tele);
        let first = SpanGuard::begin("b", &mut tele);
        first.end(&mut tele);
        let second = SpanGuard::begin("c", &mut tele);
        second.end(&mut tele);
        root.end(&mut tele);
        let starts: Vec<u64> = tele
            .events()
            .iter()
            .filter(|e| e.name() == SPAN_START)
            .map(|e| match e.field("parent") {
                Some(Value::U64(p)) => p,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(starts, vec![0, 1, 1]);
    }

    #[test]
    fn marker_spans_are_zero_width_children() {
        let mut tele = Telemetry::manual().with_tracing(true);
        tele.set_time(5);
        let root = SpanGuard::begin("served.request", &mut tele);
        let marker = emit_marker_span(&mut tele, "cache.hit").expect("tracing on");
        assert_eq!(marker.parent_id, root.context().unwrap().span_id);
        root.end(&mut tele);
        // start + end at the same tick, zero duration.
        let ends: Vec<_> =
            tele.events().iter().filter(|e| e.name() == SPAN_END).collect();
        assert_eq!(ends[0].field("name"), Some(Value::Str("cache.hit")));
        assert_eq!(ends[0].field("dur"), Some(Value::U64(0)));
        assert_eq!(ends[0].time(), 5);
        // Disabled: no-op, no ids burned.
        let mut off = Telemetry::manual();
        assert_eq!(emit_marker_span(&mut off, "cache.hit"), None);
        assert!(off.events().is_empty());
    }

    #[test]
    fn disabled_tracing_emits_nothing() {
        let mut tele = Telemetry::manual(); // tracing off by default
        let g = SpanGuard::begin("x", &mut tele);
        g.end(&mut tele);
        assert!(tele.events().is_empty());
        let mut noop = NoopRecorder;
        let g = SpanGuard::begin("x", &mut noop);
        assert_eq!(g.context(), None);
        g.end(&mut noop);
    }

    #[test]
    fn identical_runs_allocate_identical_ids() {
        let run = || {
            let mut tele = Telemetry::manual().with_tracing(true);
            let a = SpanGuard::begin("a", &mut tele);
            let b = SpanGuard::begin("b", &mut tele);
            b.end(&mut tele);
            a.end(&mut tele);
            tele.to_jsonl()
        };
        assert_eq!(run(), run());
    }

    fn synth_trace(fr: &mut FlightRecorder, start: u64, dur: u64) -> u64 {
        let root_id = fr.reserve_span_ids(2);
        let root = TraceContext::root(root_id);
        emit_span(fr, "served.request", root, start, start + dur);
        root_id
    }

    #[test]
    fn flight_recorder_rings_and_counts() {
        let mut fr = FlightRecorder::new(3, 100, 1);
        for i in 0..5 {
            synth_trace(&mut fr, i * 10, i + 1);
        }
        assert_eq!(fr.completed_traces(), 5);
        let recent: Vec<u64> = fr.recent().map(|s| s.dur).collect();
        assert_eq!(recent, vec![3, 4, 5], "ring keeps only the newest 3");
    }

    #[test]
    fn tail_sampling_keeps_the_slowest_k_per_window() {
        let mut fr = FlightRecorder::new(4, 4, 2);
        // Window 1: durations 5, 1, 9, 3 → keep 9, 5.
        for d in [5, 1, 9, 3] {
            synth_trace(&mut fr, 0, d);
        }
        // Window 2: durations 2, 2, 8, 2 → keep 8, then the earlier 2.
        let mut ids = Vec::new();
        for d in [2, 2, 8, 2] {
            ids.push(synth_trace(&mut fr, 100, d));
        }
        let kept: Vec<(u64, u64)> = fr.slowest().map(|s| (s.dur, s.trace_id)).collect();
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].0, 9);
        assert_eq!(kept[1].0, 5);
        assert_eq!(kept[2].0, 8);
        // The duration-2 tie resolves to the smallest trace id.
        assert_eq!(kept[3], (2, ids[0]));
    }

    #[test]
    fn self_time_attributes_ticks_to_the_deepest_span() {
        let mut fr = FlightRecorder::default();
        let ids = fr.reserve_span_ids(3);
        let root = TraceContext::root(ids);
        let solve = root.child(ids + 1);
        let cache = solve.child(ids + 2);
        // Root [0,20] wraps solve [5,17] wraps cache [6,9]; ends are
        // emitted children-first, as every producer in this workspace does.
        fr.emit_at(0, SPAN_START, &span_fields("served.request", root, None));
        fr.emit_at(5, SPAN_START, &span_fields("econ.solve", solve, None));
        fr.emit_at(6, SPAN_START, &span_fields("cache.lookup", cache, None));
        fr.emit_at(9, SPAN_END, &span_fields("cache.lookup", cache, Some(3)));
        fr.emit_at(17, SPAN_END, &span_fields("econ.solve", solve, Some(12)));
        fr.emit_at(20, SPAN_END, &span_fields("served.request", root, Some(20)));
        assert_eq!(fr.layer_self_time("cache"), 3);
        assert_eq!(fr.layer_self_time("econ"), 9);
        assert_eq!(fr.layer_self_time("served"), 8);
        // Self times partition the root's duration exactly.
        let total: u64 = fr.layer_self_times().map(|(_, v)| v).sum();
        assert_eq!(total, 20);
    }

    fn span_fields(
        name: &'static str,
        ctx: TraceContext,
        dur: Option<u64>,
    ) -> Vec<(&'static str, Value)> {
        let mut fields = vec![
            ("name", Value::Str(name)),
            ("trace", Value::U64(ctx.trace_id)),
            ("span", Value::U64(ctx.span_id)),
            ("parent", Value::U64(ctx.parent_id)),
        ];
        if let Some(d) = dur {
            fields.push(("dur", Value::U64(d)));
        }
        fields
    }

    #[test]
    fn layer_of_strips_after_the_first_dot() {
        assert_eq!(layer_of("serve.task"), "serve");
        assert_eq!(layer_of("net.landmark.row"), "net");
        assert_eq!(layer_of("flat"), "flat");
    }
}
