//! # fap-obs — structured telemetry for the file-allocation system
//!
//! The paper's algorithm is iterative and decentralized: its health is
//! visible only through per-iteration signals — utility monotonicity
//! (Theorem 1), the step-size stability margin (Theorem 2), active-set
//! churn from the "set A" projection, and, on an unreliable network, the
//! fault mix the channel injects. This crate is the substrate that makes
//! those signals observable without perturbing the thing being observed:
//!
//! * [`MetricsRegistry`] — counters, gauges, fixed-bucket [`Histogram`]s
//!   and log-bucketed [`QuantileSketch`]es, addressed by `&'static str`
//!   names. Lookup is a linear scan over a small vector, so steady-state
//!   updates allocate nothing. Sketches keep bounded *relative* quantile
//!   error over arbitrary value ranges and merge losslessly, which is what
//!   a long-lived daemon needs to keep p99 resolution across batches.
//! * [`Clock`] / [`WallClock`] / [`VirtualClock`] — pluggable time.
//!   Benches time with the wall clock; the deterministic simulator drives
//!   a virtual clock from its round counter, so recorded timelines are
//!   reproducible bit-for-bit.
//! * [`Timer`] and [`Span`] — lightweight span timing over any clock.
//! * [`Recorder`] — the handle the solver, simulator and parallel kernels
//!   record through. [`NoopRecorder`] compiles to nothing (every default
//!   method is empty and `is_enabled` returns `false`, letting hot paths
//!   skip even the measurement arithmetic); [`Tee`] fans one instrument
//!   stream out to two recorders.
//! * [`EventRecord`] — a structured event with a fixed-capacity inline
//!   field buffer (`Copy`, no per-event heap), collected by the in-memory
//!   sink inside [`Telemetry`] and rendered to JSONL by
//!   [`Telemetry::to_jsonl`]. [`jsonl`] also parses the format back, so
//!   `fap report` can replay a recorded run offline. [`JsonlSink`] is the
//!   streaming counterpart for long runs: events flush to any
//!   `io::Write` every N events with bounded memory, byte-identical to
//!   the buffered export.
//! * [`TraceContext`] / [`SpanGuard`] / [`FlightRecorder`] — the causal
//!   tracing plane: deterministic
//!   `trace/span/parent` id triples from a per-sink counter, span
//!   guards that emit `span_start`/`span_end` events through any
//!   recorder (disarmed to nothing when
//!   [`Recorder::trace_enabled`] is off), and an always-on bounded
//!   flight recorder with slowest-k tail sampling and per-layer
//!   self-time accounting for long-lived daemons. `fap trace` parses
//!   the span stream back out of the same JSONL exports.
//!
//! Determinism contract: with a [`VirtualClock`] (or [`Telemetry::manual`])
//! and a seeded run, two identical runs produce byte-identical JSONL.
//! Everything in this crate is plain `std` — no external dependencies, not
//! even the vendored shims.
//!
//! ```
//! use fap_obs::{Recorder, Telemetry, Value};
//!
//! let mut tele = Telemetry::manual();
//! tele.set_time(3);
//! tele.incr("demo.steps", 2);
//! tele.observe("demo.latency_rounds", 1.0);
//! tele.emit("round", &[("round", Value::U64(3)), ("fresh", Value::Bool(true))]);
//! let jsonl = tele.to_jsonl();
//! assert!(jsonl.contains(r#"{"t":3,"event":"round","round":3,"fresh":true}"#));
//! assert_eq!(tele.registry().counter("demo.steps"), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod event;
pub mod jsonl;
mod metrics;
mod recorder;
mod sketch;
mod stream;
mod telemetry;
mod trace;

pub use clock::{Clock, Span, Timer, VirtualClock, WallClock};
pub use event::{EventRecord, Value, MAX_EVENT_FIELDS};
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{NoopRecorder, Recorder, Tee};
pub use sketch::{
    QuantileSketch, DEFAULT_SKETCH_ACCURACY, MAX_SKETCH_ACCURACY, MIN_SKETCH_ACCURACY,
};
pub use stream::JsonlSink;
pub use telemetry::Telemetry;
pub use trace::{
    emit_marker_span, emit_span, emit_span_end, emit_span_start, layer_of, FlightRecorder,
    SpanGuard, TraceContext, TraceSummary, KEPT_WINDOWS, SPAN_END, SPAN_START,
};
