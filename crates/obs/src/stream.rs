//! The incremental JSONL sink: bounded-memory event export for long runs.
//!
//! [`Telemetry`](crate::Telemetry) keeps every [`EventRecord`] in memory
//! until the run ends, which is the right trade for short seeded runs
//! (byte-identity is trivially checkable against the in-memory stream) but
//! grows without bound on long serving runs. [`JsonlSink`] is the
//! streaming counterpart: events are rendered to JSONL as they are
//! emitted, buffered in a reusable `String`, and flushed to the underlying
//! [`io::Write`] every `flush_every` events. Metrics still accumulate in a
//! [`MetricsRegistry`] (they are tiny), and [`JsonlSink::finish`] appends
//! the registry snapshot after the last event — exactly the layout
//! [`Telemetry::to_jsonl`](crate::Telemetry::to_jsonl) produces.
//!
//! **Byte-identity contract:** for the same recorded stream, the bytes a
//! `JsonlSink` writes are identical to the buffered export, for every
//! `flush_every` — flushing only moves *when* bytes reach the writer,
//! never what they are. Seeded runs therefore stay byte-reproducible
//! through the streaming path (pinned by the tests below and by
//! `tests/telemetry.rs`).

use std::io::{self, Write};

use crate::event::{EventRecord, Value};
use crate::jsonl;
use crate::metrics::{Histogram, MetricsRegistry};
use crate::recorder::Recorder;
use crate::sketch::QuantileSketch;
use crate::trace::TraceContext;

/// A [`Recorder`] that streams events to an [`io::Write`] as JSONL,
/// flushing every `flush_every` events, while metrics accumulate in an
/// internal [`MetricsRegistry`].
///
/// Timestamps are virtual ([`Recorder::set_time`]-driven, monotone), the
/// same deterministic mode as [`Telemetry::manual`](crate::Telemetry::manual).
/// I/O errors are deferred: recording never panics; the first error is
/// stored and reported by [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    registry: MetricsRegistry,
    buffer: String,
    buffered_events: usize,
    flush_every: usize,
    tick: u64,
    events: u64,
    error: Option<io::Error>,
    tracing: bool,
    next_span_id: u64,
    current: Option<TraceContext>,
}

impl<W: Write> JsonlSink<W> {
    /// A sink flushing to `writer` every `flush_every` events
    /// (`0` is treated as `1` — flush on every event).
    pub fn new(writer: W, flush_every: usize) -> Self {
        JsonlSink {
            writer,
            registry: MetricsRegistry::new(),
            buffer: String::new(),
            buffered_events: 0,
            flush_every: flush_every.max(1),
            tick: 0,
            events: 0,
            error: None,
            tracing: false,
            next_span_id: 1,
            current: None,
        }
    }

    /// Enables (or disables) tracing, mirroring
    /// [`Telemetry::with_tracing`](crate::Telemetry::with_tracing): span
    /// instrumentation only records through sinks that opt in.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// The metrics collected so far.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Total events emitted so far (flushed or still buffered).
    pub fn events_recorded(&self) -> u64 {
        self.events
    }

    /// Events rendered but not yet handed to the writer.
    pub fn events_buffered(&self) -> usize {
        self.buffered_events
    }

    /// A human-readable end-of-run summary: the registry table plus the
    /// event count, matching [`Telemetry::summary`](crate::Telemetry::summary).
    pub fn summary(&self) -> String {
        let mut out = self.registry.summary();
        out.push_str(&format!("events   {:<34} {}\n", "(recorded)", self.events));
        out
    }

    fn write_out(&mut self) {
        if self.error.is_some() {
            self.buffer.clear();
            self.buffered_events = 0;
            return;
        }
        if let Err(e) = self.writer.write_all(self.buffer.as_bytes()) {
            self.error = Some(e);
        }
        self.buffer.clear();
        self.buffered_events = 0;
    }

    /// Flushes any buffered events, appends the registry snapshot (one
    /// line per metric, the same trailer [`Telemetry::to_jsonl`](crate::Telemetry::to_jsonl)
    /// renders), flushes the writer and returns it.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered anywhere in the sink's
    /// lifetime (recording itself never fails — errors are deferred here).
    pub fn finish(mut self) -> io::Result<W> {
        jsonl::write_registry(&mut self.buffer, &self.registry);
        self.write_out();
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Recorder for JsonlSink<W> {
    fn is_enabled(&self) -> bool {
        true
    }

    fn set_time(&mut self, tick: u64) {
        if tick > self.tick {
            self.tick = tick;
        }
    }

    fn incr(&mut self, name: &'static str, delta: u64) {
        self.registry.incr(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.registry.gauge(name, value);
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.registry.observe(name, value);
    }

    fn register_histogram(&mut self, name: &'static str, bounds: &[f64]) {
        self.registry.register_histogram(name, bounds);
    }

    fn merge_histogram(&mut self, name: &'static str, other: &Histogram) {
        self.registry.merge_histogram(name, other);
    }

    fn observe_sketch(&mut self, name: &'static str, value: f64) {
        self.registry.observe_sketch(name, value);
    }

    fn register_sketch(&mut self, name: &'static str, relative_accuracy: f64) {
        self.registry.register_sketch(name, relative_accuracy);
    }

    fn merge_sketch(&mut self, name: &'static str, other: &QuantileSketch) {
        self.registry.merge_sketch(name, other);
    }

    fn emit(&mut self, name: &'static str, fields: &[(&'static str, Value)]) {
        let t = self.tick;
        self.emit_at(t, name, fields);
    }

    fn emit_at(&mut self, t: u64, name: &'static str, fields: &[(&'static str, Value)]) {
        self.set_time(t);
        let record = EventRecord::new(t, name, fields);
        jsonl::write_event(&mut self.buffer, &record);
        self.events += 1;
        self.buffered_events += 1;
        if self.buffered_events >= self.flush_every {
            self.write_out();
        }
    }

    fn trace_enabled(&self) -> bool {
        self.tracing
    }

    fn reserve_span_ids(&mut self, count: u64) -> u64 {
        let first = self.next_span_id;
        self.next_span_id += count;
        first
    }

    fn now(&self) -> u64 {
        self.tick
    }

    fn current_trace(&self) -> Option<TraceContext> {
        self.current
    }

    fn set_current_trace(&mut self, ctx: Option<TraceContext>) {
        self.current = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Telemetry;

    /// Replays the same mixed stream into any recorder.
    fn record_stream(r: &mut dyn Recorder, events: u64) {
        for i in 0..events {
            r.set_time(i);
            r.incr("demo.steps", 1);
            r.observe("demo.latency_rounds", (i % 5) as f64);
            r.emit("round", &[("round", Value::U64(i)), ("ok", Value::Bool(i % 2 == 0))]);
        }
        r.emit("run_end", &[("iterations", Value::U64(events)), ("converged", Value::Bool(true))]);
    }

    #[test]
    fn streamed_bytes_equal_the_buffered_export_for_every_flush_interval() {
        let mut buffered = Telemetry::manual();
        record_stream(&mut buffered, 100);
        let expected = buffered.to_jsonl();
        for flush_every in [0, 1, 3, 64, 10_000] {
            let mut sink = JsonlSink::new(Vec::new(), flush_every);
            record_stream(&mut sink, 100);
            let bytes = sink.finish().unwrap();
            assert_eq!(
                String::from_utf8(bytes).unwrap(),
                expected,
                "flush_every = {flush_every} must not change the bytes"
            );
        }
    }

    #[test]
    fn buffer_is_bounded_by_the_flush_interval() {
        let mut sink = JsonlSink::new(Vec::new(), 8);
        for i in 0..1000u64 {
            sink.set_time(i);
            sink.emit("tick", &[("i", Value::U64(i))]);
            assert!(sink.events_buffered() < 8, "buffer must drain every 8 events");
        }
        assert_eq!(sink.events_recorded(), 1000);
        // Everything but the in-flight remainder has already reached the writer.
        assert!(sink.events_buffered() < 8);
    }

    #[test]
    fn finish_appends_the_registry_snapshot() {
        let mut sink = JsonlSink::new(Vec::new(), 4);
        record_stream(&mut sink, 10);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert!(text.contains("{\"counter\":\"demo.steps\",\"value\":10}"));
        assert!(text.contains("\"hist\":\"demo.latency_rounds\""));
        // The registry trailer comes after the last event line.
        let counter_at = text.find("\"counter\"").unwrap();
        let last_event_at = text.rfind("\"event\"").unwrap();
        assert!(counter_at > last_event_at);
    }

    #[test]
    fn io_errors_are_deferred_to_finish() {
        #[derive(Debug)]
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing, 1);
        sink.emit("tick", &[]);
        sink.emit("tick", &[]); // recording after the error is still safe
        let err = sink.finish().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn summary_matches_the_buffered_sink() {
        let mut buffered = Telemetry::manual();
        let mut streamed = JsonlSink::new(Vec::new(), 16);
        record_stream(&mut buffered, 20);
        record_stream(&mut streamed, 20);
        assert_eq!(buffered.summary(), streamed.summary());
    }
}
