//! Structured events with inline, allocation-free field storage.

/// Maximum number of fields one event can carry; extra fields passed to
/// [`EventRecord::new`] are silently dropped (instrumentation should stay
/// under the limit — every emitter in this workspace does).
pub const MAX_EVENT_FIELDS: usize = 8;

/// A typed field value. `Copy`, so events never own heap memory; string
/// values are `&'static str` labels (fault kinds, phase names), never
/// formatted data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An unsigned integer (counts, rounds, indices).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (utilities, norms, spreads). Non-finite values render as
    /// JSON `null`.
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A static string label.
    Str(&'static str),
}

/// One recorded event: a name, a timestamp in clock ticks, and up to
/// [`MAX_EVENT_FIELDS`] named field values stored inline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    t: u64,
    name: &'static str,
    fields: [(&'static str, Value); MAX_EVENT_FIELDS],
    len: u8,
}

impl EventRecord {
    /// Builds an event at time `t`. Fields beyond [`MAX_EVENT_FIELDS`] are
    /// dropped.
    pub fn new(t: u64, name: &'static str, fields: &[(&'static str, Value)]) -> Self {
        let mut inline = [("", Value::U64(0)); MAX_EVENT_FIELDS];
        let len = fields.len().min(MAX_EVENT_FIELDS);
        inline[..len].copy_from_slice(&fields[..len]);
        EventRecord { t, name, fields: inline, len: len as u8 }
    }

    /// The event's timestamp in clock ticks.
    pub fn time(&self) -> u64 {
        self.t
    }

    /// The event's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The event's fields, in emission order.
    pub fn fields(&self) -> &[(&'static str, Value)] {
        &self.fields[..self.len as usize]
    }

    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<Value> {
        self.fields().iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_store_fields_inline_and_in_order() {
        let e = EventRecord::new(
            7,
            "fault",
            &[("kind", Value::Str("drop")), ("round", Value::U64(7)), ("from", Value::U64(2))],
        );
        assert_eq!(e.time(), 7);
        assert_eq!(e.name(), "fault");
        assert_eq!(e.fields().len(), 3);
        assert_eq!(e.field("kind"), Some(Value::Str("drop")));
        assert_eq!(e.field("round"), Some(Value::U64(7)));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn overflow_fields_are_dropped_not_panicked() {
        let fields: Vec<(&'static str, Value)> =
            (0..12).map(|i| ("k", Value::I64(i))).collect();
        let e = EventRecord::new(0, "big", &fields);
        assert_eq!(e.fields().len(), MAX_EVENT_FIELDS);
    }
}
