//! The all-in-one recording sink: registry + in-memory event stream.

use crate::clock::{Clock, WallClock};
use crate::event::{EventRecord, Value};
use crate::jsonl;
use crate::metrics::{Histogram, MetricsRegistry};
use crate::recorder::Recorder;
use crate::sketch::QuantileSketch;
use crate::trace::TraceContext;

/// Where event timestamps come from.
#[derive(Debug, Clone)]
enum TimeSource {
    /// Nanoseconds since the sink was created. For benches and live runs.
    Wall(WallClock),
    /// A tick set explicitly via [`Recorder::set_time`] — the deterministic
    /// mode: the simulator and solver stamp events with their round /
    /// iteration counter, so recorded timelines are seed-reproducible.
    Manual(u64),
}

/// A [`Recorder`] that keeps everything: metrics in a
/// [`MetricsRegistry`], events in an in-memory `Vec` sink, rendered to
/// JSONL on demand.
///
/// With [`Telemetry::manual`] all timestamps are virtual (driven by
/// [`Recorder::set_time`]) and the JSONL output of two identical seeded
/// runs is byte-identical. Use [`Telemetry::with_event_capacity`] to
/// preallocate the sink so steady-state recording allocates only when the
/// event count outgrows the reservation.
#[derive(Debug, Clone)]
pub struct Telemetry {
    registry: MetricsRegistry,
    events: Vec<EventRecord>,
    time: TimeSource,
    tracing: bool,
    next_span_id: u64,
    current: Option<TraceContext>,
}

impl Telemetry {
    /// A deterministic sink on virtual time starting at tick 0.
    pub fn manual() -> Self {
        Telemetry {
            registry: MetricsRegistry::new(),
            events: Vec::new(),
            time: TimeSource::Manual(0),
            tracing: false,
            next_span_id: 1,
            current: None,
        }
    }

    /// A wall-clocked sink (timestamps in nanoseconds since creation).
    /// [`Recorder::set_time`] calls are ignored.
    pub fn wall() -> Self {
        Telemetry {
            registry: MetricsRegistry::new(),
            events: Vec::new(),
            time: TimeSource::Wall(WallClock::new()),
            tracing: false,
            next_span_id: 1,
            current: None,
        }
    }

    /// Reserves space for `capacity` events up front, so recording up to
    /// that many allocates nothing beyond the initial reservation.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.events.reserve(capacity);
        self
    }

    /// Enables (or disables) tracing: span guards and span synthesis check
    /// [`Recorder::trace_enabled`] and only record through sinks that opt
    /// in, so existing metric-only exports are byte-unchanged by default.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// The current timestamp in ticks.
    pub fn now(&self) -> u64 {
        match &self.time {
            TimeSource::Wall(clock) => clock.now(),
            TimeSource::Manual(tick) => *tick,
        }
    }

    /// The metrics collected so far.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The events collected so far, in emission order.
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// The sink's spare event capacity (reserved but unused slots) —
    /// exposed so allocation tests can assert recording stayed within the
    /// preallocated buffer.
    pub fn spare_event_capacity(&self) -> usize {
        self.events.capacity() - self.events.len()
    }

    /// Renders everything recorded as JSONL: one line per event in
    /// emission order, then one line per metric in registration order.
    /// Deterministic under virtual time — see [`Telemetry::manual`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            jsonl::write_event(&mut out, event);
        }
        jsonl::write_registry(&mut out, &self.registry);
        out
    }

    /// A human-readable end-of-run summary: the registry table plus the
    /// event count.
    pub fn summary(&self) -> String {
        let mut out = self.registry.summary();
        out.push_str(&format!("events   {:<34} {}\n", "(recorded)", self.events.len()));
        out
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::manual()
    }
}

impl Recorder for Telemetry {
    fn is_enabled(&self) -> bool {
        true
    }

    fn set_time(&mut self, tick: u64) {
        if let TimeSource::Manual(now) = &mut self.time {
            if tick > *now {
                *now = tick;
            }
        }
    }

    fn incr(&mut self, name: &'static str, delta: u64) {
        self.registry.incr(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.registry.gauge(name, value);
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.registry.observe(name, value);
    }

    fn register_histogram(&mut self, name: &'static str, bounds: &[f64]) {
        self.registry.register_histogram(name, bounds);
    }

    fn merge_histogram(&mut self, name: &'static str, other: &Histogram) {
        self.registry.merge_histogram(name, other);
    }

    fn observe_sketch(&mut self, name: &'static str, value: f64) {
        self.registry.observe_sketch(name, value);
    }

    fn register_sketch(&mut self, name: &'static str, relative_accuracy: f64) {
        self.registry.register_sketch(name, relative_accuracy);
    }

    fn merge_sketch(&mut self, name: &'static str, other: &QuantileSketch) {
        self.registry.merge_sketch(name, other);
    }

    fn emit(&mut self, name: &'static str, fields: &[(&'static str, Value)]) {
        let t = Telemetry::now(self);
        self.events.push(EventRecord::new(t, name, fields));
    }

    fn emit_at(&mut self, t: u64, name: &'static str, fields: &[(&'static str, Value)]) {
        // The event keeps the explicit stamp even when it lies before the
        // current tick — synthesized timelines are written after the fact.
        self.set_time(t);
        self.events.push(EventRecord::new(t, name, fields));
    }

    fn trace_enabled(&self) -> bool {
        self.tracing
    }

    fn reserve_span_ids(&mut self, count: u64) -> u64 {
        let first = self.next_span_id;
        self.next_span_id += count;
        first
    }

    fn now(&self) -> u64 {
        Telemetry::now(self)
    }

    fn current_trace(&self) -> Option<TraceContext> {
        self.current
    }

    fn set_current_trace(&mut self, ctx: Option<TraceContext>) {
        self.current = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_demo(tele: &mut Telemetry) {
        tele.set_time(3);
        tele.incr("demo.steps", 2);
        tele.observe("demo.latency_rounds", 1.0);
        tele.emit("round", &[("round", Value::U64(3)), ("fresh", Value::Bool(true))]);
    }

    #[test]
    fn manual_time_stamps_events_deterministically() {
        let mut tele = Telemetry::manual();
        record_demo(&mut tele);
        assert_eq!(tele.now(), 3);
        assert_eq!(tele.events().len(), 1);
        assert_eq!(tele.events()[0].time(), 3);
        assert_eq!(tele.registry().counter("demo.steps"), 2);
    }

    #[test]
    fn identical_recordings_render_identical_jsonl() {
        let mut a = Telemetry::manual();
        let mut b = Telemetry::manual();
        record_demo(&mut a);
        record_demo(&mut b);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert!(a
            .to_jsonl()
            .contains(r#"{"t":3,"event":"round","round":3,"fresh":true}"#));
    }

    #[test]
    fn manual_time_never_moves_backwards() {
        let mut tele = Telemetry::manual();
        tele.set_time(5);
        tele.set_time(2);
        assert_eq!(tele.now(), 5);
    }

    #[test]
    fn preallocated_sink_does_not_grow_under_capacity() {
        let mut tele = Telemetry::manual().with_event_capacity(16);
        let spare = tele.spare_event_capacity();
        assert!(spare >= 16);
        for i in 0..16 {
            tele.emit("tick", &[("i", Value::U64(i))]);
        }
        assert_eq!(tele.spare_event_capacity(), spare - 16);
    }

    #[test]
    fn summary_mentions_events_and_metrics() {
        let mut tele = Telemetry::manual();
        record_demo(&mut tele);
        let s = tele.summary();
        assert!(s.contains("demo.steps"));
        assert!(s.contains("events"));
    }
}
