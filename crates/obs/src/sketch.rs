//! Mergeable quantile sketches with bounded *relative* rank error.
//!
//! The fixed-bucket [`Histogram`](crate::Histogram) keeps its resolution
//! only inside the bounds chosen at registration time; a daemon that runs
//! for hours accumulates latencies spanning many orders of magnitude and
//! the p99 of a long session drowns in the overflow bucket. The
//! [`QuantileSketch`] fixes that with the classic log-bucketed design
//! (DDSketch-style): values land in geometrically spaced buckets keyed by
//! `ceil(ln v / ln γ)` with `γ = (1 + α) / (1 − α)`, which guarantees every
//! quantile estimate is within a *relative* error `α` of the true value —
//! regardless of the value range — while merging two sketches is a plain
//! keyed addition of bucket counts, so shard-local sketches fold into a
//! session-wide one without losing resolution.
//!
//! Determinism contract: bucket state is a `BTreeMap`, so two sketches that
//! observed the same multiset of values are `==` regardless of observation
//! order, and `merge_from` is order-insensitive. The floating-point `sum`
//! is the one order-sensitive field; [`QuantileSketch::distribution_eq`]
//! compares everything except it.

use std::collections::BTreeMap;

/// Default relative accuracy used when a sketch is created implicitly by
/// [`MetricsRegistry::observe_sketch`](crate::MetricsRegistry::observe_sketch).
pub const DEFAULT_SKETCH_ACCURACY: f64 = 0.01;

/// Tightest relative accuracy accepted by [`QuantileSketch::new`]. The
/// bucket index is stored as an `i64` computed from `ln v / ln γ`; bounding
/// α away from zero keeps indices comfortably inside integer range for
/// every finite positive `f64`.
pub const MIN_SKETCH_ACCURACY: f64 = 1e-4;

/// Loosest relative accuracy accepted by [`QuantileSketch::new`].
pub const MAX_SKETCH_ACCURACY: f64 = 0.5;

/// A mergeable log-bucketed quantile sketch with bounded relative error.
///
/// Designed for non-negative measurements (latencies, sizes, waits):
/// positive values are bucketed geometrically, while zeros and negative
/// values are folded into a dedicated zero bucket whose estimate is `0.0`.
/// `NaN` observations are ignored. Exact `count`, `sum`, `min` and `max`
/// are tracked alongside the buckets so the extremes are always reported
/// exactly and estimates are clamped into `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    relative_accuracy: f64,
    gamma: f64,
    ln_gamma: f64,
    buckets: BTreeMap<i64, u64>,
    zeros: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Create an empty sketch with the given relative accuracy `α`.
    ///
    /// # Panics
    ///
    /// Panics when `α` is not within
    /// [`MIN_SKETCH_ACCURACY`]`..=`[`MAX_SKETCH_ACCURACY`].
    pub fn new(relative_accuracy: f64) -> Self {
        assert!(
            relative_accuracy.is_finite()
                && (MIN_SKETCH_ACCURACY..=MAX_SKETCH_ACCURACY).contains(&relative_accuracy),
            "sketch accuracy must lie in [{MIN_SKETCH_ACCURACY}, {MAX_SKETCH_ACCURACY}]"
        );
        let gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy);
        Self {
            relative_accuracy,
            gamma,
            ln_gamma: gamma.ln(),
            buckets: BTreeMap::new(),
            zeros: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The advertised relative accuracy `α`.
    pub fn relative_accuracy(&self) -> f64 {
        self.relative_accuracy
    }

    /// Number of observations recorded (excluding ignored `NaN`s).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations. Note this is the one field whose
    /// value depends on observation order (floating-point addition is not
    /// associative); see [`Self::distribution_eq`].
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum observed value, or `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum observed value, or `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Number of non-empty geometric buckets (diagnostic; memory is
    /// proportional to this, which grows with the log of the value range).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len() + usize::from(self.zeros > 0)
    }

    /// Record one observation. `NaN` is ignored; zero and negative values
    /// are folded into the zero bucket.
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value > 0.0 {
            *self.buckets.entry(self.key(value)).or_insert(0) += 1;
        } else {
            self.zeros += 1;
        }
    }

    fn key(&self, value: f64) -> i64 {
        (value.ln() / self.ln_gamma).ceil() as i64
    }

    /// Estimate the `q`-quantile (`q` clamped into `[0, 1]`). Returns `0.0`
    /// on an empty sketch. The estimate has relative error at most `α` for
    /// positive values and is exact at the extremes (clamped to
    /// `[min, max]`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        // The extremes are tracked exactly; report them exactly.
        if rank == 1 {
            return self.min;
        }
        if rank >= self.count {
            return self.max;
        }
        let mut seen = self.zeros;
        let mut estimate = 0.0;
        if rank > seen {
            for (&key, &n) in &self.buckets {
                seen += n;
                if seen >= rank {
                    // Bucket midpoint in the multiplicative sense:
                    // 2γᵏ / (γ + 1) is within α of every value the bucket
                    // can hold, since (γᵏ⁻¹, γᵏ] maps onto [1−α, 1+α)·mid.
                    estimate = 2.0 / (self.gamma + 1.0) * (key as f64 * self.ln_gamma).exp();
                    break;
                }
            }
        }
        estimate.clamp(self.min, self.max)
    }

    /// Merge another sketch into this one. Returns `false` (and leaves
    /// `self` untouched) when the accuracies differ — mirroring
    /// [`Histogram::merge_from`](crate::Histogram::merge_from)'s shape
    /// check. Merging is commutative and associative on every field except
    /// the floating-point `sum`.
    #[must_use]
    pub fn merge_from(&mut self, other: &QuantileSketch) -> bool {
        if self.relative_accuracy.to_bits() != other.relative_accuracy.to_bits() {
            return false;
        }
        for (&key, &n) in &other.buckets {
            *self.buckets.entry(key).or_insert(0) += n;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        true
    }

    /// Equality of everything that determines quantile estimates: accuracy,
    /// buckets, zero count, total count, min and max — i.e. all state
    /// *except* the order-sensitive floating-point `sum`. Two sketches with
    /// `distribution_eq` return bit-identical answers from
    /// [`Self::quantile`] for every `q`.
    pub fn distribution_eq(&self, other: &QuantileSketch) -> bool {
        self.relative_accuracy.to_bits() == other.relative_accuracy.to_bits()
            && self.zeros == other.zeros
            && self.count == other.count
            && self.min.to_bits() == other.min.to_bits()
            && self.max.to_bits() == other.max.to_bits()
            && self.buckets == other.buckets
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_SKETCH_ACCURACY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_reports_zeros() {
        let s = QuantileSketch::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn relative_error_is_bounded() {
        let alpha = 0.01;
        let mut s = QuantileSketch::new(alpha);
        let mut values: Vec<f64> = (1..=2000).map(|i| (i as f64) * 0.37).collect();
        for &v in &values {
            s.observe(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let truth = values[rank - 1];
            let est = s.quantile(q);
            assert!(
                (est - truth).abs() <= truth * (alpha * 1.0001),
                "q={q}: estimate {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut s = QuantileSketch::new(0.05);
        for v in [3.5, 120.0, 0.002, 77.7] {
            s.observe(v);
        }
        assert_eq!(s.quantile(0.0), 0.002);
        assert_eq!(s.quantile(1.0), 77.7f64.max(120.0));
        assert_eq!(s.min(), 0.002);
        assert_eq!(s.max(), 120.0);
    }

    #[test]
    fn zero_and_negative_fold_into_zero_bucket() {
        let mut s = QuantileSketch::default();
        s.observe(0.0);
        s.observe(-4.0);
        s.observe(10.0);
        assert_eq!(s.count(), 3);
        // Rank 2 lands in the zero bucket: estimate 0, inside [min, max].
        assert_eq!(s.quantile(0.34), 0.0);
        assert!(s.quantile(1.0) <= 10.0 * 1.011);
    }

    #[test]
    fn nan_is_ignored() {
        let mut s = QuantileSketch::default();
        s.observe(f64::NAN);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_matches_single_stream_distribution() {
        let all: Vec<f64> = (1..=500).map(|i| (i as f64).sqrt()).collect();
        let mut single = QuantileSketch::default();
        for &v in &all {
            single.observe(v);
        }
        let (left, right) = all.split_at(123);
        let mut a = QuantileSketch::default();
        let mut b = QuantileSketch::default();
        for &v in left {
            a.observe(v);
        }
        for &v in right {
            b.observe(v);
        }
        assert!(a.merge_from(&b));
        assert!(a.distribution_eq(&single));
        assert!((a.sum() - single.sum()).abs() <= 1e-9 * single.sum());
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(a.quantile(q).to_bits(), single.quantile(q).to_bits());
        }
    }

    #[test]
    fn merge_rejects_mismatched_accuracy() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.02);
        assert!(!a.merge_from(&b));
    }

    #[test]
    fn observation_order_is_irrelevant_to_equality() {
        let mut fwd = QuantileSketch::default();
        let mut rev = QuantileSketch::default();
        let vals: Vec<f64> = (1..=64).map(|i| i as f64 * 1.5).collect();
        for &v in &vals {
            fwd.observe(v);
        }
        for &v in vals.iter().rev() {
            rev.observe(v);
        }
        assert!(fwd.distribution_eq(&rev));
    }

    #[test]
    #[should_panic(expected = "sketch accuracy")]
    fn rejects_out_of_range_accuracy() {
        let _ = QuantileSketch::new(0.9);
    }
}
