//! The JSONL wire format: one flat JSON object per line.
//!
//! Writing and parsing are hand-rolled over `std` so the crate stays
//! dependency-free. The writer is deterministic — field order is emission
//! order, floats use Rust's shortest round-trip `{}` formatting, and
//! non-finite floats render as `null` — so two identical seeded runs
//! produce byte-identical output. The parser handles exactly the subset
//! the writer produces (flat objects of scalars), which is all `fap
//! report` needs to replay a recorded run offline.
//!
//! Line shapes:
//!
//! ```text
//! {"t":3,"event":"fault","kind":"drop","round":3,"from":1,"to":4}
//! {"counter":"sim.dropped","value":12}
//! {"gauge":"core.node_threads","value":8}
//! {"hist":"sim.report_latency_rounds","count":57,"sum":61,"min":0,"max":3,"p50":1,"p90":2,"p99":3}
//! {"sketch":"served.wait","error":0.01,"count":9,"sum":41,"min":0,"max":12,"p50":3.0002,"p90":8.9,"p99":12}
//! ```

use std::fmt::Write as _;

use crate::event::{EventRecord, Value};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::sketch::QuantileSketch;

/// Appends `text` to `out` as a JSON string literal (quotes included).
pub fn push_json_str(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `value` to `out` as a JSON number, or `null` when non-finite.
/// Uses Rust's shortest round-trip formatting, matching the vendored
/// `serde_json` shim.
pub fn push_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

fn push_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => push_json_f64(out, *v),
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(v) => push_json_str(out, v),
    }
}

/// Appends one event line (with trailing newline) to `out`:
/// `{"t":<tick>,"event":"<name>",<fields...>}`.
pub fn write_event(out: &mut String, event: &EventRecord) {
    let _ = write!(out, "{{\"t\":{},\"event\":", event.time());
    push_json_str(out, event.name());
    for (key, value) in event.fields() {
        out.push(',');
        push_json_str(out, key);
        out.push(':');
        push_value(out, value);
    }
    out.push_str("}\n");
}

/// Appends one line (with trailing newline) per metric in `registry`, in
/// registration order: counters, then gauges, then histograms, then
/// quantile sketches.
pub fn write_registry(out: &mut String, registry: &MetricsRegistry) {
    for (name, value) in registry.counters() {
        out.push_str("{\"counter\":");
        push_json_str(out, name);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    for (name, value) in registry.gauges() {
        out.push_str("{\"gauge\":");
        push_json_str(out, name);
        out.push_str(",\"value\":");
        push_json_f64(out, *value);
        out.push_str("}\n");
    }
    for (name, hist) in registry.histograms() {
        write_histogram(out, name, hist);
    }
    for (name, sketch) in registry.sketches() {
        write_sketch(out, name, sketch);
    }
}

fn write_histogram(out: &mut String, name: &str, hist: &Histogram) {
    out.push_str("{\"hist\":");
    push_json_str(out, name);
    let _ = write!(out, ",\"count\":{}", hist.count());
    for (key, value) in [
        ("sum", hist.sum()),
        ("min", if hist.count() == 0 { 0.0 } else { hist.min() }),
        ("max", if hist.count() == 0 { 0.0 } else { hist.max() }),
        ("p50", hist.quantile(0.5)),
        ("p90", hist.quantile(0.9)),
        ("p99", hist.quantile(0.99)),
    ] {
        let _ = write!(out, ",\"{key}\":");
        push_json_f64(out, value);
    }
    out.push_str("}\n");
}

fn write_sketch(out: &mut String, name: &str, sketch: &QuantileSketch) {
    out.push_str("{\"sketch\":");
    push_json_str(out, name);
    out.push_str(",\"error\":");
    push_json_f64(out, sketch.relative_accuracy());
    let _ = write!(out, ",\"count\":{}", sketch.count());
    for (key, value) in [
        ("sum", sketch.sum()),
        ("min", sketch.min()),
        ("max", sketch.max()),
        ("p50", sketch.quantile(0.5)),
        ("p90", sketch.quantile(0.9)),
        ("p99", sketch.quantile(0.99)),
    ] {
        let _ = write!(out, ",\"{key}\":");
        push_json_f64(out, value);
    }
    out.push_str("}\n");
}

/// A scalar parsed back from a JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// JSON `null` (also produced for non-finite floats on the way out).
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer-valued number.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
}

impl Scalar {
    /// The value as an `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int(v) => Some(*v as f64),
            Scalar::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `i64`, when an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Scalar::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `&str`, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSONL line — a flat object of scalar values, the only shape
/// the writers above produce — into `(key, value)` pairs in source order.
/// Returns `None` on any malformed input (nested containers included).
pub fn parse_line(line: &str) -> Option<Vec<(String, Scalar)>> {
    let mut chars = line.trim().char_indices().peekable();
    let text = line.trim();
    let mut pairs = Vec::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Option<String> {
        match chars.next() {
            Some((_, '"')) => {}
            _ => return None,
        }
        let mut s = String::new();
        loop {
            match chars.next()? {
                (_, '"') => return Some(s),
                (_, '\\') => match chars.next()?.1 {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + chars.next()?.1.to_digit(16)?;
                        }
                        s.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                (_, c) => s.push(c),
            }
        }
    }

    fn parse_scalar(
        text: &str,
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Option<Scalar> {
        match chars.peek()?.1 {
            '"' => parse_string(chars).map(Scalar::Str),
            't' | 'f' | 'n' => {
                let start = chars.peek()?.0;
                while matches!(chars.peek(), Some((_, c)) if c.is_ascii_alphabetic()) {
                    chars.next();
                }
                let end = chars.peek().map_or(text.len(), |(i, _)| *i);
                match &text[start..end] {
                    "true" => Some(Scalar::Bool(true)),
                    "false" => Some(Scalar::Bool(false)),
                    "null" => Some(Scalar::Null),
                    _ => None,
                }
            }
            '-' | '0'..='9' => {
                let start = chars.peek()?.0;
                while matches!(
                    chars.peek(),
                    Some((_, c)) if c.is_ascii_digit()
                        || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                ) {
                    chars.next();
                }
                let end = chars.peek().map_or(text.len(), |(i, _)| *i);
                let token = &text[start..end];
                if let Ok(v) = token.parse::<i64>() {
                    Some(Scalar::Int(v))
                } else {
                    token.parse::<f64>().ok().map(Scalar::Num)
                }
            }
            _ => None,
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        _ => return None,
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
        skip_ws(&mut chars);
        return chars.next().is_none().then_some(pairs);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        skip_ws(&mut chars);
        let value = parse_scalar(text, &mut chars)?;
        pairs.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            _ => return None,
        }
    }
    skip_ws(&mut chars);
    chars.next().is_none().then_some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_lines_have_the_documented_shape() {
        let event = EventRecord::new(
            3,
            "fault",
            &[
                ("kind", Value::Str("drop")),
                ("round", Value::U64(3)),
                ("ok", Value::Bool(false)),
                ("norm", Value::F64(0.5)),
            ],
        );
        let mut out = String::new();
        write_event(&mut out, &event);
        assert_eq!(
            out,
            "{\"t\":3,\"event\":\"fault\",\"kind\":\"drop\",\"round\":3,\"ok\":false,\"norm\":0.5}\n"
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        out.push(' ');
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn registry_lines_round_trip_through_the_parser() {
        let mut registry = MetricsRegistry::new();
        registry.incr("sim.dropped", 12);
        registry.gauge("threads", 8.0);
        registry.register_histogram("lat", &[0.0, 1.0, 2.0, 4.0]);
        registry.observe("lat", 1.0);
        registry.observe("lat", 2.0);
        let mut out = String::new();
        write_registry(&mut out, &registry);

        let lines: Vec<_> = out.lines().collect();
        assert_eq!(lines.len(), 3);

        let counter = parse_line(lines[0]).unwrap();
        assert_eq!(counter[0], ("counter".into(), Scalar::Str("sim.dropped".into())));
        assert_eq!(counter[1], ("value".into(), Scalar::Int(12)));

        let gauge = parse_line(lines[1]).unwrap();
        assert_eq!(gauge[0].1.as_str(), Some("threads"));
        assert_eq!(gauge[1].1.as_f64(), Some(8.0));

        let hist = parse_line(lines[2]).unwrap();
        let get = |key: &str| {
            hist.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_f64().unwrap())
        };
        assert_eq!(get("count"), Some(2.0));
        assert_eq!(get("sum"), Some(3.0));
        assert_eq!(get("p50"), Some(1.0));
        assert_eq!(get("p99"), Some(2.0));
    }

    #[test]
    fn sketch_lines_round_trip_through_the_parser() {
        let mut registry = MetricsRegistry::new();
        registry.register_sketch("served.wait", 0.01);
        for v in [1.0, 2.0, 4.0] {
            registry.observe_sketch("served.wait", v);
        }
        let mut out = String::new();
        write_registry(&mut out, &registry);
        let lines: Vec<_> = out.lines().collect();
        assert_eq!(lines.len(), 1);
        let pairs = parse_line(lines[0]).unwrap();
        assert_eq!(pairs[0], ("sketch".into(), Scalar::Str("served.wait".into())));
        let get = |key: &str| {
            pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_f64().unwrap())
        };
        assert_eq!(get("error"), Some(0.01));
        assert_eq!(get("count"), Some(3.0));
        assert_eq!(get("sum"), Some(7.0));
        assert_eq!(get("min"), Some(1.0));
        assert_eq!(get("max"), Some(4.0));
        let p50 = get("p50").unwrap();
        assert!((p50 - 2.0).abs() <= 2.0 * 0.011, "p50 {p50} off the true median");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("{"), None);
        assert_eq!(parse_line("{\"a\":}"), None);
        assert_eq!(parse_line("{\"a\":[1]}"), None);
        assert_eq!(parse_line("{\"a\":1} trailing"), None);
        assert_eq!(parse_line("{\"a\":flase}"), None);
    }

    #[test]
    fn parser_handles_empty_objects_and_escapes() {
        assert_eq!(parse_line("{}"), Some(vec![]));
        let pairs = parse_line("{\"k\\n\":\"v\\u0041\",\"x\":null}").unwrap();
        assert_eq!(pairs[0], ("k\n".into(), Scalar::Str("vA".into())));
        assert_eq!(pairs[1].1, Scalar::Null);
    }

    #[test]
    fn numbers_parse_to_int_or_float() {
        let pairs = parse_line("{\"a\":-3,\"b\":2.5,\"c\":1e3}").unwrap();
        assert_eq!(pairs[0].1, Scalar::Int(-3));
        assert_eq!(pairs[1].1, Scalar::Num(2.5));
        assert_eq!(pairs[2].1, Scalar::Num(1000.0));
    }
}
