//! The recording handle instrumented code writes through.

use crate::event::Value;
use crate::metrics::Histogram;
use crate::sketch::QuantileSketch;
use crate::trace::TraceContext;

/// The sink interface threaded through the solver, simulator and parallel
/// kernels as `&mut dyn Recorder`.
///
/// Every method has an empty default body, so a sink implements only what
/// it cares about. Hot loops guard *derived* measurements (norms, wall
/// timings) behind [`Recorder::is_enabled`] so that with a
/// [`NoopRecorder`] the instrumented path performs no extra arithmetic and
/// no allocation — the zero-allocation steady-state guarantee is preserved
/// by construction.
pub trait Recorder {
    /// Whether this sink actually records anything. Instrumented code may
    /// skip computing expensive measurements when this is `false`.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Sets the current virtual time in ticks; subsequent events are
    /// stamped with it. Wall-clocked sinks ignore this.
    fn set_time(&mut self, _tick: u64) {}

    /// Adds `delta` to counter `name`.
    fn incr(&mut self, _name: &'static str, _delta: u64) {}

    /// Sets gauge `name` to `value`.
    fn gauge(&mut self, _name: &'static str, _value: f64) {}

    /// Records `value` into histogram `name`.
    fn observe(&mut self, _name: &'static str, _value: f64) {}

    /// Declares histogram `name` with explicit bucket upper bounds, before
    /// its first observation. Sinks without histograms ignore this.
    fn register_histogram(&mut self, _name: &'static str, _bounds: &[f64]) {}

    /// Folds an already-aggregated [`Histogram`] into histogram `name` —
    /// the fan-in primitive used when per-shard registries are merged into
    /// an aggregate sink (see
    /// [`MetricsRegistry::replay_into`](crate::MetricsRegistry::replay_into)).
    /// Sinks without histograms ignore this.
    fn merge_histogram(&mut self, _name: &'static str, _other: &Histogram) {}

    /// Records `value` into quantile sketch `name`. Unlike
    /// [`Recorder::observe`], the sketch keeps bounded *relative* error
    /// over any value range, so it suits long-lived daemon sessions.
    /// Sinks without sketches ignore this.
    fn observe_sketch(&mut self, _name: &'static str, _value: f64) {}

    /// Declares sketch `name` with an explicit relative accuracy, before
    /// its first observation. Sinks without sketches ignore this.
    fn register_sketch(&mut self, _name: &'static str, _relative_accuracy: f64) {}

    /// Folds an already-aggregated [`QuantileSketch`] into sketch `name` —
    /// the fan-in primitive mirroring [`Recorder::merge_histogram`]. Sinks
    /// without sketches ignore this.
    fn merge_sketch(&mut self, _name: &'static str, _other: &QuantileSketch) {}

    /// Emits a structured event.
    fn emit(&mut self, _name: &'static str, _fields: &[(&'static str, Value)]) {}

    /// Emits a structured event stamped with the explicit tick `t`,
    /// bypassing the monotone current-time clamp. Span synthesis uses this
    /// to write a reconstructed timeline whose events need not be in
    /// chronological file order. The default forwards through
    /// [`Recorder::set_time`] + [`Recorder::emit`], which is correct for
    /// metric-only sinks.
    fn emit_at(&mut self, t: u64, name: &'static str, fields: &[(&'static str, Value)]) {
        self.set_time(t);
        self.emit(name, fields);
    }

    /// Whether this sink wants span events. Tracing instrumentation —
    /// [`SpanGuard`](crate::SpanGuard), span synthesis — checks this
    /// before reserving ids or emitting anything, so sinks that leave the
    /// default `false` pay nothing.
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Reserves `count` consecutive span ids and returns the first.
    /// Tracing sinks hand out ids from a deterministic per-sink counter
    /// starting at 1; the default returns 0 (the "no span" sentinel).
    fn reserve_span_ids(&mut self, _count: u64) -> u64 {
        0
    }

    /// The sink's current tick (virtual sinks) or elapsed nanoseconds
    /// (wall sinks). Span guards read this for start/end stamps; the
    /// default of 0 is fine for sinks that never trace.
    fn now(&self) -> u64 {
        0
    }

    /// The span context new spans should treat as their parent, if any.
    /// This is how causality propagates *through* the recorder: callers
    /// install a context, deeper layers inherit it without any signature
    /// changes.
    fn current_trace(&self) -> Option<TraceContext> {
        None
    }

    /// Installs (or clears) the current span context.
    fn set_current_trace(&mut self, _ctx: Option<TraceContext>) {}
}

/// The do-nothing sink: every method is the empty default and
/// [`Recorder::is_enabled`] is `false`. Passing `&mut NoopRecorder` is the
/// uninstrumented fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Fans one instrumentation stream out to two sinks.
///
/// The simulator uses this to feed its internal fault-summary registry and
/// a caller-provided sink from the same event stream.
pub struct Tee<'a> {
    a: &'a mut dyn Recorder,
    b: &'a mut dyn Recorder,
}

impl<'a> Tee<'a> {
    /// A recorder forwarding every call to both `a` and `b`.
    pub fn new(a: &'a mut dyn Recorder, b: &'a mut dyn Recorder) -> Self {
        Tee { a, b }
    }
}

impl Recorder for Tee<'_> {
    fn is_enabled(&self) -> bool {
        self.a.is_enabled() || self.b.is_enabled()
    }

    fn set_time(&mut self, tick: u64) {
        self.a.set_time(tick);
        self.b.set_time(tick);
    }

    fn incr(&mut self, name: &'static str, delta: u64) {
        self.a.incr(name, delta);
        self.b.incr(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.a.gauge(name, value);
        self.b.gauge(name, value);
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.a.observe(name, value);
        self.b.observe(name, value);
    }

    fn register_histogram(&mut self, name: &'static str, bounds: &[f64]) {
        self.a.register_histogram(name, bounds);
        self.b.register_histogram(name, bounds);
    }

    fn merge_histogram(&mut self, name: &'static str, other: &Histogram) {
        self.a.merge_histogram(name, other);
        self.b.merge_histogram(name, other);
    }

    fn observe_sketch(&mut self, name: &'static str, value: f64) {
        self.a.observe_sketch(name, value);
        self.b.observe_sketch(name, value);
    }

    fn register_sketch(&mut self, name: &'static str, relative_accuracy: f64) {
        self.a.register_sketch(name, relative_accuracy);
        self.b.register_sketch(name, relative_accuracy);
    }

    fn merge_sketch(&mut self, name: &'static str, other: &QuantileSketch) {
        self.a.merge_sketch(name, other);
        self.b.merge_sketch(name, other);
    }

    fn emit(&mut self, name: &'static str, fields: &[(&'static str, Value)]) {
        self.a.emit(name, fields);
        self.b.emit(name, fields);
    }

    fn emit_at(&mut self, t: u64, name: &'static str, fields: &[(&'static str, Value)]) {
        self.a.emit_at(t, name, fields);
        self.b.emit_at(t, name, fields);
    }

    fn trace_enabled(&self) -> bool {
        self.a.trace_enabled() || self.b.trace_enabled()
    }

    fn reserve_span_ids(&mut self, count: u64) -> u64 {
        // Both counters advance; the larger block start wins so an id is
        // never reused on the side that is further along. Sides that only
        // ever reserve through this tee stay in lockstep and agree.
        self.a.reserve_span_ids(count).max(self.b.reserve_span_ids(count))
    }

    fn now(&self) -> u64 {
        self.a.now().max(self.b.now())
    }

    fn current_trace(&self) -> Option<TraceContext> {
        self.a.current_trace().or_else(|| self.b.current_trace())
    }

    fn set_current_trace(&mut self, ctx: Option<TraceContext>) {
        self.a.set_current_trace(ctx);
        self.b.set_current_trace(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn noop_recorder_reports_disabled() {
        let noop = NoopRecorder;
        assert!(!noop.is_enabled());
        // And all calls are accepted silently.
        let r: &mut dyn Recorder = &mut NoopRecorder;
        r.set_time(1);
        r.incr("a", 1);
        r.gauge("b", 1.0);
        r.observe("c", 1.0);
        r.emit("d", &[("k", Value::U64(1))]);
    }

    #[test]
    fn tee_forwards_to_both_sinks() {
        let mut left = MetricsRegistry::new();
        let mut right = MetricsRegistry::new();
        {
            let mut tee = Tee::new(&mut left, &mut right);
            assert!(tee.is_enabled());
            tee.incr("hits", 2);
            tee.observe("lat", 1.0);
            tee.gauge("threads", 4.0);
        }
        for side in [&left, &right] {
            assert_eq!(side.counter("hits"), 2);
            assert_eq!(side.histogram("lat").unwrap().count(), 1);
            assert_eq!(side.gauge_value("threads"), Some(4.0));
        }
    }

    #[test]
    fn tee_forwards_sketches_to_both_sinks() {
        let mut left = MetricsRegistry::new();
        let mut right = MetricsRegistry::new();
        {
            let mut tee = Tee::new(&mut left, &mut right);
            tee.register_sketch("wait", 0.02);
            tee.observe_sketch("wait", 3.0);
            tee.observe_sketch("wait", 9.0);
        }
        for side in [&left, &right] {
            let sketch = side.sketch("wait").unwrap();
            assert_eq!(sketch.count(), 2);
            assert_eq!(sketch.relative_accuracy(), 0.02);
            assert_eq!(sketch.max(), 9.0);
        }
    }

    #[test]
    fn tee_of_noops_is_disabled() {
        let mut a = NoopRecorder;
        let mut b = NoopRecorder;
        let tee = Tee::new(&mut a, &mut b);
        assert!(!tee.is_enabled());
        assert!(!tee.trace_enabled());
    }

    #[test]
    fn tee_trace_state_spans_both_sides() {
        use crate::telemetry::Telemetry;
        let mut traced = Telemetry::manual().with_tracing(true);
        let mut registry = MetricsRegistry::new();
        let mut tee = Tee::new(&mut traced, &mut registry);
        assert!(tee.trace_enabled());
        // The registry side returns 0; the traced side's counter wins.
        assert_eq!(tee.reserve_span_ids(3), 1);
        assert_eq!(tee.reserve_span_ids(1), 4);
        let ctx = crate::trace::TraceContext::root(1);
        tee.set_current_trace(Some(ctx));
        assert_eq!(tee.current_trace(), Some(ctx));
        tee.set_current_trace(None);
        assert_eq!(tee.current_trace(), None);
    }
}
