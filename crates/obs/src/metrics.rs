//! The metrics registry: counters, gauges, fixed-bucket histograms and
//! mergeable quantile sketches.
//!
//! Metrics are addressed by `&'static str` names and stored in small
//! vectors in registration order. Lookup is a linear scan — for the
//! dozen-odd metrics an instrumented run touches this beats hashing, and
//! (the property the zero-allocation tests rely on) updating an already
//! registered metric performs no heap allocation at all. Registration
//! order is deterministic for a given code path, so serialized snapshots
//! of two identical runs are byte-identical.

use crate::event::Value;
use crate::recorder::Recorder;
use crate::sketch::QuantileSketch;

/// A fixed-bucket histogram: cumulative-style bucket upper bounds plus an
/// overflow bucket, with running count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given ascending bucket upper bounds (a value
    /// `v` lands in the first bucket with `v <= bound`, or the overflow
    /// bucket past the last bound).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending — a
    /// programming error in instrumentation code.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default shape: powers of four from 1 to 4²⁰ (≈ 10¹²). Spans
    /// nanosecond wall timings from sub-microsecond to ~18 minutes, and
    /// small integer scales (rounds, set sizes) with exact low buckets.
    pub fn exponential() -> Self {
        let bounds: Vec<f64> = (0..=20).map(|i| 4f64.powi(i)).collect();
        Histogram::with_bounds(&bounds)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let slot = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The quantile `q ∈ [0, 1]` estimated from the buckets: the upper
    /// bound of the bucket containing the `⌈q·count⌉`-th observation,
    /// clamped to the observed `[min, max]` range. Exact whenever bucket
    /// bounds are exact for the data (e.g. integer-valued observations
    /// with unit buckets); otherwise an upper estimate. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (slot, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = self.bounds.get(slot).copied().unwrap_or(self.max);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The bucket upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Folds `other` into `self`: bucket counts add element-wise,
    /// count/sum accumulate, min/max widen. Returns `false` (and leaves
    /// `self` untouched) when the two histograms have different bucket
    /// shapes — merging is only defined across same-shape histograms,
    /// which same-name histograms from the same instrumentation always
    /// are.
    #[must_use]
    pub fn merge_from(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (slot, c) in self.counts.iter_mut().zip(&other.counts) {
            *slot += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        true
    }
}

/// Counters, gauges and histograms under one roof.
///
/// Implements [`Recorder`] directly (events and timestamps are ignored),
/// so a registry can serve as the no-frills metrics sink — the chaos
/// simulator keeps one internally to build its fault summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<(&'static str, Histogram)>,
    sketches: Vec<(&'static str, QuantileSketch)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name`, registering it at zero first if
    /// needed. Allocation-free once registered.
    pub fn incr(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name, delta)),
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        match self.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name, value)),
        }
    }

    /// Records `value` into histogram `name`, creating it with the
    /// [`Histogram::exponential`] shape on first use.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        match self.histograms.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => h.observe(value),
            None => {
                let mut h = Histogram::exponential();
                h.observe(value);
                self.histograms.push((name, h));
            }
        }
    }

    /// Registers histogram `name` with explicit bucket bounds (replacing
    /// any default-shaped histogram auto-created earlier). Call before the
    /// first observation to choose the shape.
    pub fn register_histogram(&mut self, name: &'static str, bounds: &[f64]) {
        let hist = Histogram::with_bounds(bounds);
        match self.histograms.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => *h = hist,
            None => self.histograms.push((name, hist)),
        }
    }

    /// Records `value` into quantile sketch `name`, creating it with
    /// [`DEFAULT_SKETCH_ACCURACY`](crate::DEFAULT_SKETCH_ACCURACY) on first
    /// use.
    pub fn observe_sketch(&mut self, name: &'static str, value: f64) {
        match self.sketches.iter_mut().find(|(n, _)| *n == name) {
            Some((_, s)) => s.observe(value),
            None => {
                let mut s = QuantileSketch::default();
                s.observe(value);
                self.sketches.push((name, s));
            }
        }
    }

    /// Registers sketch `name` with an explicit relative accuracy
    /// (replacing any default-accuracy sketch auto-created earlier). Call
    /// before the first observation to choose the accuracy.
    pub fn register_sketch(&mut self, name: &'static str, relative_accuracy: f64) {
        let sketch = QuantileSketch::new(relative_accuracy);
        match self.sketches.iter_mut().find(|(n, _)| *n == name) {
            Some((_, s)) => *s = sketch,
            None => self.sketches.push((name, sketch)),
        }
    }

    /// The value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v)
    }

    /// The value of gauge `name`, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Histogram `name`, if any observation or registration created it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// All counters in registration order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All gauges in registration order.
    pub fn gauges(&self) -> &[(&'static str, f64)] {
        &self.gauges
    }

    /// All histograms in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.histograms.iter().map(|(n, h)| (*n, h))
    }

    /// Sketch `name`, if any observation or registration created it.
    pub fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.sketches.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }

    /// All sketches in registration order.
    pub fn sketches(&self) -> impl Iterator<Item = (&'static str, &QuantileSketch)> {
        self.sketches.iter().map(|(n, s)| (*n, s))
    }

    /// True when nothing has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.sketches.is_empty()
    }

    /// Folds an already-aggregated histogram into histogram `name`,
    /// creating it as a copy of `other` on first merge. A shape mismatch
    /// (different bucket bounds under the same name — an instrumentation
    /// bug) is ignored in release builds and trips a debug assertion.
    pub fn merge_histogram(&mut self, name: &'static str, other: &Histogram) {
        match self.histograms.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => {
                let merged = h.merge_from(other);
                debug_assert!(merged, "histogram '{name}' merged with a different bucket shape");
            }
            None => self.histograms.push((name, other.clone())),
        }
    }

    /// Folds an already-aggregated sketch into sketch `name`, creating it
    /// as a copy of `other` on first merge. An accuracy mismatch under the
    /// same name (an instrumentation bug) is ignored in release builds and
    /// trips a debug assertion — mirroring [`Self::merge_histogram`].
    pub fn merge_sketch(&mut self, name: &'static str, other: &QuantileSketch) {
        match self.sketches.iter_mut().find(|(n, _)| *n == name) {
            Some((_, s)) => {
                let merged = s.merge_from(other);
                debug_assert!(merged, "sketch '{name}' merged with a different accuracy");
            }
            None => self.sketches.push((name, other.clone())),
        }
    }

    /// Replays this registry's contents into `sink` through the
    /// [`Recorder`] interface: every counter as one `incr`, every gauge as
    /// one `gauge`, every histogram as one `merge_histogram` — all in
    /// registration order, so the replay is deterministic.
    ///
    /// This is the fan-in primitive of the serving layer: per-shard
    /// registries are replayed, shard by shard in index order, into a
    /// [`Tee`](crate::Tee) of the aggregate registry and any caller sink.
    pub fn replay_into(&self, sink: &mut dyn Recorder) {
        for (name, value) in &self.counters {
            sink.incr(name, *value);
        }
        for (name, value) in &self.gauges {
            sink.gauge(name, *value);
        }
        for (name, hist) in &self.histograms {
            sink.merge_histogram(name, hist);
        }
        for (name, sketch) in &self.sketches {
            sink.merge_sketch(name, sketch);
        }
    }

    /// Merges `other` into `self`: counters add, gauges take `other`'s
    /// value (last-merged-wins, deterministic under an ordered fan-in),
    /// histograms fold bucket-wise.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        other.replay_into(self);
    }

    /// Renders a fixed-width, end-of-run summary table (counters, gauges,
    /// then histograms with count/mean/p50/p99/max).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter  {name:<34} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge    {name:<34} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "hist     {name:<34} count={} mean={:.3} p50={:.3} p99={:.3} max={:.3}",
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                if h.count() == 0 { 0.0 } else { h.max() },
            );
        }
        for (name, s) in &self.sketches {
            let _ = writeln!(
                out,
                "sketch   {name:<34} count={} p50={:.3} p99={:.3} max={:.3}",
                s.count(),
                s.quantile(0.5),
                s.quantile(0.99),
                s.max(),
            );
        }
        out
    }
}

impl Recorder for MetricsRegistry {
    fn is_enabled(&self) -> bool {
        true
    }

    fn incr(&mut self, name: &'static str, delta: u64) {
        MetricsRegistry::incr(self, name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        MetricsRegistry::gauge(self, name, value);
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        MetricsRegistry::observe(self, name, value);
    }

    fn register_histogram(&mut self, name: &'static str, bounds: &[f64]) {
        MetricsRegistry::register_histogram(self, name, bounds);
    }

    fn merge_histogram(&mut self, name: &'static str, other: &Histogram) {
        MetricsRegistry::merge_histogram(self, name, other);
    }

    fn observe_sketch(&mut self, name: &'static str, value: f64) {
        MetricsRegistry::observe_sketch(self, name, value);
    }

    fn register_sketch(&mut self, name: &'static str, relative_accuracy: f64) {
        MetricsRegistry::register_sketch(self, name, relative_accuracy);
    }

    fn merge_sketch(&mut self, name: &'static str, other: &QuantileSketch) {
        MetricsRegistry::merge_sketch(self, name, other);
    }

    fn emit(&mut self, _name: &'static str, _fields: &[(&'static str, Value)]) {}

    fn set_time(&mut self, _tick: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = MetricsRegistry::new();
        r.incr("a", 1);
        r.incr("a", 2);
        assert_eq!(r.counter("a"), 3);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_hold_the_last_value() {
        let mut r = MetricsRegistry::new();
        r.gauge("threads", 4.0);
        r.gauge("threads", 8.0);
        assert_eq!(r.gauge_value("threads"), Some(8.0));
        assert_eq!(r.gauge_value("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_stats_are_exact_for_unit_bounds() {
        let mut h = Histogram::with_bounds(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        for v in [0.0, 0.0, 0.0, 1.0, 1.0, 2.0, 3.0, 9.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 9.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.99), 9.0);
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::exponential();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn registering_explicit_bounds_replaces_the_default_shape() {
        let mut r = MetricsRegistry::new();
        r.observe("lat", 0.0);
        r.register_histogram("lat", &[0.0, 1.0, 2.0]);
        assert_eq!(r.histogram("lat").unwrap().count(), 0);
        r.observe("lat", 0.0);
        assert_eq!(r.histogram("lat").unwrap().quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_bounds() {
        let _ = Histogram::with_bounds(&[2.0, 1.0]);
    }

    #[test]
    fn summary_lists_every_metric() {
        let mut r = MetricsRegistry::new();
        r.incr("sim.dropped", 3);
        r.gauge("threads", 2.0);
        r.observe("lat", 1.0);
        let s = r.summary();
        assert!(s.contains("sim.dropped"));
        assert!(s.contains("threads"));
        assert!(s.contains("count=1"));
    }

    #[test]
    fn histogram_merge_adds_buckets_and_widens_extremes() {
        let mut a = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
        let mut b = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
        a.observe(0.5);
        a.observe(5.0);
        b.observe(50.0);
        b.observe(500.0);
        assert!(a.merge_from(&b));
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 555.5);
        assert_eq!(a.min(), 0.5);
        assert_eq!(a.max(), 500.0);
        assert_eq!(a.quantile(0.99), 500.0);
    }

    #[test]
    fn merging_an_empty_histogram_changes_nothing() {
        let mut a = Histogram::exponential();
        a.observe(3.0);
        let before = a.clone();
        assert!(a.merge_from(&Histogram::exponential()));
        assert_eq!(a, before);
        // And merging *into* an empty one adopts the observations.
        let mut empty = Histogram::exponential();
        assert!(empty.merge_from(&before));
        assert_eq!(empty, before);
    }

    #[test]
    fn merge_rejects_mismatched_bucket_shapes() {
        let mut a = Histogram::with_bounds(&[1.0, 2.0]);
        let b = Histogram::with_bounds(&[1.0, 2.0, 3.0]);
        let before = a.clone();
        assert!(!a.merge_from(&b));
        assert_eq!(a, before, "a failed merge must leave the target untouched");
    }

    #[test]
    fn replay_reconstructs_the_registry_in_another_sink() {
        let mut shard = MetricsRegistry::new();
        shard.incr("serve.requests", 7);
        shard.gauge("serve.shards", 2.0);
        shard.observe("serve.iters", 3.0);
        shard.observe("serve.iters", 9.0);

        let mut aggregate = MetricsRegistry::new();
        aggregate.incr("serve.requests", 1);
        shard.replay_into(&mut aggregate);

        assert_eq!(aggregate.counter("serve.requests"), 8);
        assert_eq!(aggregate.gauge_value("serve.shards"), Some(2.0));
        let h = aggregate.histogram("serve.iters").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 12.0);
    }

    #[test]
    fn sketches_register_observe_and_replay() {
        let mut shard = MetricsRegistry::new();
        shard.register_sketch("served.wait", 0.02);
        shard.observe_sketch("served.wait", 4.0);
        shard.observe_sketch("served.wait", 16.0);
        shard.observe_sketch("served.predicted_wait", 5.0);

        let mut aggregate = MetricsRegistry::new();
        shard.replay_into(&mut aggregate);
        shard.replay_into(&mut aggregate);

        let wait = aggregate.sketch("served.wait").unwrap();
        assert_eq!(wait.count(), 4);
        assert_eq!(wait.relative_accuracy(), 0.02);
        assert_eq!(wait.max(), 16.0);
        assert_eq!(aggregate.sketch("served.predicted_wait").unwrap().count(), 2);
        assert!(aggregate.sketch("missing").is_none());
        assert!(aggregate.summary().contains("served.wait"));
    }

    #[test]
    fn registering_sketch_accuracy_replaces_the_default() {
        let mut r = MetricsRegistry::new();
        r.observe_sketch("lat", 1.0);
        r.register_sketch("lat", 0.05);
        assert_eq!(r.sketch("lat").unwrap().count(), 0);
        assert_eq!(r.sketch("lat").unwrap().relative_accuracy(), 0.05);
    }

    #[test]
    fn shard_fan_in_is_order_independent_for_counters_and_histograms() {
        let mut shards = Vec::new();
        for s in 0..3u64 {
            let mut r = MetricsRegistry::new();
            r.incr("serve.requests", s + 1);
            r.observe("serve.iters", s as f64);
            shards.push(r);
        }
        let mut forward = MetricsRegistry::new();
        for s in &shards {
            forward.merge_from(s);
        }
        let mut backward = MetricsRegistry::new();
        for s in shards.iter().rev() {
            backward.merge_from(s);
        }
        assert_eq!(forward.counter("serve.requests"), backward.counter("serve.requests"));
        assert_eq!(
            forward.histogram("serve.iters").unwrap().count(),
            backward.histogram("serve.iters").unwrap().count()
        );
        assert_eq!(
            forward.histogram("serve.iters").unwrap().sum(),
            backward.histogram("serve.iters").unwrap().sum()
        );
    }
}
