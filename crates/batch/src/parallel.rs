//! Thread fan-out policy for the parallel kernels.

/// How many worker threads a parallel kernel may fan out over.
///
/// Every kernel that accepts a `Parallelism` guarantees **bit-identical**
/// results across all settings: work is split into disjoint, contiguous
/// index chunks, each unit of work is independent, and any cross-unit
/// reduction is performed sequentially in index order after the workers
/// join. The setting therefore only trades wall-clock for cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Parallelism {
    /// Run inline on the calling thread (no spawns at all).
    Sequential,
    /// Use [`std::thread::available_parallelism`] (falling back to 1 when
    /// the platform cannot report it). The default.
    #[default]
    Auto,
    /// Use exactly this many workers (`0` is treated as `1`).
    Fixed(usize),
}

impl Parallelism {
    /// The number of workers this policy resolves to, before clamping to
    /// the amount of available work.
    pub fn thread_count(&self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
            Parallelism::Fixed(n) => (*n).max(1),
        }
    }

    /// The number of workers to use for `items` independent units of work:
    /// [`Parallelism::thread_count`] clamped to `items` (never below 1, so
    /// degenerate inputs still run inline).
    pub fn threads_for(&self, items: usize) -> usize {
        self.thread_count().min(items.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_thread() {
        assert_eq!(Parallelism::Sequential.thread_count(), 1);
        assert_eq!(Parallelism::Sequential.threads_for(100), 1);
    }

    #[test]
    fn fixed_clamps_to_work_and_floor_one() {
        assert_eq!(Parallelism::Fixed(4).threads_for(100), 4);
        assert_eq!(Parallelism::Fixed(4).threads_for(2), 2);
        assert_eq!(Parallelism::Fixed(0).thread_count(), 1);
        assert_eq!(Parallelism::Fixed(4).threads_for(0), 1);
    }

    #[test]
    fn auto_reports_at_least_one() {
        assert!(Parallelism::Auto.thread_count() >= 1);
        assert!(Parallelism::default() == Parallelism::Auto);
    }
}
