//! A flat row-major `f64` matrix.

use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix stored contiguously in row-major order.
///
/// Rows are exposed as plain slices ([`Matrix::row`] / [`Matrix::row_mut`]),
/// and the whole storage as one slice ([`Matrix::as_slice`] /
/// [`Matrix::as_mut_slice`]), so callers can split the matrix into disjoint
/// row chunks (`as_mut_slice().chunks_mut(k * cols)`) and process them on
/// scoped threads without any locking — each element has exactly one owner.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// An empty matrix (`0 × cols`) ready to grow via [`Matrix::push_row`].
    pub fn with_cols(cols: usize) -> Self {
        Matrix { rows: 0, cols, data: Vec::new() }
    }

    /// Builds a matrix from an explicit flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length must equal rows × cols");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of range");
        self.data[r * self.cols + c]
    }

    /// Sets entry `(r, c)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of range");
        self.data[r * self.cols + c] = value;
    }

    /// The whole storage as one row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole storage as one mutable row-major slice — the entry point
    /// for splitting the matrix into disjoint row chunks for scoped threads.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every entry to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Resizes in place to `rows × cols`, zeroing all entries. Storage is
    /// reused when the new shape fits the existing capacity.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Appends a row, growing the matrix by one.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "pushed row length must equal cols");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Iterates over the rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// Copies the matrix out into nested rows.
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        self.row_iter().map(<[f64]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_fill() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|v| *v == 0.0));
        m.fill(1.5);
        assert!(m.as_slice().iter().all(|v| *v == 1.5));
        assert_eq!(Matrix::filled(2, 2, 7.0).get(1, 1), 7.0);
    }

    #[test]
    fn rows_are_contiguous_row_major() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1).copy_from_slice(&[3.0, 4.0]);
        m.set(0, 1, 9.0);
        assert_eq!(m.as_slice(), &[0.0, 9.0, 3.0, 4.0]);
    }

    #[test]
    fn push_row_grows_the_matrix() {
        let mut m = Matrix::with_cols(2);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_rows_and_to_nested_round_trip() {
        let nested = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = Matrix::from_rows(&nested);
        assert_eq!(m.to_nested(), nested);
        assert_eq!(m.row_iter().count(), 3);
    }

    #[test]
    fn reset_reshapes_and_zeroes() {
        let mut m = Matrix::filled(2, 2, 5.0);
        m.reset(3, 1);
        assert_eq!((m.rows(), m.cols()), (3, 1));
        assert!(m.as_slice().iter().all(|v| *v == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_out_of_range_panics() {
        let _ = Matrix::zeros(1, 1).row(1);
    }

    #[test]
    #[should_panic(expected = "pushed row length")]
    fn push_row_rejects_wrong_length() {
        Matrix::with_cols(2).push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "flat buffer length")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn serde_round_trip_shape() {
        // The derive serializes rows/cols/data; a clone through Debug-level
        // equality is enough to pin the layout for the trace golden files.
        let m = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let copy = m.clone();
        assert_eq!(m, copy);
    }

    proptest! {
        #[test]
        fn chunked_rows_tile_the_storage(rows in 1usize..8, cols in 1usize..8, k in 1usize..5) {
            let mut m = Matrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    m.set(r, c, (r * cols + c) as f64);
                }
            }
            // Splitting into k-row chunks and re-reading them must visit the
            // same values the row accessor reports — the invariant the
            // scoped-thread kernels rely on.
            let mut seen = Vec::new();
            for chunk in m.as_slice().chunks(k * cols) {
                seen.extend_from_slice(chunk);
            }
            prop_assert_eq!(seen, m.as_slice().to_vec());
        }
    }
}
