//! Batch-solver substrate: flat matrices and thread fan-out policy.
//!
//! The hot paths of the workspace — all-pairs shortest paths, the multi-file
//! solver's per-iteration gradient/step stage, trace recording — operate on
//! dense `rows × cols` blocks of `f64`. This crate provides the two shared
//! building blocks they are built on:
//!
//! * [`Matrix`] — a contiguous row-major matrix whose rows are plain
//!   `&[f64]` / `&mut [f64]` slices. Contiguity is what makes both cache
//!   behaviour and parallelism simple: a matrix can be split into disjoint
//!   row chunks with `chunks_mut`, handed to scoped threads, and every write
//!   lands exactly where the sequential loop would have put it.
//! * [`Parallelism`] — the fan-out policy (`Sequential`, `Auto`,
//!   `Fixed(n)`) accepted by every parallel kernel. The kernels guarantee
//!   bit-identical results across all settings; the policy only chooses how
//!   many `std::thread::scope` workers share the row space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod matrix;
pub mod parallel;

pub use matrix::Matrix;
pub use parallel::Parallelism;
