//! # fap — microeconomic file allocation
//!
//! A complete implementation of Kurose & Simha, *A Microeconomic Approach
//! to Optimal File Allocation* (ICDCS 1986): a decentralized,
//! resource-directed algorithm that optimally fragments a file across the
//! nodes of a network, trading communication cost against M/M/1 queueing
//! delay.
//!
//! The workspace is layered; this crate re-exports everything:
//!
//! * [`batch`] — the flat row-major [`Matrix`](fap_batch::Matrix) storage
//!   and the [`Parallelism`](fap_batch::Parallelism) setting shared by the
//!   batch solver engine;
//! * [`net`] — network graphs, topologies, shortest-path routing, access
//!   workloads, and the [`CostProvider`](fap_net::CostProvider) substrate:
//!   the exact dense matrix or the sparse
//!   [`LandmarkOracle`](fap_net::LandmarkOracle);
//! * [`cache`] — content-addressed warm-path caches: FNV-1a topology
//!   fingerprints, a [`CostMatrixCache`](fap_cache::CostMatrixCache) that
//!   runs all-pairs Dijkstra once per distinct graph, and the
//!   [`SubstrateCache`](fap_cache::SubstrateCache) that keys dense
//!   matrices and landmark oracles by
//!   [`CostBackend`](fap_cache::CostBackend);
//! * [`queue`] — analytic M/M/1 and M/G/1 delay models and a discrete-event
//!   simulator for empirical validation;
//! * [`econ`] — the resource-directed (Heal) optimizer with the paper's
//!   set-A procedure, second-derivative and gossip variants, and a
//!   price-directed tâtonnement baseline;
//! * [`core`] — the file-allocation problem itself: single-file and
//!   multi-file models, closed-form reference solver, integer baselines,
//!   record rounding, adaptive reallocation, and the hierarchical
//!   cluster-solve-refine pipeline
//!   ([`solve_hierarchical`](fap_core::hierarchical::solve_hierarchical))
//!   that rides the landmark oracle past dense-matrix scale;
//! * [`ring`] — the §7 multi-copy virtual-ring extension with its
//!   oscillation-aware solver;
//! * [`runtime`] — the protocol as a message-passing (and multi-threaded)
//!   distributed system with message accounting, failure injection, a
//!   seeded chaos simulator running the exchange schemes over an
//!   unreliable network, and the online-reallocation control loop
//!   ([`DriftRun`](fap_runtime::DriftRun)) tracking seeded workload-drift
//!   trajectories with hysteresis and bounded-bandwidth migration;
//! * [`obs`] — zero-dependency structured telemetry: a metrics registry
//!   (counters, gauges, histograms), span timing on wall or virtual
//!   clocks, and buffered ([`Telemetry`](fap_obs::Telemetry)) or streaming
//!   ([`JsonlSink`](fap_obs::JsonlSink)) JSONL event export, wired through
//!   the solvers, the chaos simulator and the parallel kernels via the
//!   [`Recorder`](fap_obs::Recorder) trait (the no-op recorder preserves
//!   the zero-allocation and bit-identity guarantees);
//! * [`serve`] — the sharded batch-serving layer: many independent
//!   scenarios solved across a work-stealing scoped-thread worker pool with
//!   per-worker scratch reuse, optional warm-started solves seeded from the
//!   previous same-shape request, submission-order results bit-identical to
//!   sequential solves, and per-shard metric registries fanned into one
//!   aggregate snapshot;
//! * [`served`] — the persistent serving daemon: a newline-delimited JSON
//!   protocol over a deterministic virtual clock, M/M/c admission control
//!   fitted from measured rates with 429-style load shedding, and warm
//!   state (cost-matrix cache, session seeds) kept alive across batches.
//!
//! # Quickstart
//!
//! Reproduce the paper's headline experiment — the symmetric four-node
//! ring of §6 — in a dozen lines:
//!
//! ```
//! use fap::prelude::*;
//!
//! let graph = fap::net::topology::ring(4, 1.0)?;
//! let pattern = AccessPattern::uniform(4, 1.0)?;
//! let problem = SingleFileProblem::mm1(&graph, &pattern, 1.5, 1.0)?;
//!
//! let solution = ResourceDirectedOptimizer::new(StepSize::Fixed(0.3))
//!     .run(&problem, &[0.8, 0.1, 0.1, 0.0])?;
//!
//! assert!(solution.converged);
//! assert!((solution.final_cost() - 1.8).abs() < 1e-3); // optimal cost
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fap_batch as batch;
pub use fap_cache as cache;
pub use fap_core as core;
pub use fap_econ as econ;
pub use fap_net as net;
pub use fap_obs as obs;
pub use fap_queue as queue;
pub use fap_ring as ring;
pub use fap_runtime as runtime;
pub use fap_serve as serve;
pub use fap_served as served;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use fap_batch::{Matrix, Parallelism};
    pub use fap_cache::{topology_fingerprint, CostBackend, CostMatrixCache, SubstrateCache};
    pub use fap_core::{
        baseline, reference, AdaptiveAllocator, HierarchicalConfig, HierarchicalSolution,
        HostingMarket, MultiFileProblem, MultiFileScratch, SingleFileProblem,
    };
    pub use fap_econ::{
        AllocationProblem, BoundaryRule, GossipOptimizer, MigrationPlanner, Neighborhood,
        PriceDirectedOptimizer, ResourceDirectedOptimizer, SecondOrderOptimizer, Solution,
        StepSize, TrackingOptimizer,
    };
    pub use fap_net::{topology, AccessPattern, CostProvider, Graph, LandmarkOracle, NodeId};
    pub use fap_obs::{JsonlSink, MetricsRegistry, NoopRecorder, Recorder, Telemetry};
    pub use fap_queue::{DelayModel, Mg1Delay, Mm1Delay, NetworkSimulation, ServiceDistribution};
    pub use fap_ring::{RingSolver, VirtualRing};
    pub use fap_runtime::{
        ChaosPlan, DistributedRun, DriftConfig, DriftReport, DriftRun, DriftScenario,
        ExchangeScheme, FailurePlan, MessageCounting, SimReport, SimRun,
    };
    pub use fap_serve::{
        BatchServer, ServeOutput, ServeRequest, ServeResponse, SessionSeeds,
    };
    pub use fap_served::{Daemon, DaemonConfig, DaemonStatus, WarmMode};
}
